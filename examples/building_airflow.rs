//! The HLRS demonstration (§4.7): collaborative analysis of a building's
//! climatization field.
//!
//! "Simulations allow determining and optimizing the climatization layout
//! of such a building. In collaborative visualizations architects,
//! managers and engineers … are able to discuss the building layout and
//! its implications on the climatization." Three sites (HLRS Stuttgart,
//! DaimlerChrysler, Sandia) share a COVISE session over a synthetic
//! temperature field of the Car Show building; the master sweeps a cutting
//! plane and everyone stays frame-consistent — in parameter-sync mode the
//! bytes are constant no matter how big the scene is.
//!
//! Run with: `cargo run --release --example building_airflow`

use gridsteer::covise::{
    CollabSession, Controller, CutPlane, IsoSurface, ModuleId, ReadField, Renderer, SyncMode,
};
use gridsteer::netsim::Link;
use gridsteer::viz::Field3;

/// A synthetic climatization field: warm air pooling under the hall roof,
/// cool inflow at the doors, a hot spot over the exhibition lighting.
fn building_temperature_field(n: usize) -> Field3 {
    Field3::from_fn(n, n, n, |x, y, z| {
        let (xf, yf, zf) = (
            x as f32 / n as f32,
            y as f32 / n as f32,
            z as f32 / n as f32,
        );
        let stratification = 8.0 * yf; // warm roof layer
        let door_draft = -4.0 * (-((xf - 0.1) * (xf - 0.1) + zf * zf) * 20.0).exp();
        let lighting =
            6.0 * (-((xf - 0.6).powi(2) + (yf - 0.8).powi(2) + (zf - 0.5).powi(2)) * 30.0).exp();
        20.0 + stratification + door_draft + lighting
    })
}

fn build_pipeline(ctl: &mut Controller, host: usize) -> ModuleId {
    let read = ctl.add_module(
        host,
        Box::new(ReadField::new(building_temperature_field(24))),
    );
    let cut = ctl.add_module(host, Box::new(CutPlane::new()));
    let iso = ctl.add_module(host, Box::new(IsoSurface::new()));
    let render = ctl.add_module(host, Box::new(Renderer::new(96)));
    ctl.connect(read, "field", cut, "field").unwrap();
    ctl.connect(read, "field", iso, "field").unwrap();
    ctl.connect(iso, "mesh", render, "mesh").unwrap();
    // comfortable-temperature envelope: the 24 °C isotherm
    ctl.set_param(iso, "isovalue", 24.0);
    render
}

/// IsoSurface module id within the standard pipeline above.
const ISO: ModuleId = ModuleId(2);
/// CutPlane module id within the standard pipeline above.
const CUT: ModuleId = ModuleId(1);

fn main() {
    let sites = ["hlrs-stuttgart", "daimler-chrysler", "sandia"];
    let mut session = CollabSession::new(&sites, SyncMode::ParamSync, build_pipeline, |i| {
        // Stuttgart↔Daimler is regional; Sandia is transatlantic
        if i == 2 {
            Link::transatlantic()
        } else {
            Link::gwin()
        }
    });
    session.warm_up().expect("pipelines execute");
    println!("3-site collaborative session up (param-sync mode)");

    // the architects sweep the cutting plane through the hall
    println!("z_frac  bytes  skew        consistent  master_wall");
    for step in 0..5 {
        let zf = step as f64 / 4.0;
        let r = session.change_param(CUT, "z_fraction", zf).unwrap();
        println!(
            "{zf:.2}    {:5}  {:10}  {}        {:?}",
            r.bytes_sent,
            format!("{}", r.skew),
            r.consistent,
            r.master_wall
        );
        assert!(r.consistent, "sites diverged");
    }

    // the engineers adjust the comfort isotherm
    let r = session.change_param(ISO, "isovalue", 26.0).unwrap();
    println!(
        "isotherm -> 26 °C: {} bytes, consistent = {}",
        r.bytes_sent, r.consistent
    );

    // role change: Sandia takes over the discussion (§4.3: partners
    // "need to be able to change roles")
    assert!(session.pass_master(2));
    let r = session.change_param(CUT, "z_fraction", 0.5).unwrap();
    println!(
        "after master handoff to sandia: {} bytes, consistent = {}",
        r.bytes_sent, r.consistent
    );
    assert!(r.consistent);

    // show the scene-size independence claim of §4.6 directly
    println!(
        "param-sync bytes are {} per update regardless of the 24³ field or mesh size",
        r.bytes_sent
    );
    if let Some(img) = session.display(0) {
        // rendered artifacts are build products: keep them under target/
        // (gitignored), never in the repo root
        let out = std::path::Path::new("target").join("building_airflow_final.ppm");
        std::fs::create_dir_all("target").ok();
        std::fs::write(&out, img.to_ppm()).ok();
        println!("final frame written to {}", out.display());
    }
    println!("building_airflow OK");
}
