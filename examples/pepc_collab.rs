//! PEPC steered through VISIT with a vbroker fan-out (§3 of the paper).
//!
//! The plasma simulation is the VISIT *client*; a vbroker multiplexes its
//! data to three visualization endpoints while only the master may steer.
//! Mid-run the master fires the particle beam and redirects it — the §3.4
//! "charge/intensity, direction can be altered by the user interactively
//! while the application is running".
//!
//! Run with: `cargo run --release --example pepc_collab`

use gridsteer::pepc::{PepcConfig, PepcSim};
use gridsteer::visit::link::FrameLink;
use gridsteer::visit::{Frame, MemLink, MsgKind, Password, SteeringClient, VBroker, VisitValue};
use std::time::Duration;

const TAG_POSITIONS: u32 = 1;
const TAG_BEAM: u32 = 2;

fn main() {
    // wire up: simulation ── vbroker ── 3 viewers
    let (sim_link, broker_sim) = MemLink::pair();
    let mut broker = VBroker::new(broker_sim);
    let mut viewers = Vec::new();
    for _ in 0..3 {
        let (viewer_side, broker_viewer) = MemLink::pair();
        let id = broker.attach(broker_viewer);
        viewers.push((id, viewer_side));
    }
    let master_id = broker.master().unwrap();
    println!("3 viewers attached, master = {master_id:?}");

    // broker pump thread
    let broker_thread = std::thread::spawn(move || {
        while let Ok(true) = broker.pump(Duration::from_millis(20), Duration::from_millis(50)) {}
        broker.stats()
    });

    // master viewer thread: renders incoming clouds, queues one steer
    let (mid, mut master_link) = viewers.remove(0);
    assert_eq!(mid, master_id);
    let master_thread = std::thread::spawn(move || {
        let mut frames = 0u32;
        let mut steered = false;
        while let Ok(raw) = master_link.recv_timeout(Duration::from_millis(500)) {
            let f = Frame::decode(&raw).expect("well-formed frame");
            match f.kind {
                MsgKind::Data => frames += 1,
                MsgKind::Request if !steered => {
                    // the steering moment: redirect the beam to +z
                    let reply = Frame::with_value(
                        MsgKind::Reply,
                        TAG_BEAM,
                        gridsteer::visit::Endianness::native(),
                        VisitValue::F64(vec![2.0, 0.0, 0.0, 1.0]), // intensity, dir
                    );
                    master_link.send(&reply.encode()).unwrap();
                    steered = true;
                    println!("master steered: beam on, direction +z");
                }
                MsgKind::Request => {
                    master_link
                        .send(&Frame::bare(MsgKind::NoData, f.tag).encode())
                        .unwrap();
                }
                MsgKind::Bye => break,
                _ => {}
            }
        }
        frames
    });

    // passive viewer threads: count the fanned-out frames
    let passive_threads: Vec<_> = viewers
        .into_iter()
        .map(|(_, mut link)| {
            std::thread::spawn(move || {
                let mut frames = 0u32;
                while let Ok(raw) = link.recv_timeout(Duration::from_millis(500)) {
                    if Frame::decode(&raw).map(|f| f.kind) == Some(MsgKind::Data) {
                        frames += 1;
                    } else if Frame::decode(&raw).map(|f| f.kind) == Some(MsgKind::Bye) {
                        break;
                    }
                }
                frames
            })
        })
        .collect();

    // the simulation: connect, step, ship snapshots, ask for steers
    let mut client = SteeringClient::connect(sim_link, &Password::Open, 0, Duration::from_secs(1))
        .expect("sim connects through broker");
    let mut sim = PepcSim::new(PepcConfig {
        n_target: 400,
        ..PepcConfig::small()
    });
    sim.inject_beam(40, 0.0); // beam present but idle until steered
    for round in 0..10 {
        sim.step_n(2);
        let snap = sim.snapshot();
        let flat: Vec<f32> = snap.positions.iter().flatten().copied().collect();
        client.send(TAG_POSITIONS, VisitValue::F32(flat)).unwrap();
        // poll for steering input — guaranteed to return by the timeout
        if let Ok(Some(VisitValue::F64(v))) = client.request(TAG_BEAM) {
            let mut p = sim.params();
            p.beam_intensity = v[0];
            p.beam_dir = [v[1], v[2], v[3]];
            sim.set_params(p);
        }
        if round == 9 {
            let c = sim.beam_centroid().unwrap();
            println!(
                "step {}: beam centroid = [{:.2}, {:.2}, {:.2}]",
                sim.step_count(),
                c[0],
                c[1],
                c[2]
            );
        }
    }
    let stats = client.stats();
    client.close();
    drop(client);

    let master_frames = master_thread.join().unwrap();
    let passive_frames: Vec<u32> = passive_threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    let broker_stats = broker_thread.join().unwrap();

    println!(
        "simulation: {} sends, {} requests, {:?} inside VISIT calls",
        stats.sends, stats.requests, stats.time_in_calls
    );
    println!("master saw {master_frames} frames; passive viewers saw {passive_frames:?}");
    println!(
        "broker: {} frames in, {} fanned out, {} bytes amplified to {}",
        broker_stats.sim_frames,
        broker_stats.fanout_frames,
        broker_stats.bytes_in,
        broker_stats.bytes_out
    );
    assert!(passive_frames.iter().all(|&f| f == master_frames));
    println!("pepc_collab OK");
}
