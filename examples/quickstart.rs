//! Quickstart: a live two-fluid simulation steered by two TCP clients.
//!
//! This is the smallest end-to-end use of the library: a Lattice-Boltzmann
//! mixture runs in a background thread while a steering server exposes its
//! miscibility parameter; two clients connect over loopback TCP, one holds
//! the master token, steers, and hands the token over — exactly the
//! "coordinated cooperative steering" of the paper's §3.3.
//!
//! Run with: `cargo run --release --example quickstart`

use gridsteer::lbm::{LbmConfig, TwoFluidLbm};
use gridsteer::steer_core::{
    ClientHandle, CollabServer, ParamRegistry, ParamSpec, SteeringSession,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. the simulation (compute resource)
    let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig {
        nx: 16,
        ny: 16,
        nz: 16,
        ..Default::default()
    })));

    // 2. the steering session + TCP server
    let mut reg = ParamRegistry::new();
    reg.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
    let session = Arc::new(Mutex::new(SteeringSession::new(reg)));
    let server = CollabServer::start(session.clone()).expect("server starts");
    let addr = server.addr().to_string();
    println!("steering server on {addr}");

    // 3. simulation loop: step, apply steered parameters, emit samples
    let stop = Arc::new(AtomicBool::new(false));
    let sim_thread = {
        let sim = sim.clone();
        let session = session.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut s = sim.lock();
                // pick up the latest steered value (the visit-style
                // "request" at the top of every step)
                if let Some(m) = session
                    .lock()
                    .params
                    .get_value("miscibility")
                    .and_then(|v| v.as_f64())
                {
                    s.set_miscibility(m);
                }
                s.step();
                let sample = s.order_parameter();
                drop(s);
                session.lock().broadcast_sample(sample.byte_size());
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // 4. two collaborators connect
    let mut alice = ClientHandle::connect(&addr, "alice").expect("alice connects");
    let mut bob = ClientHandle::connect(&addr, "bob").expect("bob connects");
    println!(
        "alice master={} bob master={}",
        alice.joined_as_master, bob.joined_as_master
    );

    // alice steers the fluids towards demixing
    alice.set("miscibility", 0.1).expect("master may steer");
    println!("alice set miscibility = 0.1");
    // bob cannot — he is a viewer
    let refusal = bob.set("miscibility", 0.9).unwrap_err();
    println!("bob refused: {refusal}");

    // let the physics react
    std::thread::sleep(Duration::from_millis(300));
    let demix = sim.lock().demix_metric();
    println!("demix metric after steering: {demix:.3e}");

    // token handoff: now bob steers
    alice.pass_master(&bob.name).expect("handoff");
    bob.set("miscibility", 1.0).expect("bob is master now");
    println!("bob remixed the fluids (miscibility = 1.0)");

    stop.store(true, Ordering::Relaxed);
    sim_thread.join().unwrap();
    let s = session.lock();
    println!(
        "session: {} participants, {} samples fanned out, {} events logged",
        s.len(),
        s.fanout_bytes,
        s.events().len()
    );
    println!("quickstart OK");
}
