//! The RealityGrid Figure-1 pipeline, end to end.
//!
//! "Computation and visualisation are on different machines and the
//! steering and visualisation can be viewed and controlled from a user's
//! laptop" (Figure 1 caption). Compute site (London/UCL, "Dirac") runs the
//! LB mixture; visualization site (Manchester, "Bezier") isosurfaces the
//! order parameter and renders; the laptop receives VizServer-style
//! compressed bitmaps. The steering moment lowers the miscibility and the
//! isosurface grows structure.
//!
//! Run with: `cargo run --release --example lbm_steering`

use gridsteer::covise::broker::HostArch;
use gridsteer::covise::{Controller, IsoSurface, ReadField, Renderer, RequestBroker};
use gridsteer::lbm::{LbmConfig, TwoFluidLbm};
use gridsteer::netsim::Link;
use gridsteer::viz::codec::DeltaRleCodec;

fn main() {
    // the two supercomputers + WAN of the 2002 demo
    let mut broker = RequestBroker::new();
    let dirac = broker.add_host("dirac.ucl (compute)", HostArch::Big);
    let bezier = broker.add_host("bezier.man (vis)", HostArch::Big);
    broker.connect(dirac, bezier, Link::uk_janet());

    // the simulation on the compute host
    let mut sim = TwoFluidLbm::new(LbmConfig {
        nx: 24,
        ny: 24,
        nz: 24,
        ..Default::default()
    });

    // the visualization pipeline: field → isosurface → render
    let mut ctl = Controller::new();
    let read = ctl.add_module(dirac, Box::new(ReadField::new(sim.order_parameter())));
    let iso = ctl.add_module(bezier, Box::new(IsoSurface::new()));
    let render = ctl.add_module(bezier, Box::new(Renderer::new(128)));
    ctl.connect(read, "field", iso, "field").unwrap();
    ctl.connect(iso, "mesh", render, "mesh").unwrap();

    // the laptop's codec (VizServer ships compressed bitmaps, §2.4)
    let mut laptop = DeltaRleCodec::new();
    let mut shipped_to_laptop = 0usize;

    println!("step  misc   demix      tris   frame_bytes  pipeline");
    for round in 0..8 {
        // the steering moment: round 4, the user lowers the miscibility
        if round == 4 {
            sim.set_miscibility(0.0);
            println!("--- steer: miscibility -> 0.0 ---");
        }
        sim.step_n(10);
        // emit a sample into the pipeline
        let sample = sim.order_parameter();
        assert!(ctl.module_mut(read).feed_field(sample));
        let report = ctl.execute(&mut broker).unwrap();
        let image = ctl.image(&broker, render).unwrap();
        let frame = laptop.encode(&image);
        shipped_to_laptop += frame.wire_size();
        let tris = match &ctl.output(&broker, iso, "mesh").unwrap().payload {
            gridsteer::covise::Payload::Mesh(m) => m.tri_count(),
            _ => 0,
        };
        println!(
            "{:4}  {:.2}   {:.3e}  {:6}  {:10}  wall={:?} wan={} bytes={}",
            sim.steps(),
            sim.miscibility(),
            sim.demix_metric(),
            tris,
            frame.wire_size(),
            report.total_wall,
            report.virtual_finish,
            report.bytes_transferred,
        );
    }
    println!("total compressed bitmap bytes to laptop: {shipped_to_laptop}");
    // dump the final frame for inspection — under target/ (gitignored),
    // never in the repo root
    let image = ctl.image(&broker, render).unwrap();
    let out = std::path::Path::new("target").join("lbm_steering_final.ppm");
    std::fs::create_dir_all("target").ok();
    std::fs::write(&out, image.to_ppm()).ok();
    println!("final frame written to {}", out.display());
}
