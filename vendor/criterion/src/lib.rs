//! Vendored subset of `criterion` (offline build).
//!
//! A minimal wall-clock benchmark harness with criterion's calling
//! conventions: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`. No statistics engine — each benchmark
//! is warmed up, then timed over enough iterations to fill (a capped slice
//! of) the configured measurement time, reporting mean ns/iter. Passing
//! `--test` (as `cargo test --benches` does) runs one iteration per bench
//! as a smoke test.

use std::time::{Duration, Instant};

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## group `{name}`");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
            test_mode,
        }
    }

    /// Run one benchmark outside a group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("default");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the time budget per benchmark (capped at 2s in this shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d.min(Duration::from_secs(2));
        self
    }

    /// Set the sample count (recorded; the shim times one merged sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut b = Bencher {
            budget: if self.test_mode {
                Duration::ZERO // one iteration only
            } else {
                self.measurement_time
            },
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!(
            "bench {name:40} {:>14.0} ns/iter ({} iters)",
            per_iter, b.iters
        );
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Times the body of one benchmark.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the budget is filled.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + rate estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let mut iters: u64 = 1;
        let mut elapsed = start.elapsed();
        while elapsed < self.budget {
            // Grow geometrically so fast routines don't spend forever here.
            let batch = iters.min(1 << 20);
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }

    /// Time `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
            if elapsed >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_counts_and_times() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(20)).sample_size(5);
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 1);
    }

    #[test]
    fn iter_batched_runs_setup_per_iter() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("t");
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert!(setups >= 1);
    }
}
