//! Vendored subset of the `parking_lot` API backed by `std::sync`.
//!
//! This workspace builds offline, so the real crates.io dependency cannot be
//! fetched. The subset implemented here is exactly what the tree uses:
//! `Mutex`/`RwLock` with non-poisoning `lock`/`read`/`write`. Poisoning is
//! erased by recovering the inner guard, matching parking_lot semantics
//! (a panicking holder does not wedge the lock for everyone else).

use std::sync::{self, TryLockError};

/// Guard type aliases match `parking_lot`'s names so callers can spell them.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still lockable
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
