//! Deterministic fixed-width SIMD lane types.
//!
//! This is the workspace's vendored stand-in for a `wide`-style SIMD
//! crate: `F64x4` and `F32x8` are `#[repr(C)]`, cache-line-friendly
//! array wrappers whose arithmetic is written as plain per-lane IEEE-754
//! operations. The optimizer turns the lane loops into vector
//! instructions on every x86-64 target (SSE2 is in the baseline), and
//! because each lane performs *exactly* the scalar operation sequence —
//! no FMA contraction, no fast-math reassociation — a kernel that maps
//! one lane to one element produces bit-identical results to its scalar
//! reference. That property is what the workspace's determinism contract
//! (digests stable across `EXEC_THREADS` *and* across the scalar/SIMD
//! backends) rests on.
//!
//! The only lane-order-sensitive operation is the horizontal sum
//! [`F64x4::hsum`]/[`F32x8::hsum`]: it reduces in a *fixed, documented*
//! association `(l0 + l1) + (l2 + l3)`, which differs from a left-to-right
//! scalar fold. Any call site whose scalar fallback does not reproduce
//! that association is a reassociation hazard — the determinism lint's
//! rule R7 flags horizontal reductions for exactly this reason, and a
//! `// detlint::allow(R7, ...)` justification is required where one is
//! used on a digest-feeding path.
//!
//! # Backend switch
//!
//! Hot kernels keep a scalar reference implementation and a lane-blocked
//! one, selected once per process by [`backend`]: `GRIDSTEER_SIMD=0` (or
//! `off`/`false`) forces the scalar path, anything else (including unset)
//! runs the lane-blocked path. The switch exists so CI can prove the two
//! backends are byte-identical, not to work around broken targets.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// Lane count of [`F64x4`].
pub const F64_LANES: usize = 4;
/// Lane count of [`F32x8`].
pub const F32_LANES: usize = 8;

/// Which kernel implementation the process runs (fixed at first query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Scalar reference kernels.
    Scalar,
    /// Lane-blocked kernels over [`F64x4`]/[`F32x8`].
    Simd,
}

impl Backend {
    /// Stable label for bench rows and digests ("scalar" / "simd").
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

/// The process-wide backend: `GRIDSTEER_SIMD=0|off|false` selects
/// [`Backend::Scalar`], anything else (including unset) selects
/// [`Backend::Simd`]. Read once and cached — mid-run environment edits
/// cannot split a run across backends.
pub fn backend() -> Backend {
    *BACKEND.get_or_init(|| match std::env::var("GRIDSTEER_SIMD") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false") => {
            Backend::Scalar
        }
        _ => Backend::Simd,
    })
}

/// True when the lane-blocked kernels are active (see [`backend`]).
pub fn simd_enabled() -> bool {
    backend() == Backend::Simd
}

macro_rules! lane_type {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $lanes:expr, $align:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        #[repr(C, align($align))]
        pub struct $name(pub [$elem; $lanes]);

        impl $name {
            /// Number of lanes.
            pub const LANES: usize = $lanes;

            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: $elem) -> $name {
                $name([v; $lanes])
            }

            /// Load the first `LANES` elements of `s`. Panics if short.
            #[inline(always)]
            pub fn from_slice(s: &[$elem]) -> $name {
                let mut out = [0.0; $lanes];
                out.copy_from_slice(&s[..$lanes]);
                $name(out)
            }

            /// Store the lanes into the first `LANES` elements of `out`.
            #[inline(always)]
            pub fn write_to(self, out: &mut [$elem]) {
                out[..$lanes].copy_from_slice(&self.0);
            }

            /// The lane array.
            #[inline(always)]
            pub fn to_array(self) -> [$elem; $lanes] {
                self.0
            }

            /// Per-lane IEEE `max` (exactly `<$elem>::max` per lane, NaN
            /// behaviour included) — bit-compatible with the scalar
            /// reference kernels' clamps.
            #[inline(always)]
            pub fn max(self, other: $name) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] = out[l].max(other.0[l]);
                }
                $name(out)
            }

            /// Per-lane IEEE `min` (exactly `<$elem>::min` per lane).
            #[inline(always)]
            pub fn min(self, other: $name) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] = out[l].min(other.0[l]);
                }
                $name(out)
            }

            /// Per-lane square root (IEEE-754 correctly rounded, exactly
            /// the scalar `sqrt` per lane).
            #[inline(always)]
            pub fn sqrt(self) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] = out[l].sqrt();
                }
                $name(out)
            }

            /// Horizontal sum in the fixed pairwise association
            /// `(l0+l1)+(l2+l3)` (and one more level for 8 lanes). This is
            /// NOT a left-to-right fold: a scalar fallback must reproduce
            /// the same pairwise tree or its digest diverges — which is
            /// why detlint R7 demands a justification at every call site.
            #[inline(always)]
            pub fn hsum(self) -> $elem {
                let mut acc = self.0;
                let mut width = $lanes / 2;
                while width >= 1 {
                    for l in 0..width {
                        acc[l] += acc[l + width];
                    }
                    width /= 2;
                }
                acc[0]
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline(always)]
            fn add(self, rhs: $name) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] += rhs.0[l];
                }
                $name(out)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline(always)]
            fn sub(self, rhs: $name) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] -= rhs.0[l];
                }
                $name(out)
            }
        }

        impl Mul for $name {
            type Output = $name;
            #[inline(always)]
            fn mul(self, rhs: $name) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] *= rhs.0[l];
                }
                $name(out)
            }
        }

        impl Div for $name {
            type Output = $name;
            #[inline(always)]
            fn div(self, rhs: $name) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] /= rhs.0[l];
                }
                $name(out)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline(always)]
            fn neg(self) -> $name {
                let mut out = self.0;
                for l in 0..$lanes {
                    out[l] = -out[l];
                }
                $name(out)
            }
        }

        impl AddAssign for $name {
            #[inline(always)]
            fn add_assign(&mut self, rhs: $name) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for $name {
            #[inline(always)]
            fn sub_assign(&mut self, rhs: $name) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for $name {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: $name) {
                *self = *self * rhs;
            }
        }

        impl Mul<$elem> for $name {
            type Output = $name;
            #[inline(always)]
            fn mul(self, rhs: $elem) -> $name {
                self * $name::splat(rhs)
            }
        }

        impl Add<$elem> for $name {
            type Output = $name;
            #[inline(always)]
            fn add(self, rhs: $elem) -> $name {
                self + $name::splat(rhs)
            }
        }
    };
}

lane_type!(
    /// Four `f64` lanes (one 256-bit vector, or two 128-bit on SSE2).
    F64x4,
    f64,
    4,
    32
);
lane_type!(
    /// Eight `f32` lanes (one 256-bit vector, or two 128-bit on SSE2).
    F32x8,
    f32,
    8,
    32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanewise_ops_match_scalar_bits() {
        let a = F64x4([1.1, -2.5e300, 3.75, f64::MIN_POSITIVE]);
        let b = F64x4([0.3, 4.0, -1e-17, 2.0]);
        let sum = (a + b).to_array();
        let prod = (a * b).to_array();
        let quot = (a / b).to_array();
        for l in 0..4 {
            assert_eq!(sum[l].to_bits(), (a.0[l] + b.0[l]).to_bits());
            assert_eq!(prod[l].to_bits(), (a.0[l] * b.0[l]).to_bits());
            assert_eq!(quot[l].to_bits(), (a.0[l] / b.0[l]).to_bits());
        }
    }

    #[test]
    fn max_follows_ieee_scalar_max() {
        let a = F64x4([1.0, f64::NAN, -0.0, 5.0]);
        let b = F64x4([2.0, 3.0, 0.0, f64::NAN]);
        let m = a.max(b).to_array();
        assert_eq!(m[0], 2.0);
        assert_eq!(m[1], 3.0, "f64::max ignores the NaN side");
        assert_eq!(m[3], 5.0);
    }

    #[test]
    fn hsum_is_the_documented_pairwise_tree() {
        let v = F64x4([1e16, 1.0, -1e16, 1.0]);
        // (1e16 + (-1e16)) + (1.0 + 1.0) per the width-halving tree
        let expect = (v.0[0] + v.0[2]) + (v.0[1] + v.0[3]);
        assert_eq!(v.hsum().to_bits(), expect.to_bits());
        let w = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(w.hsum(), 36.0);
    }

    #[test]
    fn sqrt_matches_scalar_bits() {
        let a = F64x4([2.0, 1e-300, 3.9e17, 0.0]);
        let r = a.sqrt().to_array();
        for (l, lane) in r.iter().enumerate() {
            assert_eq!(lane.to_bits(), a.0[l].sqrt().to_bits());
        }
    }

    #[test]
    fn slice_round_trip() {
        let data = [9.0, 8.0, 7.0, 6.0, 5.0];
        let v = F64x4::from_slice(&data);
        let mut out = [0.0; 4];
        v.write_to(&mut out);
        assert_eq!(out, [9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn backend_label_is_stable() {
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Simd.label(), "simd");
        // whatever the ambient env says, the cached answer is self-consistent
        assert_eq!(simd_enabled(), backend() == Backend::Simd);
    }
}
