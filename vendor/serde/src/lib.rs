//! Vendored subset of `serde` (offline build).
//!
//! The real serde is a data-model/visitor framework; this shim collapses it
//! to a single concrete data model — [`JsonValue`] — which is all the tree
//! needs (every serialization site goes through `serde_json`). The
//! `#[derive(Serialize, Deserialize)]` macros are re-exported from the
//! companion `serde_derive` shim and generate impls of the two traits below
//! following serde's externally-tagged conventions (structs → objects,
//! newtypes → inner value, enum variants → `"Name"` / `{"Name": ...}`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The single in-memory data model every (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON integer (wide enough for u64/i64 without precision loss).
    Int(i128),
    /// Any JSON non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion-ordered so serialization is deterministic.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object accessor.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer accessor (floats with integral value do not coerce).
    pub fn as_int(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric accessor (accepts both int and float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Types convertible into the JSON data model.
pub trait Serialize {
    /// Build the value-tree representation.
    fn to_value(&self) -> JsonValue;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree; `None` on shape mismatch.
    fn from_value(v: &JsonValue) -> Option<Self>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! ser_de_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> JsonValue { JsonValue::Int(*self as i128) }
        }
        impl Deserialize for $ty {
            fn from_value(v: &JsonValue) -> Option<Self> {
                let i = v.as_int()?;
                <$ty>::try_from(i).ok()
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_bool()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_f64().map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> JsonValue {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> JsonValue {
        match self {
            Some(t) => t.to_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &JsonValue) -> Option<Self> {
        match v {
            JsonValue::Null => Some(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &JsonValue) -> Option<Self> {
        let items: Vec<T> = Vec::from_value(v)?;
        items.try_into().ok()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_object()?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> JsonValue {
        // Sort keys for deterministic output (signatures hash serializations).
        let mut entries: Vec<(String, JsonValue)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &JsonValue) -> Option<Self> {
        v.as_object()?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}
