//! Vendored subset of `proptest` (offline build).
//!
//! Random-input property testing with the real crate's surface syntax:
//! the `proptest!` macro, `any::<T>()`, range strategies, `prop_filter`,
//! `collection::vec`, and `prop_assert*`. Differences from the real crate,
//! accepted for an offline shim: no shrinking (failures report the raw
//! counterexample), and a deterministic per-test RNG seed derived from the
//! test name (reproducible runs; set `PROPTEST_SEED` to vary).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration (`cases` is the only knob the tree uses; the
/// per-filter reject cap is fixed — see [`Strategy::prop_filter`]).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies during a test run.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG for a named test (override with `PROPTEST_SEED`).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only values satisfying `pred` (rejection sampling).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Transform generated values.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..65_536 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "proptest: filter `{}` rejected 65536 consecutive draws",
            self.whence
        );
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix edge values in: properties over integers usually
                // break at 0 / MIN / MAX, which pure-uniform rarely hits.
                match rng.next_u64() % 16 {
                    0 => 0 as $ty,
                    1 => <$ty>::MAX,
                    2 => <$ty>::MIN,
                    _ => rng.next_u64() as $ty,
                }
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            4 => f64::INFINITY,
            5 => f64::NEG_INFINITY,
            6 => f64::NAN,
            7 => f64::MIN_POSITIVE,
            // Raw-bit draws cover the whole representable range.
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..cfg.cases {
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10u32..20, f in -2.0f64..2.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn filtered_values_satisfy(v in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
            prop_assert!(v.is_finite());
        }

        #[test]
        fn vec_sizes_respected(xs in collection::vec(any::<u8>(), 3..7), exact in collection::vec(any::<u8>(), 5)) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert_eq!(exact.len(), 5);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let sa = (0u64..0_u64.wrapping_add(8)).map(|_| (0u8..255).generate(&mut a));
        let sb = (0u64..0_u64.wrapping_add(8)).map(|_| (0u8..255).generate(&mut b));
        assert!(sa.eq(sb));
    }
}
