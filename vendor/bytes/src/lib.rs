//! Vendored subset of the `bytes` crate: `Buf`, `BufMut`, and `BytesMut`.
//!
//! Offline build. Semantics match the real crate for the surface used here:
//! `get_*` methods consume from the front and panic on underflow; `put_*`
//! methods append; `BytesMut` derefs to `[u8]`.

use std::ops::{Deref, DerefMut};

macro_rules! get_impl {
    ($name:ident, $ty:ty, $n:expr, $from:ident) => {
        /// Read one value, consuming its bytes. Panics on underflow.
        fn $name(&mut self) -> $ty {
            let mut raw = [0u8; $n];
            let chunk = self.chunk();
            assert!(chunk.len() >= $n, "buffer underflow in get");
            raw.copy_from_slice(&chunk[..$n]);
            self.advance($n);
            <$ty>::$from(raw)
        }
    };
}

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Drop `n` bytes from the front. Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    get_impl!(get_u8, u8, 1, from_le_bytes);
    get_impl!(get_i8, i8, 1, from_le_bytes);
    get_impl!(get_u16, u16, 2, from_be_bytes);
    get_impl!(get_u16_le, u16, 2, from_le_bytes);
    get_impl!(get_i16, i16, 2, from_be_bytes);
    get_impl!(get_i16_le, i16, 2, from_le_bytes);
    get_impl!(get_u32, u32, 4, from_be_bytes);
    get_impl!(get_u32_le, u32, 4, from_le_bytes);
    get_impl!(get_i32, i32, 4, from_be_bytes);
    get_impl!(get_i32_le, i32, 4, from_le_bytes);
    get_impl!(get_u64, u64, 8, from_be_bytes);
    get_impl!(get_u64_le, u64, 8, from_le_bytes);
    get_impl!(get_i64, i64, 8, from_be_bytes);
    get_impl!(get_i64_le, i64, 8, from_le_bytes);
    get_impl!(get_f32, f32, 4, from_be_bytes);
    get_impl!(get_f32_le, f32, 4, from_le_bytes);
    get_impl!(get_f64, f64, 8, from_be_bytes);
    get_impl!(get_f64_le, f64, 8, from_le_bytes);

    /// Copy `dst.len()` bytes out, consuming them. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let chunk = self.chunk();
        assert!(
            chunk.len() >= dst.len(),
            "buffer underflow in copy_to_slice"
        );
        dst.copy_from_slice(&chunk[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }
}

macro_rules! put_impl {
    ($name:ident, $ty:ty, $to:ident) => {
        /// Append one value.
        fn $name(&mut self, v: $ty) {
            self.put_slice(&v.$to());
        }
    };
}

/// Append access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    put_impl!(put_u8, u8, to_le_bytes);
    put_impl!(put_i8, i8, to_le_bytes);
    put_impl!(put_u16, u16, to_be_bytes);
    put_impl!(put_u16_le, u16, to_le_bytes);
    put_impl!(put_i16, i16, to_be_bytes);
    put_impl!(put_i16_le, i16, to_le_bytes);
    put_impl!(put_u32, u32, to_be_bytes);
    put_impl!(put_u32_le, u32, to_le_bytes);
    put_impl!(put_i32, i32, to_be_bytes);
    put_impl!(put_i32_le, i32, to_le_bytes);
    put_impl!(put_u64, u64, to_be_bytes);
    put_impl!(put_u64_le, u64, to_le_bytes);
    put_impl!(put_i64, i64, to_be_bytes);
    put_impl!(put_i64_le, i64, to_le_bytes);
    put_impl!(put_f32, f32, to_be_bytes);
    put_impl!(put_f32_le, f32, to_le_bytes);
    put_impl!(put_f64, f64, to_be_bytes);
    put_impl!(put_f64_le, f64, to_le_bytes);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remove all bytes.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Take the contents as a `Vec<u8>` ("freeze" analog for this subset).
    pub fn freeze(self) -> Vec<u8> {
        self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_both_orders() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32(0xdead_beef);
        b.put_f64_le(1.5);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_and_slice_view() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        let mut r: &[u8] = &b;
        r.advance(6);
        assert_eq!(r, b"world");
        assert_eq!(b.to_vec(), b"hello world");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn get_underflow_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }
}
