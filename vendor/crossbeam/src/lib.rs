//! Vendored subset of the `crossbeam` API backed by `std`.
//!
//! Offline build: only the surface the tree uses is provided —
//! `crossbeam::thread::scope` with `Scope::spawn`, and
//! `crossbeam::channel::{bounded, unbounded}` with timeout-aware receives.

pub mod channel {
    //! MPSC channels with the crossbeam error vocabulary, over `std::sync::mpsc`.
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            };
            Sender { inner }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// A channel with a bounded capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Wait at most `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drain-and-iterate (blocking) — completes when senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `Result`-returning `scope`.
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned closures receive `&Scope` (crossbeam style).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure gets a `&Scope` so it can
        /// spawn siblings, like crossbeam's.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in any scoped thread surfaces as `Err`, matching
    /// crossbeam (callers `.expect(..)` it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn scope_joins_all() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_propagates_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_roundtrip_and_timeout() {
        let (tx, rx) = super::channel::bounded(4);
        tx.send(42u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }
}
