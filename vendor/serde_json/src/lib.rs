//! Vendored subset of `serde_json` over the serde shim's `JsonValue`.
//!
//! Serialization is deterministic (struct fields in declaration order, map
//! keys sorted) — the unicore trust model signs byte-for-byte over
//! `to_vec` output, so determinism is load-bearing, not cosmetic.

pub use serde::JsonValue as Value;
use serde::{Deserialize, Serialize};

/// Parse/serialize failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

// --- writing ---------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that roundtrips.
                out.push_str(&format!("{f:?}"));
            } else {
                // Real serde_json errors on non-finite; emitting null matches
                // its `Value` display fallback and keeps signing total.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to the in-memory value tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_lit("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("bad literal"))
                }
            }
            Some(b't') => {
                if self.eat_lit("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("bad literal"))
                }
            }
            Some(b'f') => {
                if self.eat_lit("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("bad literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // BMP only — surrogate pairs don't occur in our output.
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if text.is_empty() {
            return Err(Error::new("expected a value"));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }
}

/// Parse JSON bytes into the value tree.
pub fn value_from_slice(data: &[u8]) -> Result<Value, Error> {
    let mut p = Parser::new(data);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != data.len() {
        return Err(Error::new("trailing garbage after value"));
    }
    Ok(v)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(data: &[u8]) -> Result<T, Error> {
    let v = value_from_slice(data)?;
    T::from_value(&v).ok_or_else(|| Error::new("shape mismatch for target type"))
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(data: &str) -> Result<T, Error> {
    from_slice(data.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn u64_precision_preserved() {
        let big: u64 = 0xdead_beef_cafe_f00d;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\tüñíçode \\ end".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vec_and_nesting() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![255]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[255]]");
        assert_eq!(from_str::<Vec<Vec<u8>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn deterministic_output() {
        let v: Vec<u64> = vec![3, 1, 2];
        assert_eq!(to_vec(&v).unwrap(), to_vec(&v).unwrap());
    }
}
