//! Vendored subset of the `rand` API (offline build).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods the tree uses (`gen_range`, `gen_bool`). The generator
//! is xoshiro256++ seeded via SplitMix64 — deterministic for a given seed,
//! statistically solid for simulations and tests; it does not reproduce the
//! exact streams of the real crate (nothing in-tree depends on those).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (the only constructor the tree uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty f64 range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // `start + u * span` can round up to exactly `end` when the span is
        // not a power of two; the Range contract excludes it.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty f32 range");
        let v = self.start + (unit_f64(rng) as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty f64 range");
        // Treat as half-open: the closed upper bound has measure zero anyway.
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty f32 range");
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }
}

macro_rules! int_range {
    ($ty:ty, $wide:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty integer range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Modulo draw; bias is < span/2^64, immaterial for test loads.
                let off = rng.next_u64() % span;
                (self.start as $wide).wrapping_add(off as $wide) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $ty;
                }
                let off = rng.next_u64() % (span + 1);
                (lo as $wide).wrapping_add(off as $wide) as $ty
            }
        }
    };
}

int_range!(u8, u64);
int_range!(u16, u64);
int_range!(u32, u64);
int_range!(u64, u64);
int_range!(usize, u64);
int_range!(i8, i64);
int_range!(i16, i64);
int_range!(i32, i64);
int_range!(i64, i64);
int_range!(isize, i64);

/// Convenience extension methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Named RNG types.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (SplitMix64-expanded seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 21), b.gen_range(0u64..1 << 21));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3u32..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
