//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Written against raw `proc_macro` (no syn/quote available offline). The
//! parser handles the shapes this workspace actually derives on: named
//! structs, tuple structs, unit structs, and enums with unit / tuple /
//! struct variants, with plain (unbounded) type parameters. Generated
//! impls follow serde's externally-tagged JSON conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    type_params: Vec<String>,
    data: Data,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// Skip attributes (`#[...]`, including doc comments) at the iterator head.
fn skip_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        // Consume `!` (inner attr) if present, then the bracket group.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '!' {
                iter.next();
            }
        }
        iter.next(); // the [...] group
    }
}

/// Skip a `pub` / `pub(...)` visibility qualifier.
fn skip_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Skip tokens until a top-level comma (consumed) or end of stream.
/// Tracks `<`/`>` depth so commas inside generic arguments don't split.
fn skip_to_comma(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' if !prev_dash => depth -= 1, // `->` arrow guard
                ',' if depth == 0 => return,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut iter = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                // skip `:` then the type up to the next top-level comma
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                skip_to_comma(&mut iter);
            }
            None => break,
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

fn tuple_arity(group: TokenStream) -> usize {
    let mut iter = group.into_iter().peekable();
    let mut arity = 0usize;
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        arity += 1;
        skip_to_comma(&mut iter);
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut iter = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.stream();
                        iter.next();
                        VariantFields::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.stream();
                        iter.next();
                        VariantFields::Tuple(tuple_arity(g))
                    }
                    _ => VariantFields::Unit,
                };
                // skip discriminant (`= expr`) and the separating comma
                skip_to_comma(&mut iter);
                variants.push(Variant { name, fields });
            }
            None => break,
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    if kind != "struct" && kind != "enum" {
        panic!("serde_derive: only struct/enum supported, got `{kind}`");
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };

    // Generics: collect bare type-parameter names (bounds/lifetimes/consts
    // beyond what this tree uses are rejected loudly rather than miscompiled).
    let mut type_params = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1i32;
            let mut at_param = true;
            for tt in iter.by_ref() {
                match &tt {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => at_param = true,
                        '\'' => panic!("serde_derive: lifetimes unsupported"),
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && at_param => {
                        let s = id.to_string();
                        if s == "const" {
                            panic!("serde_derive: const generics unsupported");
                        }
                        type_params.push(s);
                        at_param = false;
                    }
                    _ => {}
                }
            }
        }
    }

    // Skip a `where` clause if present; stop at the body.
    let data = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if kind == "struct" {
                    Data::NamedStruct(parse_named_fields(g.stream()))
                } else {
                    Data::Enum(parse_variants(g.stream()))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                break Data::TupleStruct(tuple_arity(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Data::UnitStruct,
            Some(_) => continue, // tokens of a where clause
            None => panic!("serde_derive: missing item body"),
        }
    };

    Item {
        name,
        type_params,
        data,
    }
}

/// `impl<T: ::serde::Trait, ...>` header and `Name<T, ...>` type, as strings.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.type_params.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let bare = item.type_params.join(", ");
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", item.name, bare),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "Serialize");
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::JsonValue::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::JsonValue::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Data::UnitStruct => "::serde::JsonValue::Null".to_string(),
        Data::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::JsonValue::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::JsonValue::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::JsonValue::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {payload})])",
                                binds.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::JsonValue::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::JsonValue::Object(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::JsonValue {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::option::Option::Some({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::option::Option::Some({name}(::serde::Deserialize::from_value(v)?))")
        }
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(arr.get({i})?)?"))
                .collect();
            format!(
                "{{ let arr = v.as_array()?; if arr.len() != {n} {{ return ::std::option::Option::None; }} ::std::option::Option::Some({name}({})) }}",
                inits.join(", ")
            )
        }
        Data::UnitStruct => format!("::std::option::Option::Some({name})"),
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::option::Option::Some({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::option::Option::Some({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(arr.get({i})?)?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let arr = payload.as_array()?; if arr.len() != {n} {{ return ::std::option::Option::None; }} ::std::option::Option::Some({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(payload.get(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::option::Option::Some({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                     return match s {{ {unit} _ => ::std::option::Option::None }};\n\
                 }}\n\
                 let obj = v.as_object()?;\n\
                 if obj.len() != 1 {{ return ::std::option::Option::None; }}\n\
                 let (tag, payload) = &obj[0];\n\
                 match tag.as_str() {{ {tagged} _ => ::std::option::Option::None }}",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(v: &::serde::JsonValue) -> ::std::option::Option<Self> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
