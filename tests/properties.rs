//! Property-based tests over the core invariants (proptest).

use gridsteer::ckpt::{CkptError, SectionWriter, Snapshot, VERSION};
use gridsteer::lbm::{LbmConfig, TwoFluidLbm};
use gridsteer::netsim::{EventQueue, SimTime};
use gridsteer::pepc::{decompose, morton_key, morton_unkey, Particle};
use gridsteer::unicore::{Ajo, Task};
use gridsteer::visit::{Endianness, Frame, MsgKind, VisitValue};
use gridsteer::viz::codec::{rle_decode, rle_encode, DeltaRleCodec};
use gridsteer::viz::Framebuffer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// VISIT frames roundtrip for arbitrary f64 payloads, both byte orders.
    #[test]
    fn visit_frame_roundtrip_f64(values in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 0..64), big in any::<bool>(), tag in any::<u32>()) {
        let order = if big { Endianness::Big } else { Endianness::Little };
        let f = Frame::with_value(MsgKind::Data, tag, order, VisitValue::F64(values));
        let back = Frame::decode(&f.encode()).unwrap();
        prop_assert_eq!(back, f);
    }

    /// VISIT frames roundtrip for arbitrary byte payloads.
    #[test]
    fn visit_frame_roundtrip_bytes(data in proptest::collection::vec(any::<u8>(), 0..512), big in any::<bool>()) {
        let order = if big { Endianness::Big } else { Endianness::Little };
        let f = Frame::with_value(MsgKind::Reply, 7, order, VisitValue::Bytes(data));
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    /// Integer→float server-side conversion is exact below 2^53.
    #[test]
    fn widening_exact_below_2_53(v in -(1i64 << 53)..(1i64 << 53)) {
        let val = VisitValue::I64(vec![v]);
        let f = val.to_f64().unwrap()[0];
        prop_assert_eq!(f as i64, v);
    }

    /// RLE roundtrips on arbitrary data.
    #[test]
    fn rle_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    /// Delta+RLE codec reconstructs arbitrary frame sequences exactly.
    #[test]
    fn codec_stream_roundtrip(frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 64), 1..6)) {
        let mut enc = DeltaRleCodec::new();
        let mut dec = DeltaRleCodec::new();
        for bytes in frames {
            let mut fb = Framebuffer::new(4, 4);
            fb.bytes_mut().copy_from_slice(&bytes);
            let e = enc.encode(&fb);
            let out = dec.decode(&e, 4, 4).unwrap();
            prop_assert_eq!(out, fb);
        }
    }

    /// Morton keys are bijective on 21-bit coordinates.
    #[test]
    fn morton_bijective(x in 0u64..(1 << 21), y in 0u64..(1 << 21), z in 0u64..(1 << 21)) {
        prop_assert_eq!(morton_unkey(morton_key(x, y, z)), (x, y, z));
    }

    /// Domain decomposition always partitions the particle set and stamps
    /// consistent ranks, for any cloud and rank count.
    #[test]
    fn decomposition_partitions(n in 1usize..200, ranks in 1u16..9, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut particles: Vec<Particle> = (0..n).map(|i| Particle::at(
            [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)],
            1.0,
            i as u32,
        )).collect();
        let domains = decompose(&mut particles, ranks);
        let total: usize = domains.iter().map(|d| d.members.len()).sum();
        prop_assert_eq!(total, n);
        for d in &domains {
            for &i in &d.members {
                prop_assert_eq!(particles[i].rank, d.rank);
            }
        }
    }

    /// LB mass is conserved for any miscibility steering schedule.
    #[test]
    fn lbm_mass_conserved_under_random_steering(steers in proptest::collection::vec(0.0f64..1.0, 1..4)) {
        let mut sim = TwoFluidLbm::new(LbmConfig { nx: 8, ny: 8, nz: 8, threads: 2, ..Default::default() });
        let (ma0, mb0) = sim.total_mass();
        for m in steers {
            sim.set_miscibility(m);
            sim.step_n(3);
        }
        let (ma, mb) = sim.total_mass();
        prop_assert!(((ma - ma0) / ma0).abs() < 1e-9);
        prop_assert!(((mb - mb0) / mb0).abs() < 1e-9);
    }

    /// AJO DAGs built by chained add_task always topo-sort, and the order
    /// respects every dependency.
    #[test]
    fn ajo_topo_order_valid(n in 1usize..20, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ajo = Ajo::new("gen", "v");
        let mut ids = Vec::new();
        for _ in 0..n {
            // depend on a random subset of existing tasks (acyclic by construction)
            let deps: Vec<u32> = ids.iter().copied().filter(|_| rng.gen_bool(0.3)).collect();
            ids.push(ajo.add_task(Task::StageOut { path: "x".into() }, &deps));
        }
        let order = ajo.topo_order().unwrap();
        prop_assert_eq!(order.len(), n);
        let pos = |id: u32| order.iter().position(|&x| x == id).unwrap();
        for t in &ajo.tasks {
            for &d in &t.after {
                prop_assert!(pos(d) < pos(t.id));
            }
        }
    }

    /// Snapshots roundtrip for arbitrary section sets — any chunk
    /// granularity, zero-length bodies included.
    #[test]
    fn ckpt_snapshot_roundtrip(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..96), 0..6),
        chunk in 0u32..48,
        seq in any::<u64>(),
        t in any::<u64>(),
    ) {
        let mut snap = Snapshot::new(seq, t);
        for (i, b) in bodies.iter().enumerate() {
            snap.push(&format!("sec/{i}"), chunk, b.clone());
        }
        let back = Snapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(&back, &snap);
        for (i, b) in bodies.iter().enumerate() {
            prop_assert_eq!(back.section(&format!("sec/{i}")).unwrap(), &b[..]);
        }
    }

    /// Float state survives the wire bit-exactly — NaN payloads,
    /// signed zeros, infinities, subnormals, anything a grid can hold.
    #[test]
    fn ckpt_float_sections_bit_exact(bits in proptest::collection::vec(any::<u64>(), 0..64)) {
        let field: Vec<f64> = bits.iter().copied().map(f64::from_bits).collect();
        let mut w = SectionWriter::new();
        w.put_f64_slice(&field);
        let mut snap = Snapshot::new(1, 2);
        snap.push("grid", 0, w.finish());
        let back = Snapshot::decode(&snap.encode()).unwrap();
        let mut r = back.reader("grid").unwrap();
        let out = r.get_f64_vec().unwrap();
        r.expect_end().unwrap();
        let out_bits: Vec<u64> = out.iter().copied().map(f64::to_bits).collect();
        prop_assert_eq!(out_bits, bits);
    }

    /// Any version but the reader's own is rejected with the typed
    /// error — never a guessy partial decode.
    #[test]
    fn ckpt_version_mismatch_rejected(v in any::<u16>(), body in proptest::collection::vec(any::<u8>(), 0..32)) {
        let v = if v == VERSION { v.wrapping_add(1) } else { v };
        let mut snap = Snapshot::new(0, 0);
        snap.push("s", 0, body);
        let mut bytes = snap.encode();
        bytes[6..8].copy_from_slice(&v.to_le_bytes()); // version field
        prop_assert_eq!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion { found: v, supported: VERSION })
        );
    }

    /// Every possible truncation of a valid snapshot fails with a typed
    /// error — no panic, no silent short read, and never a bogus Ok.
    #[test]
    fn ckpt_truncation_rejected(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..4),
        frac in 0.0f64..1.0,
    ) {
        let mut snap = Snapshot::new(3, 4);
        for (i, b) in bodies.iter().enumerate() {
            snap.push(&format!("s{i}"), 8, b.clone());
        }
        let bytes = snap.encode();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
        prop_assert!(matches!(err, CkptError::Truncated { .. } | CkptError::BadMagic));
    }

    /// A delta applied over its base reconstructs exactly the state a
    /// full snapshot carries — for any base, any mutation pattern, any
    /// chunk size — and full/delta blobs refuse to decode as each other.
    #[test]
    fn ckpt_delta_equals_full(
        base_body in proptest::collection::vec(any::<u8>(), 1..128),
        flips in proptest::collection::vec(any::<usize>(), 0..8),
        chunk in 1u32..32,
    ) {
        let mut base = Snapshot::new(10, 100);
        base.push("field", chunk, base_body.clone());
        let mut mutated = base_body;
        for f in &flips {
            let i = f % mutated.len();
            mutated[i] ^= 0x5a;
        }
        let mut next = Snapshot::new(11, 200);
        next.push("field", chunk, mutated);
        let full = next.encode();
        let delta = next.encode_delta(&base);
        prop_assert!(!Snapshot::is_delta(&full).unwrap());
        prop_assert!(Snapshot::is_delta(&delta).unwrap());
        let via_full = Snapshot::decode(&full).unwrap();
        let via_delta = Snapshot::decode_delta(&delta, &base).unwrap();
        prop_assert_eq!(&via_delta, &via_full);
        // the wrong decode path and the wrong base are typed rejections
        prop_assert_eq!(Snapshot::decode(&delta), Err(CkptError::IsDelta));
        prop_assert_eq!(Snapshot::decode_delta(&full, &base), Err(CkptError::NotADelta));
        let mut stranger = Snapshot::new(99, 100);
        stranger.push("field", chunk, base.section("field").unwrap().to_vec());
        prop_assert_eq!(
            Snapshot::decode_delta(&delta, &stranger),
            Err(CkptError::BaseMismatch { expected: 10, found: 99 })
        );
    }

    /// Event queues deliver in nondecreasing time order for any schedule.
    #[test]
    fn event_queue_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
        }
    }
}
