//! The tier-1 fault-scenario matrix.
//!
//! Every test here is one end-to-end steering run through the
//! `gridsteer_harness` scenario engine: N participants, a real simulation
//! backend (LBM or PEPC), per-client fault-injectable links — all driven by
//! the virtual clock and one seed. No wall-clock sleeps, no sockets; the
//! whole matrix replays byte-identically for fixed seeds.
//!
//! Covered fault axes (ISSUE 2 acceptance): packet loss, latency jitter,
//! partition + heal, client churn, master handoff under partition, mid-run
//! migration, both simulation backends, and the seed/digest determinism
//! contract.

use gridsteer::harness::Scenario;
use gridsteer::lbm::LbmConfig;
use gridsteer::netsim::{Link, SimTime};
use gridsteer::pepc::PepcConfig;

fn tiny_lbm() -> LbmConfig {
    LbmConfig {
        nx: 6,
        ny: 6,
        nz: 6,
        threads: 1,
        ..Default::default()
    }
}

fn tiny_pepc() -> PepcConfig {
    PepcConfig {
        n_target: 50,
        ranks: 2,
        ..PepcConfig::small()
    }
}

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

/// S1 — clean links: every sample arrives, latencies inside the §4.3
/// post-processing budget, nothing dropped.
#[test]
fn s1_baseline_lbm_clean_links() {
    let r = Scenario::named("s1-baseline")
        .seed(101)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::gwin())
        .participant("carol", Link::transatlantic())
        .duration(SimTime::from_secs(2))
        .run();
    assert_eq!(r.broadcasts, 20);
    assert_eq!(r.total_drops(), 0);
    assert_eq!(r.total_deliveries(), 60);
    assert!(r.within_budget, "clean links must meet the 5s budget");
    assert!(r.within_skew, "one-frame divergence bound must hold");
    assert_eq!(r.final_progress, 20);
}

/// S2 — a mid-run loss burst on one client: that link (and only that
/// link) drops samples; steering through a healthy link still works.
#[test]
fn s2_packet_loss_burst_on_one_client() {
    let r = Scenario::named("s2-loss")
        .seed(102)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::transatlantic())
        .duration(SimTime::from_secs(4))
        .loss_at(ms(500), "bob", 500_000) // 50% for one second
        .loss_at(ms(1500), "bob", 0)
        .steer_at(ms(2000), "alice", "miscibility", 0.2)
        .run();
    let bob = &r.links.iter().find(|(n, _)| n == "bob").unwrap().1;
    let alice = &r.links.iter().find(|(n, _)| n == "alice").unwrap().1;
    assert!(bob.dropped > 0, "burst must drop something: {bob:?}");
    assert_eq!(alice.dropped, 0, "loss must stay on bob's link");
    assert_eq!(r.steers_applied, 1);
    assert!(r
        .session_events
        .iter()
        .any(|e| e.starts_with("Steered(alice,miscibility")));
}

/// S3 — heavy latency jitter: arrivals spread out (p99 > p50, nonzero
/// skew) but stay inside the post-processing budget — and a monitor-bus
/// viewer on the same jittery backbone still meets the §4.2
/// desktop-render budget (333 ms per frame) on every delivery.
#[test]
fn s3_latency_jitter_stays_in_budget() {
    use gridsteer::harness::Transport;
    let r = Scenario::named("s3-jitter")
        .seed(103)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::transatlantic())
        .viewer_via("desk", Link::transatlantic(), Transport::Visit)
        .duration(SimTime::from_secs(3))
        .jitter_at(SimTime::ZERO, "bob", ms(120))
        .jitter_at(SimTime::ZERO, "desk", ms(120))
        .run();
    assert_eq!(r.total_drops(), 0);
    assert!(r.p99 > r.p50, "jitter must spread the percentiles");
    assert!(r.max_skew > SimTime::ZERO);
    assert!(r.within_budget, "120ms jitter is far inside the 5s budget");
    assert_eq!(r.post_budget_violations, 0);
    // the desktop-render budget, scored per delivery on the virtual clock
    let desk = r.viewer("desk").unwrap();
    assert_eq!(desk.budget, "desktop-render");
    assert!(desk.delivered > 0);
    assert_eq!(
        desk.budget_violations, 0,
        "75ms latency + 120ms jitter stays under 333ms: {desk:?}"
    );
    assert!(desk.max_latency <= SimTime::from_millis(333));
}

/// S4 — partition + heal: during the partition window the client receives
/// nothing; after healing, deliveries resume.
#[test]
fn s4_partition_and_heal() {
    let r = Scenario::named("s4-partition")
        .seed(104)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::gwin())
        .duration(SimTime::from_secs(3))
        .partition_at(ms(1000), "bob")
        .heal_at(ms(2000), "bob")
        .run();
    let bob = &r.links.iter().find(|(n, _)| n == "bob").unwrap().1;
    // samples at 1.1s..2.0s fall in the window: exactly 10 drops
    assert_eq!(bob.dropped, 10, "{bob:?}");
    assert_eq!(bob.delivered, 20, "deliveries resume after heal");
    assert!(r.engine_events.iter().any(|e| e.contains("partition bob")));
    assert!(r.engine_events.iter().any(|e| e.contains("heal bob")));
}

/// S5 — client churn: joins and leaves mid-run, including the master, and
/// the session stays steerable throughout.
#[test]
fn s5_client_churn_keeps_session_steerable() {
    let r = Scenario::named("s5-churn")
        .seed(105)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::gwin())
        .duration(SimTime::from_secs(3))
        .join_at(ms(500), "carol", Link::transatlantic())
        .leave_at(ms(1000), "alice") // master departs → bob promoted
        .join_at(ms(1500), "dave", Link::uk_janet())
        .leave_at(ms(2000), "carol")
        .steer_at(ms(2200), "bob", "miscibility", 0.4)
        .run();
    assert!(r
        .session_events
        .contains(&"MasterPassed(alice->bob)".to_string()));
    assert_eq!(r.steers_applied, 1, "promoted master must steer");
    for name in ["carol", "dave"] {
        assert!(
            r.links.iter().any(|(n, s)| n == name && s.delivered > 0),
            "{name} never got a sample"
        );
    }
    assert!(r.session_events.contains(&"Left(carol)".to_string()));
}

/// S6 — master handoff under partition: the master's link is cut, their
/// steer is lost in transit, they leave, and the longest-joined remaining
/// participant takes the token and steers successfully.
#[test]
fn s6_master_handoff_under_partition() {
    let r = Scenario::named("s6-handoff")
        .seed(106)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::gwin())
        .participant("carol", Link::transatlantic())
        .duration(SimTime::from_secs(3))
        .partition_at(ms(400), "alice")
        .steer_at(ms(600), "alice", "miscibility", 0.7) // lost in transit
        .leave_at(ms(1000), "alice")
        .steer_at(ms(1500), "bob", "miscibility", 0.3)
        .run();
    assert_eq!(r.steers_lost, 1);
    assert_eq!(r.steers_applied, 1);
    assert!(r.engine_events.iter().any(|e| e.contains("steer-lost")));
    assert!(r
        .session_events
        .contains(&"MasterPassed(alice->bob)".to_string()));
    assert!(r
        .session_events
        .iter()
        .any(|e| e.starts_with("Steered(bob,miscibility")));
}

/// S7 — mid-run migration: a checkpoint-sized transfer pauses the sample
/// stream for a gap that stays inside the §4.4 simulation-loop budget, and
/// the run continues afterwards.
#[test]
fn s7_midrun_migration_lbm() {
    let r = Scenario::named("s7-migration")
        .seed(107)
        .lbm(tiny_lbm())
        .participant("alice", Link::uk_janet())
        .participant("bob", Link::gwin())
        .duration(SimTime::from_secs(6))
        .steer_at(ms(500), "alice", "miscibility", 0.1)
        .migrate_at(ms(1000), "london", "phoenix")
        .run();
    assert_eq!(r.migrations.len(), 1);
    let m = &r.migrations[0];
    assert!(m.bytes > 0);
    assert!(
        r.migrations_within_budget(),
        "gap {} busts the 60s tolerance",
        m.gap
    );
    assert!(r.broadcasts_skipped > 0, "blackout must skip sample ticks");
    assert!(
        r.broadcasts > 10,
        "sampling must resume after the gap: {}",
        r.broadcasts
    );
    assert_eq!(r.steers_applied, 1, "steer before migration must apply");
}

/// S8 — the PEPC backend under loss: plasma samples fan out, a damping
/// steer lands, and drops are confined to the lossy link.
#[test]
fn s8_pepc_backend_with_loss() {
    let r = Scenario::named("s8-pepc-loss")
        .seed(108)
        .pepc(tiny_pepc())
        .participant("juelich", Link::gwin())
        .participant("phoenix", Link::transatlantic())
        .duration(SimTime::from_secs(2))
        .loss_at(SimTime::ZERO, "phoenix", 300_000)
        .steer_at(ms(700), "juelich", "damping", 0.5)
        .run();
    assert_eq!(r.backend, "pepc");
    assert!(r.broadcasts > 0);
    let phx = &r.links.iter().find(|(n, _)| n == "phoenix").unwrap().1;
    let jue = &r.links.iter().find(|(n, _)| n == "juelich").unwrap().1;
    assert!(phx.dropped > 0, "30% loss over 20 samples: {phx:?}");
    assert_eq!(jue.dropped, 0);
    assert!(r
        .session_events
        .iter()
        .any(|e| e.starts_with("Steered(juelich,damping")));
}

/// S9 — PEPC with jitter and churn: a second steerer joins, takes the
/// token, and steers the laser while arrivals jitter.
#[test]
fn s9_pepc_jitter_and_token_pass() {
    let r = Scenario::named("s9-pepc-jitter")
        .seed(109)
        .pepc(tiny_pepc())
        .participant("juelich", Link::gwin())
        .duration(SimTime::from_secs(2))
        .jitter_at(SimTime::ZERO, "juelich", ms(40))
        .join_at(ms(400), "stuttgart", Link::gwin())
        .pass_master_at(ms(800), "juelich", "stuttgart")
        .steer_at(ms(1200), "stuttgart", "laser_amplitude", 2.5)
        .run();
    assert!(r
        .session_events
        .contains(&"MasterPassed(juelich->stuttgart)".to_string()));
    assert!(r
        .session_events
        .iter()
        .any(|e| e.starts_with("Steered(stuttgart,laser_amplitude")));
    assert!(r.p99 > SimTime::ZERO);
    assert!(r.within_budget);
}

/// S10 — combined stress: loss + jitter + partition/heal + token pass +
/// migration in a single run, and the report digest is reproducible.
#[test]
fn s10_combined_stress_is_reproducible() {
    let build = || {
        Scenario::named("s10-stress")
            .seed(110)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .participant("bob", Link::transatlantic())
            .participant("carol", Link::gwin())
            .duration(SimTime::from_secs(6))
            .loss_at(SimTime::ZERO, "bob", 150_000)
            .jitter_at(SimTime::ZERO, "carol", ms(60))
            .partition_at(ms(800), "carol")
            .heal_at(ms(1600), "carol")
            .pass_master_at(ms(2000), "alice", "carol")
            .steer_at(ms(2400), "carol", "miscibility", 0.15)
            .migrate_at(ms(3000), "manchester", "stuttgart")
    };
    let r1 = build().run();
    let r2 = build().run();
    assert_eq!(r1.render(), r2.render(), "stress run must replay exactly");
    assert_eq!(r1.digest(), r2.digest());
    assert!(r1.broadcasts > 0);
    assert_eq!(r1.steers_applied, 1);
    assert_eq!(r1.migrations.len(), 1);
}

/// Determinism regression (ISSUE 2 satellite): one seed run twice gives a
/// byte-identical report and digest — across backends.
#[test]
fn determinism_same_seed_identical_digest() {
    for (label, backend_is_pepc) in [("lbm", false), ("pepc", true)] {
        let build = || {
            let s = Scenario::named("det-regression")
                .seed(4242)
                .participant("alice", Link::uk_janet())
                .participant("bob", Link::transatlantic())
                .duration(SimTime::from_secs(2))
                .loss_at(SimTime::ZERO, "bob", 200_000)
                .jitter_at(SimTime::ZERO, "alice", ms(30))
                .steer_at(ms(900), "alice", "miscibility", 0.5);
            if backend_is_pepc {
                s.pepc(tiny_pepc())
                    .steer_at(ms(1100), "alice", "damping", 0.2)
            } else {
                s.lbm(tiny_lbm())
            }
        };
        let r1 = build().run();
        let r2 = build().run();
        assert_eq!(r1.render(), r2.render(), "{label}: report not byte-stable");
        assert_eq!(r1.digest(), r2.digest(), "{label}: digest drifted");
    }
}

/// Determinism regression, second half: a different seed re-derives every
/// stream, so a faulted scenario observably diverges — not just in the
/// digest but in actual behaviour (drop counts / latency percentiles).
#[test]
fn determinism_different_seed_diverges() {
    let build = |seed: u64| {
        Scenario::named("det-divergence")
            .seed(seed)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .participant("bob", Link::transatlantic())
            .duration(SimTime::from_secs(3))
            .loss_at(SimTime::ZERO, "bob", 400_000)
            .jitter_at(SimTime::ZERO, "alice", ms(50))
            .run()
    };
    let r1 = build(7);
    let r2 = build(8);
    assert_ne!(r1.digest(), r2.digest());
    assert!(
        r1.total_drops() != r2.total_drops() || r1.p50 != r2.p50,
        "different seeds must change observable behaviour"
    );
}

/// S11 — the mixed-transport interop run (ISSUE 4 tentpole): one LBM
/// session steered concurrently through VISIT, OGSA, COVISE and UNICORE
/// bus endpoints under injected loss. The report digest must be
/// byte-stable across re-runs and across executor pool sizes (the
/// EXEC_THREADS=1-vs-8 CI matrix re-runs this whole file).
#[test]
fn s11_mixed_transport_interop() {
    use gridsteer::harness::Transport;
    let build = || {
        Scenario::named("s11-mixed-transport")
            .seed(111)
            .lbm(tiny_lbm())
            .participant_via("alice", Link::uk_janet(), Transport::Visit)
            .participant_via("bob", Link::transatlantic(), Transport::Ogsa)
            .participant_via("carol", Link::gwin(), Transport::Covise)
            .participant_via("dave", Link::uk_janet(), Transport::Unicore)
            .join_at(ms(200), "eve", Link::transatlantic())
            .duration(SimTime::from_secs(4))
            .loss_at(ms(300), "eve", 500_000) // heavy loss on a viewer
            .loss_at(SimTime::ZERO, "bob", 100_000) // mild loss on a steerer
            .steer_at(ms(400), "alice", "miscibility", 0.8)
            .pass_master_at(ms(700), "alice", "bob")
            .steer_at(ms(1000), "bob", "miscibility", 0.6)
            .pass_master_at(ms(1400), "bob", "carol")
            .steer_at(ms(1800), "carol", "miscibility", 0.4)
            .pass_master_at(ms(2200), "carol", "dave")
            .steer_at(ms(2600), "dave", "miscibility", 0.2)
    };
    let r1 = build().run();
    let r2 = build().run();
    // byte-stable digest: identical across re-runs…
    assert_eq!(r1.render(), r2.render(), "mixed-transport run must replay");
    assert_eq!(r1.digest(), r2.digest());
    // …and across executor pool sizes (thread-count independence)
    let r_serial = build().pool(gridsteer_exec::shared(1)).run();
    let r_wide = build().pool(gridsteer_exec::shared(8)).run();
    assert_eq!(r1.digest(), r_serial.digest());
    assert_eq!(r1.digest(), r_wide.digest());
    // all four middleware endpoints attached with negotiated handshakes
    for needle in [
        "attach alice transport=visit",
        "attach bob transport=ogsa",
        "attach carol transport=covise",
        "attach dave transport=unicore",
    ] {
        assert!(
            r1.engine_events.iter().any(|e| e.contains(needle)),
            "missing handshake {needle:?} in {:?}",
            r1.engine_events
        );
    }
    // COVISE's module surface is scalar-only: its negotiated capability
    // set must exclude vec3/str while the VISIT one carries everything
    let caps_of = |who: &str| {
        r1.engine_events
            .iter()
            .find(|e| e.contains(&format!("attach {who}")))
            .unwrap()
            .clone()
    };
    assert!(caps_of("carol").contains("kinds=f64+i64+bool "));
    assert!(caps_of("alice").contains("kinds=f64+i64+bool+vec3+str "));
    // steering worked across transports: every steer either applied or
    // was (deterministically) lost on a faulted link, and at least three
    // different masters actually steered the simulation
    assert_eq!(r1.steers_applied + r1.steers_lost, 4);
    let steerers: Vec<&str> = ["alice", "bob", "carol", "dave"]
        .into_iter()
        .filter(|who| {
            r1.session_events
                .iter()
                .any(|e| e.starts_with(&format!("Steered({who},miscibility")))
        })
        .collect();
    assert!(
        steerers.len() >= 3,
        "need steers over ≥3 transports, got {steerers:?}"
    );
    // the injected loss bit: eve's viewer link must actually drop samples
    let eve = &r1.links.iter().find(|(n, _)| n == "eve").unwrap().1;
    assert!(eve.dropped > 0, "heavy loss must drop something: {eve:?}");
}

/// S12 — the mixed-transport *viewer* fan-out (ISSUE 5 tentpole): one LBM
/// session publishes its monitored output through the monitor bus to
/// VISIT + OGSA + COVISE + UNICORE subscribers under injected loss. The
/// digest (which folds every received frame's bytes) must be byte-stable
/// across re-runs and across executor pool sizes, and every delivery must
/// meet the §4.2 desktop-render budget.
#[test]
fn s12_mixed_transport_viewer_fanout() {
    use gridsteer::harness::Transport;
    let build = || {
        Scenario::named("s12-viewer-fanout")
            .seed(112)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .viewer_via("vis", Link::uk_janet(), Transport::Visit)
            .viewer_via("ogsa", Link::transatlantic(), Transport::Ogsa)
            .viewer_via("cov", Link::gwin(), Transport::Covise)
            .viewer_via("uni", Link::uk_janet(), Transport::Unicore)
            .viewer_every("uni", 2) // a polling consumer takes every 2nd
            .duration(SimTime::from_secs(4))
            .loss_at(ms(300), "ogsa", 400_000) // heavy loss on one viewer
            .partition_at(ms(1500), "vis")
            .heal_at(ms(2200), "vis")
            .steer_at(ms(800), "alice", "miscibility", 0.35)
    };
    let r1 = build().run();
    let r2 = build().run();
    // byte-stable digest: identical across re-runs…
    assert_eq!(r1.render(), r2.render(), "viewer fan-out must replay");
    assert_eq!(r1.digest(), r2.digest());
    // …and across executor pool sizes (thread-count independence)
    let r_serial = build().pool(gridsteer_exec::shared(1)).run();
    let r_wide = build().pool(gridsteer_exec::shared(8)).run();
    assert_eq!(r1.digest(), r_serial.digest());
    assert_eq!(r1.digest(), r_wide.digest());
    // all four middleware subscribers attached with negotiated handshakes
    for needle in [
        "attach-viewer vis budget=desktop-render transport=visit",
        "attach-viewer ogsa budget=desktop-render transport=ogsa",
        "attach-viewer cov budget=desktop-render transport=covise",
        "attach-viewer uni budget=desktop-render transport=unicore",
    ] {
        assert!(
            r1.engine_events.iter().any(|e| e.contains(needle)),
            "missing handshake {needle:?} in {:?}",
            r1.engine_events
        );
    }
    // COVISE's data plane takes only grids: negotiation must have
    // narrowed its capability set, and the hub must have filtered the
    // scalar/vec3 channels rather than shipping them
    let cov_attach = r1
        .engine_events
        .iter()
        .find(|e| e.contains("attach-viewer cov"))
        .unwrap();
    assert!(cov_attach.contains("kinds=grid2+grid3"), "{cov_attach}");
    let cov = r1.viewer("cov").unwrap();
    assert!(cov.filtered > 0, "scalars must be filtered for covise");
    // the full-caps VISIT viewer sees every channel while its link is up
    let vis = r1.viewer("vis").unwrap();
    assert!(vis.delivered > 0);
    assert!(
        vis.dropped > 0,
        "partition window must drop frames: {vis:?}"
    );
    // deterministic loss on the OGSA viewer's transatlantic link
    let og = r1.viewer("ogsa").unwrap();
    assert!(og.dropped > 0, "40% loss must drop something: {og:?}");
    // the polling UNICORE consumer is decimated, not starved
    let uni = r1.viewer("uni").unwrap();
    assert!(uni.decimated > 0);
    assert!(uni.delivered > 0);
    // every received frame stream is distinct and byte-folded
    let digests: Vec<&str> = ["vis", "ogsa", "cov", "uni"]
        .iter()
        .map(|n| r1.viewer(n).unwrap().frames_digest.as_str())
        .collect();
    assert!(digests.iter().all(|d| *d != "0000000000000000"));
    // zero desktop-render budget violations across every transport
    assert!(
        r1.viewers_within_budget(),
        "budget violations: {:?}",
        r1.viewers
    );
    assert_eq!(r1.post_budget_violations, 0);
    // the steer landed while the data plane was under fault
    assert_eq!(r1.steers_applied, 1);
    assert!(r1.monitor_frames > 0);
}

/// S13 — viewer churn (ISSUE 7 bugfix): a monitor subscriber leaves
/// mid-scenario through the hub's detach path — its delivery stream
/// freezes at the leave, its epoch state is pruned rather than leaked —
/// then a new viewer joins late and is served from the current state.
/// The whole churn sequence replays byte-identically across re-runs and
/// executor pool sizes.
#[test]
fn s13_viewer_churn_detaches_cleanly() {
    use gridsteer::harness::Transport;
    let build = || {
        Scenario::named("s13-viewer-churn")
            .seed(113)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .viewer_via("quitter", Link::gwin(), Transport::Visit)
            .viewer_via("stayer", Link::gwin(), Transport::Visit)
            .duration(SimTime::from_secs(4))
            .viewer_leave_at(ms(1700), "quitter")
            .viewer_leave_at(ms(1800), "ghost") // unknown: counted as a miss
            .viewer_join_at(ms(2600), "late", Link::uk_janet(), Transport::Unicore)
            .steer_at(ms(900), "alice", "miscibility", 0.3)
    };
    let r1 = build().run();
    let r2 = build().run();
    assert_eq!(
        r1.render(),
        r2.render(),
        "churn must replay byte-identically"
    );
    let r_serial = build().pool(gridsteer_exec::shared(1)).run();
    let r_wide = build().pool(gridsteer_exec::shared(8)).run();
    assert_eq!(r1.digest(), r_serial.digest());
    assert_eq!(r1.digest(), r_wide.digest());
    // the leave froze the quitter's stream: identical links, so the
    // stayer keeps receiving everything the quitter no longer does
    let quitter = r1.viewer("quitter").unwrap();
    let stayer = r1.viewer("stayer").unwrap();
    assert!(quitter.delivered > 0, "frames flowed before the leave");
    assert!(
        stayer.delivered > quitter.delivered,
        "no frames after the leave: {quitter:?} vs {stayer:?}"
    );
    assert!(r1
        .engine_events
        .iter()
        .any(|e| e.contains("viewer-leave quitter")));
    assert!(r1
        .engine_events
        .iter()
        .any(|e| e.contains("viewer-leave-miss ghost")));
    // the late joiner attached mid-run and still got a stream
    let late = r1.viewer("late").unwrap();
    assert!(late.delivered > 0, "late viewer starves: {late:?}");
    assert!(late.delivered < stayer.delivered);
    assert_ne!(late.frames_digest, "0000000000000000");
    assert_eq!(r1.steers_applied, 1);
}

/// S14 — hierarchical relay fabric (ISSUE 7 tentpole): the origin feeds a
/// region relay which feeds an edge relay; viewers hang off the edge over
/// mixed transports while one control client steers. The region uplink is
/// partitioned and healed (dropped batches are counted per tier, never
/// invented), the edge tier decimates a polling consumer, and a late
/// viewer is served its catch-up keyframe from the edge cache instead of
/// re-raising to the origin. Digest byte-stable across re-runs and pools.
#[test]
fn s14_relay_tier_fanout_under_faults() {
    use gridsteer::harness::Transport;
    let build = || {
        Scenario::named("s14-relay-tier")
            .seed(114)
            .lbm(tiny_lbm())
            .participant("alice", Link::uk_janet())
            .relay("region", Link::campus())
            .relay_under("edge", "region", Link::uk_janet())
            .relay_every("edge", 2) // the edge tier thins its children
            .viewer_at_relay("vis", "edge", Link::gwin(), Transport::Visit)
            .viewer_at_relay("cov", "edge", Link::gwin(), Transport::Covise)
            .viewer_via("direct", Link::gwin(), Transport::Ogsa)
            .duration(SimTime::from_secs(4))
            .partition_at(ms(1200), "region")
            .heal_at(ms(2000), "region")
            .viewer_join_relay_at(
                ms(2800),
                "late",
                "edge",
                Link::uk_janet(),
                Transport::Unicore,
            )
            .steer_at(ms(800), "alice", "miscibility", 0.35)
    };
    let r1 = build().run();
    let r2 = build().run();
    assert_eq!(r1.render(), r2.render(), "relay tree must replay");
    let r_serial = build().pool(gridsteer_exec::shared(1)).run();
    let r_wide = build().pool(gridsteer_exec::shared(8)).run();
    assert_eq!(r1.digest(), r_serial.digest());
    assert_eq!(r1.digest(), r_wide.digest());
    // tier accounting: the partition window drops region uplink batches,
    // and every ingested frame is either forwarded or decimated
    let region = r1.relay("region").unwrap();
    let edge = r1.relay("edge").unwrap();
    assert_eq!(region.parent, None);
    assert_eq!(edge.parent.as_deref(), Some("region"));
    assert!(region.uplink_dropped > 0, "partition must drop: {region:?}");
    assert_eq!(region.ingested, region.forwarded + region.decimated);
    assert!(edge.decimated > 0, "edge tier must thin: {edge:?}");
    assert_eq!(edge.ingested, edge.forwarded + edge.decimated);
    // the late joiner was served from the edge cache, not the origin
    assert!(edge.keyframes_served > 0, "late join must hit the cache");
    assert!(r1
        .engine_events
        .iter()
        .any(|e| e.contains("attach-viewer late via=edge")));
    let late = r1.viewer("late").unwrap();
    assert!(late.delivered > 0, "late viewer starves: {late:?}");
    // edge viewers and the directly-attached one all saw real bytes
    for name in ["vis", "cov", "direct", "late"] {
        assert_ne!(
            r1.viewer(name).unwrap().frames_digest,
            "0000000000000000",
            "{name} got nothing"
        );
    }
    // COVISE still negotiates grids-only through the relay tier
    let cov = r1.viewer("cov").unwrap();
    assert!(cov.filtered > 0, "scalars must be filtered for covise");
    // steering flows through the session plane regardless of the tree
    assert_eq!(r1.steers_applied, 1);
    assert!(r1.monitor_frames > 0);
}

/// S15 — crash + restore (ISSUE 9 tentpole): the whole process state is
/// checkpointed every 500 ms on the virtual clock; the process dies at
/// 1050 ms and is rebuilt at 1080 ms from the 1000 ms snapshot — backend
/// field state from raw float bits, hub registry and counters, session
/// shards, monitor fan-out — with the WAN clients and viewer
/// reconnecting. Nothing happened between cut and crash, so the restored
/// run's report digest is byte-identical to an uncrashed twin, across
/// re-runs and executor pool sizes. A *stale* checkpoint (sample ticks
/// ran past the cut before the crash) must observably rewind instead.
#[test]
fn s15_crash_restore_digest_equivalent_resume() {
    use gridsteer::harness::Transport;
    let build = || {
        Scenario::named("s15-crash-restore")
            .seed(115)
            .lbm(tiny_lbm())
            .participant("alice", Link::wan())
            .participant("bob", Link::wan())
            .viewer_via("desk", Link::wan(), Transport::Visit)
            .duration(SimTime::from_secs(3))
            .checkpoint_every(ms(500))
            .steer_at(ms(250), "alice", "miscibility", 0.4)
            .steer_at(ms(1450), "alice", "miscibility", 0.2)
    };
    let smooth = build().run();
    let recovered = || build().crash_at(ms(1050)).restore_at(ms(1080));
    let r1 = recovered().run();
    assert_eq!(
        smooth.render(),
        r1.render(),
        "recovery from an up-to-date checkpoint must be invisible"
    );
    assert_eq!(smooth.digest(), r1.digest());
    // …and stays invisible across re-runs and pool sizes
    let r2 = recovered().run();
    let r_serial = recovered().pool(gridsteer_exec::shared(1)).run();
    let r_wide = recovered().pool(gridsteer_exec::shared(8)).run();
    assert_eq!(r1.render(), r2.render());
    assert_eq!(r1.digest(), r_serial.digest());
    assert_eq!(r1.digest(), r_wide.digest());
    // both steers landed — including the one issued *after* the restore,
    // through a reconnected endpoint
    assert_eq!(r1.steers_applied, 2);
    // negative control: crash at 1250 ms leaves ticks 1100/1200 stranded
    // past the 1000 ms cut; the restore rewinds the backend, the report
    // diverges and progress is provably lost
    let stale = build().crash_at(ms(1250)).restore_at(ms(1280)).run();
    assert_ne!(smooth.digest(), stale.digest());
    assert!(
        stale.final_progress < smooth.final_progress,
        "stale restore must rewind: {} vs {}",
        stale.final_progress,
        smooth.final_progress
    );
}

/// S16 — delta-checkpoint restore (ISSUE 9): a 300 ms cadence cuts a full
/// snapshot at 300 ms and dirty-chunk deltas at 600 ms and 900 ms. The
/// crash at 950 ms is recovered at 980 ms by decoding the head and
/// folding both deltas — and still replays byte-identically to a run
/// that never checkpointed at all, across pool sizes, with relay-tier
/// monitor state restored mid-stream.
#[test]
fn s16_delta_checkpoint_chain_restore() {
    use gridsteer::harness::Transport;
    let build = || {
        Scenario::named("s16-delta-restore")
            .seed(116)
            .lbm(tiny_lbm())
            .participant("alice", Link::wan())
            .relay("region", Link::campus())
            .viewer_at_relay("leaf", "region", Link::wan(), Transport::Visit)
            .viewer_via("direct", Link::wan(), Transport::Covise)
            .duration(SimTime::from_secs(3))
            .steer_at(ms(250), "alice", "miscibility", 0.35)
            .steer_at(ms(1150), "alice", "miscibility", 0.15)
    };
    let smooth = build().run();
    let recovered = || {
        build()
            .checkpoint_every(ms(300))
            .crash_at(ms(950))
            .restore_at(ms(980))
    };
    let r1 = recovered().run();
    assert_eq!(
        smooth.render(),
        r1.render(),
        "delta-chain recovery must be invisible"
    );
    let r_serial = recovered().pool(gridsteer_exec::shared(1)).run();
    let r_wide = recovered().pool(gridsteer_exec::shared(8)).run();
    assert_eq!(r1.digest(), r_serial.digest());
    assert_eq!(r1.digest(), r_wide.digest());
    assert_eq!(r1.steers_applied, 2, "post-restore steer must land");
    // the relay tier kept streaming across the restore
    let region = r1.relay("region").unwrap();
    assert!(region.ingested > 0);
    assert_eq!(region.ingested, region.forwarded + region.decimated);
    assert_ne!(r1.viewer("leaf").unwrap().frames_digest, "0000000000000000");
}
