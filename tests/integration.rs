//! Cross-crate integration tests: each exercises a full path through
//! several subsystems, mirroring the paper's demonstrations.

use gridsteer::covise::{
    CollabSession, Controller, IsoSurface, ModuleId, ReadField, Renderer, SyncMode,
};
use gridsteer::lbm::{LbmConfig, TwoFluidLbm};
use gridsteer::netsim::{Link, NetModel};
use gridsteer::ogsa::{HostingEnv, Registry, SdeValue, SteeringService};
use gridsteer::pepc::{PepcConfig, PepcSim};
use gridsteer::steer_core::{
    ClientHandle, CollabServer, LbmSteerAdapter, LoopBudget, LoopMonitor, Migrator, ParamRegistry,
    ParamSpec, SteeringSession,
};
use gridsteer::unicore::{Ajo, CertAuthority, Gateway, Njs, Task, TrustStore, Tsi, UnicoreClient};
use gridsteer::visit::{MemLink, Password, SteeringClient, VisServer, VisitValue};
use gridsteer::viz::mc;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// F1 smoke: simulation → sample → isosurface → render → compressed frame,
/// with a live steer changing the physics along the way.
#[test]
fn figure1_pipeline_end_to_end() {
    let mut sim = TwoFluidLbm::new(LbmConfig::small());
    sim.set_miscibility(0.0);
    sim.step_n(40);
    let phi = sim.order_parameter();
    let mesh = mc::isosurface_smooth(&phi, 0.0);
    assert!(!mesh.is_empty(), "demixed fluid must have an interface");
    let mut r = gridsteer::viz::Rasterizer::new(64, 64);
    r.clear([0, 0, 0, 255]);
    let cam = gridsteer::viz::Camera::look_at(
        gridsteer::viz::Vec3::new(6.0, 18.0, -14.0),
        gridsteer::viz::Vec3::new(5.5, 5.5, 5.5),
    );
    r.draw_mesh(&cam, &mesh, [200, 80, 80, 255]);
    let mut codec = gridsteer::viz::DeltaRleCodec::new();
    let key = codec.encode(r.framebuffer());
    assert!(key.wire_size() > 0);
    // inter-frame coherence is where VizServer-style shipping wins: a
    // second frame of the same scene collapses to a tiny delta
    let delta = codec.encode(r.framebuffer());
    assert!(
        delta.wire_size() < key.raw_size / 50,
        "delta {} vs raw {}",
        delta.wire_size(),
        key.raw_size
    );
}

/// The full VISIT steering loop between two threads: the simulation is the
/// client; a queued parameter reaches it; it reacts.
#[test]
fn visit_steering_changes_running_lbm() {
    const TAG_MISC: u32 = 2;
    let (sim_link, vis_link) = MemLink::pair();
    let pw = Password::Keyed("job".into());
    let vis = std::thread::spawn(move || {
        let mut server = VisServer::accept(
            vis_link,
            &Password::Keyed("job".into()),
            9,
            Duration::from_secs(2),
        )
        .unwrap();
        server.queue_param(TAG_MISC, VisitValue::scalar_f64(0.0));
        server.serve_until_idle(Duration::from_millis(50), 4);
        server
    });
    let mut client = SteeringClient::connect(sim_link, &pw, 9, Duration::from_secs(2)).unwrap();
    let mut sim = TwoFluidLbm::new(LbmConfig::small());
    for _ in 0..3 {
        if let Ok(Some(v)) = client.request(TAG_MISC) {
            sim.set_miscibility(v.to_f64().unwrap()[0]);
        }
        sim.step_n(2);
    }
    client.close();
    assert_eq!(sim.miscibility(), 0.0, "steer never arrived");
    vis.join().unwrap();
}

/// UNICORE path with an actual simulation installed as the application:
/// consign → incarnate → run LB steps inside the TSI → fetch the result.
#[test]
fn unicore_job_runs_simulation_and_spools_result() {
    let ca = CertAuthority::new("CA", 1);
    let mut trust = TrustStore::new();
    trust.trust(&ca);
    let (cert, key) = ca.issue("CN=porter");
    let mut tsi = Tsi::with_builtins();
    tsi.install_app(
        "lbm",
        Arc::new(
            |args: &[String], dir: &mut std::collections::BTreeMap<String, Vec<u8>>| {
                let steps: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
                let mut sim = TwoFluidLbm::new(LbmConfig::small());
                sim.set_miscibility(0.0);
                sim.step_n(steps);
                dir.insert(
                    "output.dat".into(),
                    format!("{:.6e}", sim.demix_metric()).into_bytes(),
                );
                Ok(format!("ran {steps} steps"))
            },
        ),
    );
    let mut gw = Gateway::new("gw", trust);
    gw.add_vsite(Njs::new("csar", tsi));
    let client = UnicoreClient::new(cert, key);
    let mut ajo = Ajo::new("lbm-batch", "csar");
    let run = ajo.add_task(
        Task::Execute {
            command: "lbm".into(),
            args: vec!["20".into()],
        },
        &[],
    );
    ajo.add_task(
        Task::StageOut {
            path: "output.dat".into(),
        },
        &[run],
    );
    let id = client.consign(&mut gw, ajo).unwrap();
    client.run_queued(&mut gw, "csar").unwrap();
    let files = client.fetch(&mut gw, "csar", id).unwrap();
    let metric: f64 = String::from_utf8(files[0].1.clone())
        .unwrap()
        .parse()
        .unwrap();
    assert!(metric > 0.0, "simulation produced no demixing metric");
}

/// Figure-2 flow against a *live* simulation: registry discovery, bind,
/// steer through the OGSA service — and the physics responds.
#[test]
fn ogsa_service_steers_live_simulation() {
    let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
    let mut env = HostingEnv::new();
    let steer_gsh = env.host(
        "steer",
        Box::new(SteeringService::new(
            "lbm",
            Arc::new(Mutex::new(LbmSteerAdapter::new(sim.clone())))
                as Arc<Mutex<dyn gridsteer::ogsa::Steerable>>,
        )),
        Some(300),
    );
    let reg = env.host("registry", Box::new(Registry::new()), None);
    env.invoke(
        &reg,
        "publish",
        &[
            SdeValue::Str(steer_gsh.clone()),
            SdeValue::Str(SteeringService::PORT_TYPE.into()),
            SdeValue::Str("LB demo".into()),
        ],
    )
    .unwrap();
    // client side: discover + bind + steer
    let found = env
        .invoke(
            &reg,
            "discover",
            &[SdeValue::Str(SteeringService::PORT_TYPE.into())],
        )
        .unwrap();
    let handle = found.first().unwrap().as_list().unwrap()[0].clone();
    let r = env
        .invoke(
            &handle,
            "setParam",
            &[SdeValue::Str("miscibility".into()), SdeValue::F64(0.25)],
        )
        .unwrap();
    assert!(r.is_ok());
    assert_eq!(sim.lock().miscibility(), 0.25);
}

/// Multi-process-shaped TCP steering with a real simulation thread: the
/// repro hint's "multi-client steering server" scenario.
#[test]
fn tcp_steering_server_drives_simulation_thread() {
    let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
    let mut reg = ParamRegistry::new();
    reg.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
    let session = Arc::new(Mutex::new(SteeringSession::new(reg)));
    let server = CollabServer::start(session.clone()).unwrap();
    let addr = server.addr().to_string();
    // simulation thread applies the registry value each step
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sim_thread = {
        let (sim, session, stop) = (sim.clone(), session.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let m = session
                    .lock()
                    .params
                    .get_value("miscibility")
                    .and_then(|v| v.as_f64())
                    .unwrap();
                let mut s = sim.lock();
                s.set_miscibility(m);
                s.step();
                drop(s);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let mut master = ClientHandle::connect(&addr, "master").unwrap();
    let mut viewer = ClientHandle::connect(&addr, "viewer").unwrap();
    master.set("miscibility", 0.05).unwrap();
    assert!(viewer.set("miscibility", 0.5).is_err());
    // wait for the simulation to pick the steer up
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        if (sim.lock().miscibility() - 0.05).abs() < 1e-12 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "steer never applied");
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sim_thread.join().unwrap();
}

/// Migration keeps a steering session live and within the §4.4 budget.
#[test]
fn migration_mid_session_stays_in_budget() {
    let (net, ids) = NetModel::sc2003();
    let migrator = Migrator::new(&net);
    let mut sim = TwoFluidLbm::new(LbmConfig::small());
    sim.set_miscibility(0.2);
    sim.step_n(5);
    let before = sim.steps();
    let (mut sim, report) = migrator.migrate(sim, ids["london"], ids["manchester"]);
    sim.step_n(5);
    assert_eq!(sim.steps(), before + 5);
    assert_eq!(sim.miscibility(), 0.2);
    let mut monitor = LoopMonitor::new(LoopBudget::Simulation);
    monitor.record(report.frame_gap);
    assert!(monitor.report().within_budget, "gap {}", report.frame_gap);
}

/// Three-site COVISE collaboration over PEPC-derived content stays
/// consistent across a master handoff (the F4 scenario, small).
#[test]
fn covise_collab_consistent_over_pepc_field() {
    // derive a density field from a PEPC snapshot
    let mut pepc = PepcSim::new(PepcConfig::small());
    pepc.step_n(3);
    let snap = pepc.snapshot();
    let n = 10usize;
    let mut field = gridsteer::viz::Field3::zeros(n, n, n);
    for p in &snap.positions {
        let q = |v: f32| (((v + 1.5) / 3.0).clamp(0.0, 0.999) * n as f32) as usize;
        let (x, y, z) = (q(p[0]), q(p[1]), q(p[2]));
        let cur = field.get(x, y, z);
        field.set(x, y, z, cur + 1.0);
    }
    let build = move |ctl: &mut Controller, host: usize| {
        let read = ctl.add_module(host, Box::new(ReadField::new(field.clone())));
        let iso = ctl.add_module(host, Box::new(IsoSurface::new()));
        let render = ctl.add_module(host, Box::new(Renderer::new(32)));
        ctl.connect(read, "field", iso, "field").unwrap();
        ctl.connect(iso, "mesh", render, "mesh").unwrap();
        ctl.set_param(iso, "isovalue", 0.5);
        render
    };
    let mut session = CollabSession::new(
        &["juelich", "manchester", "phoenix"],
        SyncMode::ParamSync,
        build,
        |i| {
            if i == 2 {
                Link::transatlantic()
            } else {
                Link::gwin()
            }
        },
    );
    session.warm_up().unwrap();
    let r = session.change_param(ModuleId(1), "isovalue", 1.5).unwrap();
    assert!(r.consistent);
    assert!(session.pass_master(1));
    let r = session.change_param(ModuleId(1), "isovalue", 2.5).unwrap();
    assert!(r.consistent);
}
