//! Property tests for the monitor-bus codecs (ISSUE 5 satellite): every
//! [`MonitorFrame`] payload kind must round-trip losslessly through the
//! tagged binary codec and through the VISIT wire adapter (both byte
//! orders, including NaN-filled grids, asserted at the bit level), the
//! binary codec must reject truncation, and the loopback and VISIT
//! endpoints must be observationally equivalent.

use gridsteer_bus::{
    FrameCodecError, LoopbackMonitor, MonitorCaps, MonitorEndpoint, MonitorFrame, MonitorHub,
    MonitorPayload, VisitMonitor,
};
use proptest::prelude::*;
use visit::Endianness;

/// Build a `MonitorPayload` of an arbitrary kind from raw bytes. Float
/// payloads go through `from_bits`, so NaN bit patterns are exercised —
/// the byte-stability assertions below don't rely on `PartialEq`.
fn payload_from(sel: u8, name: &str, data: &[u8]) -> MonitorPayload<'static> {
    let f64_at = |i: usize| {
        let mut b = [0u8; 8];
        for (j, slot) in b.iter_mut().enumerate() {
            *slot = data.get(i * 8 + j).copied().unwrap_or(0);
        }
        f64::from_bits(u64::from_le_bytes(b))
    };
    let f32s = || -> Vec<f32> {
        data.chunks(4)
            .map(|c| {
                let mut b = [0u8; 4];
                b[..c.len()].copy_from_slice(c);
                f32::from_bits(u32::from_le_bytes(b))
            })
            .collect()
    };
    match sel % 5 {
        0 => MonitorPayload::scalar(name, f64_at(0)),
        1 => MonitorPayload::vec3(name, [f64_at(0), f64_at(1), f64_at(2)]),
        2 => {
            let vals = f32s();
            MonitorPayload::grid2(name, vals.len() as u32, 1, vals)
        }
        3 => {
            let vals = f32s();
            MonitorPayload::grid3(name, 1, vals.len() as u32, 1, vals)
        }
        _ => MonitorPayload::frame(
            name,
            data.first().copied().unwrap_or(0) & 1 == 1,
            data.len() as u32,
            data.to_vec(),
        ),
    }
}

/// A lossless lowercase channel name derived from arbitrary bytes.
fn ascii_name(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'a' + b % 26) as char).collect()
}

/// Byte-level equality witness: canonical binary encodings are compared,
/// so NaN payloads count as equal iff their bits are.
fn bytes_of(f: &MonitorFrame) -> Vec<u8> {
    f.to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binary codec round-trip: decode(encode(f)) re-encodes
    /// byte-identically and consumes the buffer exactly.
    #[test]
    fn binary_codec_roundtrip_every_kind(
        sel in any::<u8>(),
        seq in any::<u64>(),
        step in any::<u64>(),
        name_bytes in proptest::collection::vec(any::<u8>(), 0..12),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let name = ascii_name(&name_bytes);
        let frame = MonitorFrame { seq, step, payload: payload_from(sel, &name, &data) };
        let bytes = bytes_of(&frame);
        prop_assert_eq!(bytes.len(), frame.wire_size());
        let mut slice: &[u8] = &bytes;
        let back = MonitorFrame::decode_bytes(&mut slice).expect("own encoding must parse");
        prop_assert!(slice.is_empty(), "decode must consume exactly");
        prop_assert_eq!(bytes_of(&back), bytes);
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(back.step, step);
    }

    /// Truncating a binary-encoded frame is always rejected, never a
    /// panic or a partial parse.
    #[test]
    fn binary_codec_rejects_truncation(
        sel in any::<u8>(),
        name_bytes in proptest::collection::vec(any::<u8>(), 0..8),
        data in proptest::collection::vec(any::<u8>(), 0..48),
        cut_sel in any::<u16>(),
    ) {
        let name = ascii_name(&name_bytes);
        let frame = MonitorFrame { seq: 1, step: 2, payload: payload_from(sel, &name, &data) };
        let bytes = bytes_of(&frame);
        let cut = cut_sel as usize % bytes.len();
        let mut slice: &[u8] = &bytes[..cut];
        prop_assert!(MonitorFrame::decode_bytes(&mut slice).is_none(), "cut={}", cut);
    }

    /// VISIT wire round-trip, both byte orders: the frames a viewer
    /// receives re-encode to exactly the bytes that were delivered —
    /// including NaN-filled grids.
    #[test]
    fn visit_wire_roundtrip_every_kind(
        sel in any::<u8>(),
        seq in 0u64..1u64 << 62,
        step in 0u64..1u64 << 62,
        name_bytes in proptest::collection::vec(any::<u8>(), 0..12),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        big in any::<bool>(),
    ) {
        let name = ascii_name(&name_bytes);
        let frame = MonitorFrame { seq, step, payload: payload_from(sel, &name, &data) };
        let order = if big { Endianness::Big } else { Endianness::Little };
        let mut ep = VisitMonitor::with_order(order);
        ep.negotiate(&MonitorCaps::full("prop", 8));
        prop_assert_eq!(ep.deliver(std::slice::from_ref(&frame)).unwrap(), 1);
        let got = ep.recv();
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(bytes_of(&got[0]), bytes_of(&frame));
    }

    /// Endpoint equivalence: for any frame batch, the VISIT endpoint
    /// (full frames-over-link path) delivers exactly what the loopback
    /// endpoint does.
    #[test]
    fn visit_endpoint_matches_loopback(
        sels in proptest::collection::vec(any::<u8>(), 1..6),
        data in proptest::collection::vec(any::<u8>(), 0..32),
        big in any::<bool>(),
    ) {
        let frames: Vec<MonitorFrame> = sels
            .iter()
            .enumerate()
            .map(|(i, sel)| MonitorFrame {
                seq: i as u64 + 1,
                step: 7,
                payload: payload_from(*sel, "ch", &data),
            })
            .collect();
        let via_loopback = {
            let mut ep = LoopbackMonitor::new();
            ep.negotiate(&MonitorCaps::full("prop", 64));
            ep.deliver(&frames).unwrap();
            ep.recv().iter().map(bytes_of).collect::<Vec<_>>()
        };
        let via_visit = {
            let order = if big { Endianness::Big } else { Endianness::Little };
            let mut ep = VisitMonitor::with_order(order);
            ep.negotiate(&MonitorCaps::full("prop", 64));
            ep.deliver(&frames).unwrap();
            ep.recv().iter().map(bytes_of).collect::<Vec<_>>()
        };
        prop_assert_eq!(via_loopback, via_visit);
    }

    /// Hub fan-out equivalence across *all five* transports: the same
    /// published stream reaches every subscriber with identical bytes in
    /// identical order (grids only — the kinds every transport carries).
    #[test]
    fn all_transports_agree_through_the_hub(
        grids in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 1..9),
            1..5
        ),
    ) {
        use gridsteer_bus::Transport;
        let payloads: Vec<MonitorPayload> = grids
            .iter()
            .map(|bits| {
                let vals: Vec<f32> = bits.iter().map(|b| f32::from_bits(*b)).collect();
                MonitorPayload::grid2("g", vals.len() as u32, 1, vals)
            })
            .collect();
        let mut streams: Vec<Vec<Vec<u8>>> = Vec::new();
        for t in Transport::ALL {
            let hub = MonitorHub::new();
            hub.attach_endpoint("v", t.attach_monitor("v"), &MonitorCaps::full("prop", 64));
            hub.publish_batch(3, payloads.clone());
            streams.push(hub.recv("v").iter().map(bytes_of).collect());
        }
        for pair in streams.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }

    /// Channel names past the codec's u16 length field are rejected as a
    /// typed error, never silently truncated (ISSUE 7 bugfix): the old
    /// `as u16` cast wrapped the length prefix, desynchronising every
    /// frame that followed on the wire.
    #[test]
    fn codec_rejects_names_past_u16(
        extra in 0usize..512,
        value_bits in any::<u64>(),
    ) {
        let len = u16::MAX as usize + 1 + extra;
        let name = "n".repeat(len);
        let frame = MonitorFrame {
            seq: 1,
            step: 2,
            payload: MonitorPayload::scalar(&name, f64::from_bits(value_bits)),
        };
        prop_assert_eq!(frame.validate(), Err(FrameCodecError::NameTooLong { len }));
        prop_assert_eq!(frame.try_to_bytes(), Err(FrameCodecError::NameTooLong { len }));
        // A name exactly at the field's capacity still encodes.
        let fit = MonitorFrame {
            seq: 1,
            step: 2,
            payload: MonitorPayload::scalar(&name[..u16::MAX as usize], 0.0),
        };
        prop_assert!(fit.validate().is_ok());
    }

    /// Grid frames whose declared extents disagree with the payload —
    /// including extents whose product overflows past u32/usize — are
    /// rejected with the mismatch error instead of wrapping the length
    /// prefix (ISSUE 7 bugfix for the `as u32` cast).
    #[test]
    fn codec_rejects_grid_shape_mismatch(
        nx in 32u32..=u32::MAX,
        ny in 2u32..=u32::MAX,
        data in proptest::collection::vec(any::<u32>(), 0..32),
        three_d in any::<bool>(),
    ) {
        let vals: Vec<f32> = data.iter().map(|b| f32::from_bits(*b)).collect();
        // nx ≥ 32 and ny ≥ 2 ⇒ the declared extent (≥ 64) can never
        // match the < 32 elements actually carried.
        let expected = (nx as usize).checked_mul(ny as usize);
        let len = vals.len();
        // The `grid2`/`grid3` constructors assert the shape, so the
        // mismatched payload is built the way a buggy adapter would:
        // variant-literally, bypassing the checked constructors.
        let payload = if three_d {
            MonitorPayload::Grid3 {
                name: "phi".into(),
                nx,
                ny,
                nz: 1,
                data: vals.into(),
            }
        } else {
            MonitorPayload::Grid2 {
                name: "phi".into(),
                nx,
                ny,
                data: vals.into(),
            }
        };
        let frame = MonitorFrame { seq: 7, step: 9, payload };
        prop_assert_eq!(
            frame.validate(),
            Err(FrameCodecError::GridShapeMismatch { expected, len })
        );
        prop_assert_eq!(
            frame.try_to_bytes(),
            Err(FrameCodecError::GridShapeMismatch { expected, len })
        );
    }
}
