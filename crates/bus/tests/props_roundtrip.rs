//! Property tests for the typed-value codecs (ISSUE 4 satellite):
//! every [`ParamValue`] variant must ride the VISIT wire codec and the
//! loopback endpoint byte-stably and losslessly, and the tagged binary
//! codec (core TCP server / UNICORE payloads) must reject truncation.

use gridsteer_bus::{
    BoundsPolicy, ParamSpec, ParamValue, SteerCommand, SteerEndpoint, SteerHub, Transport,
};
use proptest::prelude::*;
use visit::{Endianness, Frame, MsgKind};

/// Build a `ParamValue` of an arbitrary kind from raw bytes. Float
/// payloads go through `from_bits`, so NaN bit patterns are exercised —
/// the byte-stability assertions below don't rely on `PartialEq`.
fn value_from(sel: u8, data: &[u8]) -> ParamValue {
    let f64_at = |i: usize| {
        let mut b = [0u8; 8];
        for (j, slot) in b.iter_mut().enumerate() {
            *slot = data.get(i * 8 + j).copied().unwrap_or(0);
        }
        f64::from_bits(u64::from_le_bytes(b))
    };
    match sel % 5 {
        0 => ParamValue::F64(f64_at(0)),
        1 => ParamValue::I64(i64::from_le_bytes([
            data.first().copied().unwrap_or(0),
            data.get(1).copied().unwrap_or(0),
            data.get(2).copied().unwrap_or(0),
            data.get(3).copied().unwrap_or(0),
            data.get(4).copied().unwrap_or(0),
            data.get(5).copied().unwrap_or(0),
            data.get(6).copied().unwrap_or(0),
            data.get(7).copied().unwrap_or(0),
        ])),
        2 => ParamValue::Bool(data.first().copied().unwrap_or(0) & 1 == 1),
        3 => ParamValue::Vec3([f64_at(0), f64_at(1), f64_at(2)]),
        _ => ParamValue::Str(String::from_utf8_lossy(data).into_owned()),
    }
}

/// True if the value contains a NaN (defeats `PartialEq`; byte-level
/// assertions still hold for these).
fn has_nan(v: &ParamValue) -> bool {
    match v {
        ParamValue::F64(x) => x.is_nan(),
        ParamValue::Vec3(c) => c.iter().any(|x| x.is_nan()),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// VISIT wire round-trip: value → typed payload → frame bytes →
    /// decode → value. The re-encoded frame must be byte-identical
    /// (including NaN payloads), and for comparable values the decoded
    /// value must equal the original.
    #[test]
    fn visit_wire_roundtrip_every_variant(
        sel in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        tag in any::<u32>(),
        big in any::<bool>(),
    ) {
        let v = value_from(sel, &data);
        let order = if big { Endianness::Big } else { Endianness::Little };
        let frame = Frame::with_value(MsgKind::Data, tag, order, v.to_visit());
        let bytes = frame.encode();
        let decoded = Frame::decode(&bytes).expect("own encoding must parse");
        let back = ParamValue::from_visit(v.kind(), decoded.value.as_ref().unwrap())
            .expect("kind-directed decode must succeed");
        // byte-stable: re-encoding the decoded value reproduces the wire
        let refraned = Frame::with_value(MsgKind::Data, tag, order, back.to_visit());
        prop_assert_eq!(refraned.encode(), bytes);
        // lossless: equal whenever PartialEq can witness it
        if !has_nan(&v) {
            prop_assert_eq!(back, v);
        }
    }

    /// Tagged binary codec round-trip (core TCP server / UNICORE
    /// payloads): decode(encode(v)) re-encodes byte-identically and
    /// consumes the buffer exactly.
    #[test]
    fn binary_codec_roundtrip_every_variant(
        sel in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let v = value_from(sel, &data);
        let mut buf = bytes::BytesMut::new();
        v.encode_bytes(&mut buf);
        let mut slice: &[u8] = &buf;
        let back = ParamValue::decode_bytes(&mut slice).expect("own encoding must parse");
        prop_assert!(slice.is_empty(), "decode must consume exactly");
        let mut buf2 = bytes::BytesMut::new();
        back.encode_bytes(&mut buf2);
        prop_assert_eq!(&buf2[..], &buf[..]);
        if !has_nan(&v) {
            prop_assert_eq!(back, v);
        }
    }

    /// Truncating a binary-encoded value is always rejected, never a
    /// panic or a partial parse.
    #[test]
    fn binary_codec_rejects_truncation(
        sel in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        cut_sel in any::<u16>(),
    ) {
        let v = value_from(sel, &data);
        let mut buf = bytes::BytesMut::new();
        v.encode_bytes(&mut buf);
        let cut = cut_sel as usize % buf.len();
        let mut slice: &[u8] = &buf[..cut];
        prop_assert!(ParamValue::decode_bytes(&mut slice).is_none(), "cut={}", cut);
    }

    /// Loopback-endpoint round-trip: a staged + committed value of every
    /// kind is read back identical through the endpoint.
    #[test]
    fn loopback_endpoint_roundtrip_every_variant(
        sel in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let v = value_from(sel, &data);
        if has_nan(&v) {
            continue;
        }
        let spec = ParamSpec {
            name: "p".into(),
            kind: v.kind(),
            min: None,
            max: None,
            initial: v.clone(),
            policy: BoundsPolicy::Reject,
        };
        let hub = SteerHub::new(vec![spec]);
        let mut ep = Transport::Loopback.attach(&hub, "prop");
        ep.set_batch(vec![SteerCommand::new("p", v.clone())]).unwrap();
        let out = hub.commit();
        prop_assert_eq!(out.applied, 1);
        prop_assert_eq!(ep.get("p"), Some(v));
    }

    /// The VISIT *endpoint* (full frames-over-link path) agrees with the
    /// loopback endpoint for every kind the wire can carry.
    #[test]
    fn visit_endpoint_matches_loopback(
        sel in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..48),
        big in any::<bool>(),
    ) {
        let v = value_from(sel, &data);
        if has_nan(&v) {
            continue;
        }
        let spec = ParamSpec {
            name: "p".into(),
            kind: v.kind(),
            min: None,
            max: None,
            initial: ParamValue::Bool(false),
            policy: BoundsPolicy::Reject,
        };
        let mk_hub = || SteerHub::new(vec![ParamSpec { initial: v.clone(), ..spec.clone() }]);
        let via_loopback = {
            let hub = mk_hub();
            let mut ep = Transport::Loopback.attach(&hub, "a");
            ep.set_batch(vec![SteerCommand::new("p", v.clone())]).unwrap();
            hub.commit();
            hub.get("p")
        };
        let via_visit = {
            let hub = mk_hub();
            let order = if big { Endianness::Big } else { Endianness::Little };
            let mut ep = gridsteer_bus::VisitEndpoint::attach_with_order(&hub, "a", order);
            ep.set_batch(vec![SteerCommand::new("p", v.clone())]).unwrap();
            hub.commit();
            hub.get("p")
        };
        prop_assert_eq!(via_loopback, via_visit);
    }
}
