//! Transport selection: one enum, two factories — the same five
//! middlewares carry steering in ([`Transport::attach`]) and monitored
//! output back out ([`Transport::attach_monitor`]).

use crate::covise_ep::CoviseEndpoint;
use crate::endpoint::SteerEndpoint;
use crate::hub::SteerHub;
use crate::loopback::LoopbackEndpoint;
use crate::monitor::{
    CoviseMonitor, LoopbackMonitor, MonitorEndpoint, OgsaMonitor, UnicoreMonitor, VisitMonitor,
};
use crate::ogsa_ep::OgsaEndpoint;
use crate::unicore_ep::UnicoreEndpoint;
use crate::visit_ep::VisitEndpoint;

/// Which middleware carries a participant's steering traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// In-process staging (tests, local tools).
    #[default]
    Loopback,
    /// VISIT wire frames over a frame link (§3.2).
    Visit,
    /// OGSA grid-service invocations (§2.3, Figure 2).
    Ogsa,
    /// COVISE module parameters (§4.5).
    Covise,
    /// UNICORE job consignment (§2.2, §3.1).
    Unicore,
}

impl Transport {
    /// Every transport, in display order.
    pub const ALL: [Transport; 5] = [
        Transport::Loopback,
        Transport::Visit,
        Transport::Ogsa,
        Transport::Covise,
        Transport::Unicore,
    ];

    /// Stable lowercase label (handshake lines, reports).
    pub fn label(self) -> &'static str {
        match self {
            Transport::Loopback => "loopback",
            Transport::Visit => "visit",
            Transport::Ogsa => "ogsa",
            Transport::Covise => "covise",
            Transport::Unicore => "unicore",
        }
    }

    /// Attach an endpoint of this transport to `hub` for `origin`.
    pub fn attach(self, hub: &SteerHub, origin: &str) -> Box<dyn SteerEndpoint> {
        match self {
            Transport::Loopback => Box::new(LoopbackEndpoint::attach(hub, origin)),
            Transport::Visit => Box::new(VisitEndpoint::attach(hub, origin)),
            Transport::Ogsa => Box::new(OgsaEndpoint::attach(hub, origin)),
            Transport::Covise => Box::new(CoviseEndpoint::attach(hub, origin)),
            Transport::Unicore => Box::new(UnicoreEndpoint::attach(hub, origin)),
        }
    }

    /// Build a monitor (data-plane) endpoint of this transport for a
    /// subscriber named `origin` — hand it to
    /// [`MonitorHub::attach_endpoint`](crate::MonitorHub::attach_endpoint).
    pub fn attach_monitor(self, origin: &str) -> Box<dyn MonitorEndpoint> {
        match self {
            Transport::Loopback => Box::new(LoopbackMonitor::new()),
            Transport::Visit => Box::new(VisitMonitor::new()),
            Transport::Ogsa => Box::new(OgsaMonitor::new(origin)),
            Transport::Covise => Box::new(CoviseMonitor::new()),
            Transport::Unicore => Box::new(UnicoreMonitor::new(origin)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::SteerCommand;
    use crate::spec::ParamSpec;
    use crate::value::ParamValue;

    /// The interop contract: the same f64 steer staged over every
    /// transport produces the same committed value.
    #[test]
    fn every_transport_is_observationally_equivalent() {
        for t in Transport::ALL {
            let hub = SteerHub::new(vec![ParamSpec::f64("miscibility", 0.0, 1.0, 1.0)]);
            let mut ep = t.attach(&hub, "alice");
            assert_eq!(ep.transport(), t.label());
            ep.set_batch(vec![SteerCommand::f64("miscibility", 0.125)])
                .unwrap();
            let out = hub.commit();
            assert_eq!(out.applied, 1, "{}", t.label());
            assert_eq!(
                hub.get("miscibility"),
                Some(ParamValue::F64(0.125)),
                "{}",
                t.label()
            );
        }
    }

    /// The outbound interop contract: the same published frames reach a
    /// subscriber identically over every transport that can carry them.
    #[test]
    fn every_monitor_transport_is_observationally_equivalent() {
        use crate::monitor::{MonitorCaps, MonitorHub, MonitorPayload};
        let reference = {
            let hub = MonitorHub::new();
            hub.attach_endpoint(
                "v",
                Transport::Loopback.attach_monitor("v"),
                &MonitorCaps::full("viewer", 64),
            );
            hub.publish_batch(
                3,
                vec![
                    MonitorPayload::grid2("phi", 2, 2, vec![0.5, 1.5, -0.5, 2.0]),
                    MonitorPayload::grid3("rho", 1, 1, 2, vec![9.0, 8.0]),
                ],
            );
            hub.recv("v")
        };
        for t in Transport::ALL {
            let hub = MonitorHub::new();
            hub.attach_endpoint("v", t.attach_monitor("v"), &MonitorCaps::full("viewer", 64));
            hub.publish_batch(
                3,
                vec![
                    MonitorPayload::grid2("phi", 2, 2, vec![0.5, 1.5, -0.5, 2.0]),
                    MonitorPayload::grid3("rho", 1, 1, 2, vec![9.0, 8.0]),
                ],
            );
            assert_eq!(hub.recv("v"), reference, "{}", t.label());
            assert_eq!(hub.stats_of("v").unwrap().delivered, 2, "{}", t.label());
        }
    }

    /// One session, several transports at once — the paper's interop
    /// claim in miniature: staging order decides, not transport identity.
    #[test]
    fn mixed_transports_share_one_session() {
        let hub = SteerHub::new(vec![ParamSpec::f64("x", 0.0, 10.0, 0.0)]);
        let mut eps: Vec<_> = Transport::ALL
            .iter()
            .enumerate()
            .map(|(i, t)| t.attach(&hub, &format!("client{i}")))
            .collect();
        for (i, ep) in eps.iter_mut().enumerate() {
            ep.set_batch(vec![SteerCommand::f64("x", i as f64)])
                .unwrap();
        }
        assert_eq!(hub.pending(), 5);
        let out = hub.commit();
        assert_eq!(out.applied, 5);
        // the last-staged endpoint (unicore) wins
        assert_eq!(hub.get("x"), Some(ParamValue::F64(4.0)));
    }
}
