//! Snapshot codec helpers for the bus's checkpointable state.
//!
//! The per-type `save_sections` / `restore_sections` methods live with
//! their types ([`SteerHub`](crate::SteerHub),
//! [`MonitorHub`](crate::monitor::MonitorHub),
//! [`RelayHub`](crate::monitor::RelayHub) — their state is private
//! there); this module is the shared vocabulary they encode with.
//! [`ParamValue`], [`SteerCommand`] and [`MonitorFrame`] bodies reuse the
//! existing wire codecs verbatim (length-prefixed, so a malformed body is
//! a typed [`CkptError::Corrupt`], never a desync of the outer stream).

use crate::command::SteerCommand;
use crate::monitor::endpoint::MonitorCaps;
use crate::monitor::frame::{MonitorFrame, MonitorKind};
use crate::spec::{BoundsPolicy, ParamSpec};
use crate::value::{ParamKind, ParamValue};
use bytes::BytesMut;
use gridsteer_ckpt::{CkptError, SectionReader, SectionWriter};

/// Labels the live structs carry as `&'static str` ([`CommandBatch`]
/// transports, [`MonitorCaps`] transports). Restore interns a decoded
/// label back into this set; a label outside it (tests invent them
/// freely) is leaked once per distinct string — checkpoints are cut
/// rarely and the label vocabulary is finite, so the leak is bounded.
///
/// [`CommandBatch`]: crate::command::CommandBatch
const KNOWN_LABELS: [&str; 9] = [
    "loopback", "visit", "ogsa", "covise", "unicore", "relay", "viewer", "client", "fold",
];

/// Intern a decoded transport label as a `&'static str`.
pub fn intern_label(label: &str) -> &'static str {
    KNOWN_LABELS
        .iter()
        .find(|k| **k == label)
        .copied()
        .unwrap_or_else(|| Box::leak(label.to_string().into_boxed_str()))
}

fn corrupt(what: &str) -> CkptError {
    CkptError::Corrupt {
        context: what.to_string(),
    }
}

/// Write a length-prefixed [`ParamValue`] in its tagged wire encoding.
pub fn put_value(w: &mut SectionWriter, v: &ParamValue) {
    let mut b = BytesMut::new();
    v.encode_bytes(&mut b);
    w.put_bytes(&b);
}

/// Read back one [`put_value`] encoding.
pub fn get_value(r: &mut SectionReader<'_>, what: &str) -> Result<ParamValue, CkptError> {
    let raw = r.get_byte_vec()?;
    let mut buf = raw.as_slice();
    let v = ParamValue::decode_bytes(&mut buf).ok_or_else(|| corrupt(what))?;
    if !buf.is_empty() {
        return Err(corrupt(what));
    }
    Ok(v)
}

/// Write a length-prefixed [`SteerCommand`] in its shared wire encoding.
pub fn put_command(w: &mut SectionWriter, c: &SteerCommand) {
    let mut b = BytesMut::new();
    c.encode_bytes(&mut b);
    w.put_bytes(&b);
}

/// Read back one [`put_command`] encoding.
pub fn get_command(r: &mut SectionReader<'_>, what: &str) -> Result<SteerCommand, CkptError> {
    let raw = r.get_byte_vec()?;
    let mut buf = raw.as_slice();
    let c = SteerCommand::decode_bytes(&mut buf).ok_or_else(|| corrupt(what))?;
    if !buf.is_empty() {
        return Err(corrupt(what));
    }
    Ok(c)
}

/// Write a length-prefixed [`MonitorFrame`] in the reference codec.
/// Frames reaching a checkpoint have already crossed a hub (which
/// validates on delivery), so the panicking encoder is safe here.
pub fn put_frame(w: &mut SectionWriter, f: &MonitorFrame) {
    w.put_bytes(&f.to_bytes());
}

/// Read back one [`put_frame`] encoding.
pub fn get_frame(
    r: &mut SectionReader<'_>,
    what: &str,
) -> Result<MonitorFrame<'static>, CkptError> {
    let raw = r.get_byte_vec()?;
    let mut buf = raw.as_slice();
    let f = MonitorFrame::decode_bytes(&mut buf).ok_or_else(|| corrupt(what))?;
    if !buf.is_empty() {
        return Err(corrupt(what));
    }
    Ok(f)
}

/// Write a [`MonitorCaps`] (transport label, kind set, batch size,
/// decimation rate).
pub fn put_caps(w: &mut SectionWriter, c: &MonitorCaps) {
    w.put_str(c.transport);
    w.put_u32(c.kinds.len() as u32);
    for k in &c.kinds {
        w.put_u8(*k as u8);
    }
    w.put_u64(c.max_batch as u64);
    w.put_u32(c.deliver_every);
}

/// Read back one [`put_caps`] encoding.
pub fn get_caps(r: &mut SectionReader<'_>) -> Result<MonitorCaps, CkptError> {
    let transport = intern_label(&r.get_str()?);
    let nkinds = r.get_u32()?;
    let mut kinds = std::collections::BTreeSet::new();
    for _ in 0..nkinds {
        let b = r.get_u8()?;
        kinds.insert(MonitorKind::from_byte(b).ok_or_else(|| corrupt("caps kind byte"))?);
    }
    let max_batch = r.get_u64()? as usize;
    let deliver_every = r.get_u32()?;
    Ok(MonitorCaps {
        transport,
        kinds,
        max_batch,
        deliver_every,
    })
}

/// Write a [`ParamSpec`] (name, kind, bounds, initial value, policy).
pub fn put_spec(w: &mut SectionWriter, s: &ParamSpec) {
    w.put_str(&s.name);
    w.put_u8(s.kind as u8);
    put_opt_f64(w, s.min);
    put_opt_f64(w, s.max);
    put_value(w, &s.initial);
    w.put_u8(match s.policy {
        BoundsPolicy::Reject => 0,
        BoundsPolicy::Clamp => 1,
    });
}

/// Read back one [`put_spec`] encoding.
pub fn get_spec(r: &mut SectionReader<'_>) -> Result<ParamSpec, CkptError> {
    let name = r.get_str()?;
    let kind = ParamKind::from_byte(r.get_u8()?).ok_or_else(|| corrupt("spec kind byte"))?;
    let min = get_opt_f64(r)?;
    let max = get_opt_f64(r)?;
    let initial = get_value(r, "spec initial value")?;
    let policy = match r.get_u8()? {
        0 => BoundsPolicy::Reject,
        1 => BoundsPolicy::Clamp,
        _ => return Err(corrupt("spec policy byte")),
    };
    Ok(ParamSpec {
        name,
        kind,
        min,
        max,
        initial,
        policy,
    })
}

fn put_opt_f64(w: &mut SectionWriter, v: Option<f64>) {
    w.put_bool(v.is_some());
    w.put_f64(v.unwrap_or(0.0));
}

fn get_opt_f64(r: &mut SectionReader<'_>) -> Result<Option<f64>, CkptError> {
    let some = r.get_bool()?;
    let v = r.get_f64()?;
    Ok(some.then_some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::MonitorPayload;

    #[test]
    fn labels_intern_known_and_unknown() {
        for l in KNOWN_LABELS {
            assert_eq!(intern_label(l), l);
        }
        assert_eq!(intern_label("made-up"), "made-up");
    }

    #[test]
    fn value_and_command_roundtrip_with_corrupt_detection() {
        let vals = [
            ParamValue::F64(f64::NAN),
            ParamValue::I64(-7),
            ParamValue::Bool(true),
            ParamValue::Vec3([1.0, -0.0, f64::INFINITY]),
            ParamValue::Str("φ".into()),
        ];
        let mut w = SectionWriter::new();
        for v in &vals {
            put_value(&mut w, v);
        }
        put_command(&mut w, &SteerCommand::f64("gain", 0.5));
        let body = w.finish();
        let mut r = SectionReader::new(&body, "t");
        for v in &vals {
            let back = get_value(&mut r, "v").unwrap();
            // NaN != NaN under PartialEq; compare the rendering instead
            assert_eq!(back.render(), v.render());
        }
        assert_eq!(
            get_command(&mut r, "c").unwrap(),
            SteerCommand::f64("gain", 0.5)
        );
        r.expect_end().unwrap();
        // a truncated inner body is Corrupt, not a panic or a desync
        let mut w = SectionWriter::new();
        w.put_bytes(&[1, 2]);
        let body = w.finish();
        let mut r = SectionReader::new(&body, "t");
        assert!(matches!(
            get_value(&mut r, "v"),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn caps_spec_and_frame_roundtrip() {
        let mut caps = MonitorCaps::full("visit", 32).every(3);
        caps.kinds.remove(&MonitorKind::Frame);
        let spec = ParamSpec::vec3("beam_dir", -1.0, 1.0, [1.0, 0.0, 0.0]);
        let frame = MonitorFrame {
            seq: 9,
            step: 4,
            payload: MonitorPayload::grid2("g", 2, 1, vec![0.5, -0.5]),
        };
        let mut w = SectionWriter::new();
        put_caps(&mut w, &caps);
        put_spec(&mut w, &spec);
        put_frame(&mut w, &frame);
        let body = w.finish();
        let mut r = SectionReader::new(&body, "t");
        assert_eq!(get_caps(&mut r).unwrap(), caps);
        assert_eq!(get_spec(&mut r).unwrap(), spec);
        assert_eq!(get_frame(&mut r, "f").unwrap(), frame);
        r.expect_end().unwrap();
    }

    #[test]
    fn unbounded_spec_bounds_roundtrip_as_none() {
        let spec = ParamSpec::text("site", "london");
        let mut w = SectionWriter::new();
        put_spec(&mut w, &spec);
        let body = w.finish();
        let mut r = SectionReader::new(&body, "t");
        let back = get_spec(&mut r).unwrap();
        assert_eq!(back.min, None);
        assert_eq!(back.max, None);
        assert_eq!(back, spec);
    }
}
