//! # gridsteer_bus — the unified typed steering bus
//!
//! The paper's central claim is *interoperable* computational steering:
//! one running simulation steered through heterogeneous grid middlewares
//! (UNICORE job channels, VISIT's wire protocol, OGSA grid services,
//! COVISE collaborative modules). This crate is the API that makes the
//! claim structural instead of aspirational — **one transport-agnostic
//! steering surface that everything in the workspace goes through**:
//!
//! * [`ParamValue`] / [`ParamKind`] — the typed value currency
//!   (`F64`/`I64`/`Bool`/`Vec3`/`Str`), with lossless codecs onto VISIT
//!   payloads, OGSA service arguments, a tagged binary form (core TCP
//!   server, UNICORE job payloads), and canonical text.
//! * [`ParamSpec`] / [`BoundsPolicy`] — typed declarations with an
//!   *explicit* clamp-vs-reject policy, replacing the old f64-only specs.
//! * [`ParamRegistry`] / [`SharedRegistry`] — the typed registry (with
//!   f64 shims so pre-bus call sites migrate mechanically) and its
//!   shared-authority handle.
//! * [`SteerEndpoint`] — the one client contract: capability
//!   [`SteerEndpoint::negotiate`] handshake, typed
//!   [`SteerEndpoint::describe`] / [`SteerEndpoint::get`],
//!   sequence-numbered [`SteerEndpoint::set_batch`], and committed-steer
//!   [`SteerEndpoint::subscribe`].
//! * [`SteerHub`] — the session-side anchor: endpoints *stage* decoded
//!   batches, the simulation-loop owner *commits* them atomically at a
//!   step boundary, in global staging order — which is what keeps
//!   multi-transport scenario digests byte-stable.
//! * One [`Transport`] adapter per middleware:
//!   [`LoopbackEndpoint`], [`VisitEndpoint`] (real §3.2 wire frames over
//!   a frame link), [`OgsaEndpoint`] (a hosted [`BusSteeringService`]
//!   discovered through the Figure-2 registry), [`CoviseEndpoint`] (a
//!   genuine COVISE [`covise::Module`] parameter sink), and
//!   [`UnicoreEndpoint`] (batches consigned as serialized AJOs).
//!
//! Transports differ in what they can carry — COVISE module parameters
//! are scalars, so its capability set excludes `vec3`/`str` — and the
//! negotiate handshake is how a client discovers that before steering.
//!
//! The steering surface is the *control plane*. Its data-plane mirror —
//! monitored simulation output streaming back out to viewers over the
//! same five middlewares — lives in [`monitor`]: typed sequence-numbered
//! [`MonitorFrame`]s fanned out by a [`MonitorHub`] to capability-
//! negotiated [`MonitorEndpoint`] subscribers.

pub mod ckpt;
pub mod command;
pub mod covise_ep;
pub mod endpoint;
pub mod hub;
pub mod loopback;
pub mod monitor;
pub mod ogsa_ep;
pub mod registry;
pub mod spec;
pub mod transport;
pub mod unicore_ep;
pub mod value;
pub mod visit_ep;

pub use command::{CommandBatch, CommitOutcome, SteerCommand, SteerError, SteerNotice};
pub use covise_ep::{CoviseEndpoint, SteerParamsModule};
pub use endpoint::{Capabilities, SteerEndpoint, Subscription};
pub use hub::SteerHub;
pub use loopback::LoopbackEndpoint;
pub use monitor::{
    CoviseMonitor, FrameBytesCell, FrameChunk, FrameCodecError, HubFrameSink, LoopbackMonitor,
    MonitorCaps, MonitorEndpoint, MonitorError, MonitorFeedService, MonitorFrame, MonitorHub,
    MonitorKind, MonitorPayload, MonitorStats, OgsaMonitor, RelayHub, RelayPolicy, RelayReport,
    UnicoreMonitor, VisitMonitor,
};
pub use ogsa_ep::{BusSteeringService, OgsaEndpoint};
pub use registry::{ParamRegistry, SharedRegistry};
pub use spec::{BoundsPolicy, ParamSpec};
pub use transport::Transport;
pub use unicore_ep::UnicoreEndpoint;
pub use value::{ParamKind, ParamValue};
pub use visit_ep::VisitEndpoint;
