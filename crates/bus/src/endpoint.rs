//! The transport-agnostic steering endpoint contract.
//!
//! A [`SteerEndpoint`] is *the one way anything steers a simulation*: the
//! same four-method surface over an in-process loopback, a VISIT wire
//! link, an OGSA grid service, a COVISE module, or a UNICORE job channel.
//! Clients open with a capability-negotiation handshake
//! ([`SteerEndpoint::negotiate`]), read the typed parameter surface
//! ([`SteerEndpoint::describe`] / [`SteerEndpoint::get`]), stage
//! sequence-numbered command batches ([`SteerEndpoint::set_batch`]), and
//! observe committed changes through [`SteerEndpoint::subscribe`].

use crate::command::{SteerCommand, SteerError, SteerNotice};
use crate::spec::ParamSpec;
use crate::value::{ParamKind, ParamValue};
use parking_lot::Mutex;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// What one side of a steering connection can do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capabilities {
    /// Transport label ("loopback", "visit", "ogsa", "covise", "unicore").
    pub transport: &'static str,
    /// Value kinds this side can carry losslessly.
    pub kinds: BTreeSet<ParamKind>,
    /// Largest batch this side accepts.
    pub max_batch: usize,
    /// True if committed-steer subscriptions are offered.
    pub subscribe: bool,
}

impl Capabilities {
    /// A capability set carrying every kind.
    pub fn full(transport: &'static str, max_batch: usize) -> Capabilities {
        Capabilities {
            transport,
            kinds: ParamKind::ALL.into_iter().collect(),
            max_batch,
            subscribe: true,
        }
    }

    /// The handshake result: what *both* sides can do.
    pub fn intersect(&self, other: &Capabilities) -> Capabilities {
        Capabilities {
            transport: self.transport,
            kinds: self.kinds.intersection(&other.kinds).copied().collect(),
            max_batch: self.max_batch.min(other.max_batch),
            subscribe: self.subscribe && other.subscribe,
        }
    }

    /// Stable one-line rendering (handshake audit lines, digests).
    pub fn render(&self) -> String {
        let kinds: Vec<&str> = self.kinds.iter().map(|k| k.name()).collect();
        format!(
            "transport={} kinds={} max_batch={} subscribe={}",
            self.transport,
            kinds.join("+"),
            self.max_batch,
            self.subscribe
        )
    }
}

/// A pollable stream of committed-steer notices.
#[derive(Debug, Clone, Default)]
pub struct Subscription {
    queue: Arc<Mutex<VecDeque<SteerNotice>>>,
}

/// Upper bound on unpolled notices retained per subscriber; the oldest
/// are dropped first (a steering client that has not polled for this
/// long only cares about recent state anyway).
pub(crate) const MAX_PENDING_NOTICES: usize = 4096;

impl Subscription {
    pub(crate) fn new() -> Subscription {
        Subscription::default()
    }

    /// Rewrap an upgraded weak queue handle (hub fan-out path).
    pub(crate) fn from_queue(queue: Arc<Mutex<VecDeque<SteerNotice>>>) -> Subscription {
        Subscription { queue }
    }

    /// Weak handle for the hub's subscriber list: the hub must not keep
    /// a dropped subscriber's queue alive.
    pub(crate) fn downgrade(&self) -> std::sync::Weak<Mutex<VecDeque<SteerNotice>>> {
        Arc::downgrade(&self.queue)
    }

    pub(crate) fn push(&self, notice: SteerNotice) {
        let mut q = self.queue.lock();
        if q.len() >= MAX_PENDING_NOTICES {
            q.pop_front();
        }
        q.push_back(notice);
    }

    /// Next pending notice, if any.
    pub fn poll(&self) -> Option<SteerNotice> {
        self.queue.lock().pop_front()
    }

    /// Drain everything pending.
    pub fn drain(&self) -> Vec<SteerNotice> {
        self.queue.lock().drain(..).collect()
    }
}

/// The shared handshake body every adapter's `negotiate` uses: narrow
/// the endpoint's capability set to the intersection with the client's
/// and record the result on the hub's audit log.
pub(crate) fn negotiate_caps(
    hub: &crate::hub::SteerHub,
    origin: &str,
    caps: &mut Capabilities,
    client: &Capabilities,
) -> Capabilities {
    *caps = caps.intersect(client);
    hub.record_handshake(origin, caps);
    caps.clone()
}

/// Enforce a negotiated capability set on an outgoing batch (shared by
/// every adapter).
pub(crate) fn check_batch(
    caps: &Capabilities,
    commands: &[SteerCommand],
) -> Result<(), SteerError> {
    if commands.is_empty() {
        return Err(SteerError::EmptyBatch);
    }
    if commands.len() > caps.max_batch {
        return Err(SteerError::TooLarge {
            len: commands.len(),
            max: caps.max_batch,
        });
    }
    for cmd in commands {
        if !caps.kinds.contains(&cmd.value.kind()) {
            return Err(SteerError::UnsupportedKind {
                param: cmd.param.clone(),
                kind: cmd.value.kind().name(),
            });
        }
    }
    Ok(())
}

/// One attached steering client over some transport.
pub trait SteerEndpoint: Send {
    /// Transport label (matches [`Capabilities::transport`]).
    fn transport(&self) -> &'static str;

    /// Capability handshake: the client offers what it can do, the
    /// endpoint answers with the negotiated intersection and enforces it
    /// on subsequent batches.
    fn negotiate(&mut self, client: &Capabilities) -> Capabilities;

    /// The typed parameter surface of the attached session.
    fn describe(&self) -> Vec<ParamSpec>;

    /// Current value of one parameter.
    fn get(&self, name: &str) -> Option<ParamValue>;

    /// Ship a command batch through the transport and stage it for the
    /// next step-boundary commit. Returns the hub-assigned batch sequence
    /// number; the per-command outcomes arrive via [`Self::subscribe`].
    fn set_batch(&mut self, commands: Vec<SteerCommand>) -> Result<u64, SteerError>;

    /// Subscribe to committed-steer notices.
    fn subscribe(&mut self) -> Subscription;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_is_commutative_on_content() {
        let mut narrow = Capabilities::full("covise", 16);
        narrow.kinds.remove(&ParamKind::Str);
        narrow.kinds.remove(&ParamKind::Vec3);
        let full = Capabilities::full("client", 256);
        let a = narrow.intersect(&full);
        let b = full.intersect(&narrow);
        assert_eq!(a.kinds, b.kinds);
        assert_eq!(a.max_batch, 16);
        assert!(!a.kinds.contains(&ParamKind::Str));
        assert!(a.kinds.contains(&ParamKind::F64));
    }

    #[test]
    fn render_is_stable_and_ordered() {
        let caps = Capabilities::full("visit", 64);
        assert_eq!(
            caps.render(),
            "transport=visit kinds=f64+i64+bool+vec3+str max_batch=64 subscribe=true"
        );
    }

    #[test]
    fn subscription_fifo() {
        let sub = Subscription::new();
        for i in 0..3 {
            sub.push(SteerNotice::Applied {
                commit: 1,
                batch: i,
                origin: "a".into(),
                param: "x".into(),
                value: ParamValue::I64(i as i64),
            });
        }
        assert!(matches!(
            sub.poll(),
            Some(SteerNotice::Applied { batch: 0, .. })
        ));
        assert_eq!(sub.drain().len(), 2);
        assert!(sub.poll().is_none());
    }
}
