//! The COVISE adapter: batches travel as module-parameter changes.
//!
//! COVISE modules expose scalar `f64` parameters (§4.5's map-editor
//! surface), so this is the transport where capability negotiation does
//! real work: the adapter's capability set carries `f64`/`i64`/`bool`
//! (all representable as module parameters) and *excludes* `vec3` and
//! `str` — a client that negotiates first discovers this and routes such
//! commands over another endpoint of the same session.
//!
//! The commands themselves pass through a genuine [`covise::Module`]
//! trait object (`SteerParams`), which
//! re-types each scalar against the hub's declared spec before staging —
//! the COVISE side never invents a kind the session didn't declare.

use crate::command::{SteerCommand, SteerError};
use crate::endpoint::{check_batch, negotiate_caps, Capabilities, SteerEndpoint, Subscription};
use crate::hub::SteerHub;
use crate::spec::ParamSpec;
use crate::value::{ParamKind, ParamValue};
use covise::Module;
use parking_lot::Mutex;
use std::sync::Arc;

/// The parameter-sink module: every accepted `set_param` becomes one
/// staged typed command.
pub struct SteerParamsModule {
    hub: SteerHub,
    staged: Arc<Mutex<Vec<SteerCommand>>>,
}

impl SteerParamsModule {
    fn new(hub: &SteerHub, staged: Arc<Mutex<Vec<SteerCommand>>>) -> SteerParamsModule {
        SteerParamsModule {
            hub: hub.clone(),
            staged,
        }
    }

    /// Re-type a scalar module parameter against the declared spec (one
    /// rule, shared with the f64 shims: [`ParamValue::from_scalar`]).
    fn retype(&self, key: &str, value: f64) -> Option<ParamValue> {
        let spec = self.hub.registry().spec(key)?;
        ParamValue::from_scalar(spec.kind, value)
    }
}

impl Module for SteerParamsModule {
    fn name(&self) -> &str {
        "SteerParams"
    }

    fn inputs(&self) -> &'static [&'static str] {
        &[]
    }

    fn outputs(&self) -> &'static [&'static str] {
        &[]
    }

    fn set_param(&mut self, key: &str, value: f64) -> bool {
        match self.retype(key, value) {
            Some(v) => {
                self.staged.lock().push(SteerCommand::new(key, v));
                true
            }
            None => false,
        }
    }

    fn param(&self, key: &str) -> Option<f64> {
        self.hub.get(key).and_then(|v| v.as_f64())
    }

    fn execute(
        &mut self,
        _inputs: &[Arc<covise::DataObject>],
    ) -> Result<Vec<covise::DataObject>, String> {
        // a pure parameter sink: no ports, nothing to produce
        Ok(Vec::new())
    }
}

/// Steering through a COVISE module network.
pub struct CoviseEndpoint {
    hub: SteerHub,
    origin: String,
    caps: Capabilities,
    module: Box<dyn Module>,
    staged: Arc<Mutex<Vec<SteerCommand>>>,
}

impl CoviseEndpoint {
    /// Attach to a hub as `origin`.
    pub fn attach(hub: &SteerHub, origin: &str) -> CoviseEndpoint {
        let staged = Arc::new(Mutex::new(Vec::new()));
        let mut caps = Capabilities::full("covise", 32);
        caps.kinds.remove(&ParamKind::Vec3);
        caps.kinds.remove(&ParamKind::Str);
        CoviseEndpoint {
            hub: hub.clone(),
            origin: origin.to_string(),
            caps,
            module: Box::new(SteerParamsModule::new(hub, staged.clone())),
            staged,
        }
    }
}

impl SteerEndpoint for CoviseEndpoint {
    fn transport(&self) -> &'static str {
        "covise"
    }

    fn negotiate(&mut self, client: &Capabilities) -> Capabilities {
        negotiate_caps(&self.hub, &self.origin, &mut self.caps, client)
    }

    fn describe(&self) -> Vec<ParamSpec> {
        self.hub.describe()
    }

    fn get(&self, name: &str) -> Option<ParamValue> {
        self.hub.get(name)
    }

    fn set_batch(&mut self, commands: Vec<SteerCommand>) -> Result<u64, SteerError> {
        check_batch(&self.caps, &commands)?;
        for cmd in &commands {
            let scalar = cmd
                .value
                .as_f64()
                .ok_or_else(|| SteerError::UnsupportedKind {
                    param: cmd.param.clone(),
                    kind: cmd.value.kind().name(),
                })?;
            if !self.module.set_param(&cmd.param, scalar) {
                // atomic batch: the module refused one change, so none of
                // the batch may stage
                self.staged.lock().clear();
                return Err(SteerError::Transport(format!(
                    "covise module refused {}={scalar}",
                    cmd.param
                )));
            }
        }
        let staged = std::mem::take(&mut *self.staged.lock());
        self.hub.stage(&self.origin, "covise", staged)
    }

    fn subscribe(&mut self) -> Subscription {
        self.hub.subscribe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::i64("ranks", 1, 64, 4),
            ParamSpec::flag("paused", false),
            ParamSpec::text("site", "london"),
        ])
    }

    #[test]
    fn scalar_kinds_flow_through_the_module() {
        let h = hub();
        let mut ep = CoviseEndpoint::attach(&h, "hlrs");
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.4),
            SteerCommand::new("ranks", ParamValue::I64(8)),
            SteerCommand::new("paused", ParamValue::Bool(true)),
        ])
        .unwrap();
        let out = h.commit();
        assert_eq!(out.applied, 3);
        assert_eq!(h.get("ranks"), Some(ParamValue::I64(8)));
        assert_eq!(h.get("paused"), Some(ParamValue::Bool(true)));
    }

    #[test]
    fn str_excluded_by_capability_set() {
        let h = hub();
        let mut ep = CoviseEndpoint::attach(&h, "hlrs");
        let err = ep
            .set_batch(vec![SteerCommand::new(
                "site",
                ParamValue::Str("stuttgart".into()),
            )])
            .unwrap_err();
        assert!(matches!(err, SteerError::UnsupportedKind { .. }));
        assert_eq!(h.pending(), 0);
    }

    #[test]
    fn refused_module_change_aborts_whole_batch() {
        let h = hub();
        let mut ep = CoviseEndpoint::attach(&h, "hlrs");
        let err = ep
            .set_batch(vec![
                SteerCommand::f64("miscibility", 0.2),
                SteerCommand::f64("ghost", 1.0), // unknown to the session
            ])
            .unwrap_err();
        assert!(matches!(err, SteerError::Transport(_)));
        assert_eq!(h.pending(), 0, "atomic batch: nothing staged");
        h.commit();
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(1.0)));
    }

    #[test]
    fn module_reads_current_values() {
        let h = hub();
        let ep = CoviseEndpoint::attach(&h, "x");
        assert_eq!(ep.module.param("miscibility"), Some(1.0));
        assert_eq!(ep.module.param("ghost"), None);
    }
}
