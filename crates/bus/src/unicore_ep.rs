//! The UNICORE adapter: batches travel as Abstract Job Objects.
//!
//! UNICORE has no connection-oriented steering channel — everything is a
//! consigned job (§2.2: AJOs "sent via ssl as serialised Java objects").
//! Each batch therefore becomes a two-task AJO: stage in a `steer.cmd`
//! file carrying the binary-encoded commands, then an `steer-apply`
//! execute task depending on it. The AJO is serialized and deserialized
//! (the consignment hop), its DAG validated, and the staged file decoded
//! back into typed commands on the "target system" side.

use crate::command::{SteerCommand, SteerError};
use crate::endpoint::{check_batch, negotiate_caps, Capabilities, SteerEndpoint, Subscription};
use crate::hub::SteerHub;
use crate::spec::ParamSpec;
use crate::value::ParamValue;
use bytes::{Buf, BufMut, BytesMut};
use unicore::{Ajo, Task};

/// Encode a command list as the `steer.cmd` job payload (count + the
/// shared [`SteerCommand::encode_bytes`] pair codec).
fn encode_payload(commands: &[SteerCommand]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u16_le(commands.len() as u16);
    for cmd in commands {
        cmd.encode_bytes(&mut buf);
    }
    buf.to_vec()
}

/// Decode the `steer.cmd` payload. `None` on any malformation.
fn decode_payload(mut buf: &[u8]) -> Option<Vec<SteerCommand>> {
    if buf.len() < 2 {
        return None;
    }
    let count = buf.get_u16_le() as usize;
    let mut commands = Vec::with_capacity(count);
    for _ in 0..count {
        commands.push(SteerCommand::decode_bytes(&mut buf)?);
    }
    buf.is_empty().then_some(commands)
}

/// Steering through UNICORE job consignment.
pub struct UnicoreEndpoint {
    hub: SteerHub,
    origin: String,
    caps: Capabilities,
    /// Destination Vsite name used in the job shape.
    vsite: String,
    jobs_consigned: u64,
}

impl UnicoreEndpoint {
    /// Attach to a hub as `origin`, consigning to a default Vsite.
    pub fn attach(hub: &SteerHub, origin: &str) -> UnicoreEndpoint {
        UnicoreEndpoint {
            hub: hub.clone(),
            origin: origin.to_string(),
            caps: Capabilities::full("unicore", 64),
            vsite: "compute-vsite".to_string(),
            jobs_consigned: 0,
        }
    }

    /// Jobs consigned so far (one per batch).
    pub fn jobs_consigned(&self) -> u64 {
        self.jobs_consigned
    }
}

impl SteerEndpoint for UnicoreEndpoint {
    fn transport(&self) -> &'static str {
        "unicore"
    }

    fn negotiate(&mut self, client: &Capabilities) -> Capabilities {
        negotiate_caps(&self.hub, &self.origin, &mut self.caps, client)
    }

    fn describe(&self) -> Vec<ParamSpec> {
        self.hub.describe()
    }

    fn get(&self, name: &str) -> Option<ParamValue> {
        self.hub.get(name)
    }

    fn set_batch(&mut self, commands: Vec<SteerCommand>) -> Result<u64, SteerError> {
        check_batch(&self.caps, &commands)?;
        // build the steering AJO
        let mut ajo = Ajo::new(&format!("steer-{}", self.origin), &self.vsite);
        let stage = ajo.add_task(
            Task::StageIn {
                path: "steer.cmd".into(),
                data: encode_payload(&commands),
            },
            &[],
        );
        ajo.add_task(
            Task::Execute {
                command: "steer-apply".into(),
                args: vec![self.origin.clone()],
            },
            &[stage],
        );
        // the consignment hop: serialize, ship, deserialize, validate
        let consigned = Ajo::from_bytes(&ajo.to_bytes())
            .ok_or_else(|| SteerError::Transport("AJO serialization hop failed".into()))?;
        let order = consigned
            .topo_order()
            .map_err(|e| SteerError::Transport(format!("invalid steering AJO: {e:?}")))?;
        // target side: run the DAG in order, decoding the staged file
        let mut decoded: Option<Vec<SteerCommand>> = None;
        for id in order {
            if let Some(Task::StageIn { path, data }) = consigned.task(id).map(|t| &t.task) {
                if path == "steer.cmd" {
                    decoded = decode_payload(data);
                }
            }
        }
        let decoded = decoded
            .ok_or_else(|| SteerError::Transport("steer.cmd missing or malformed".into()))?;
        self.jobs_consigned += 1;
        self.hub.stage(&self.origin, "unicore", decoded)
    }

    fn subscribe(&mut self) -> Subscription {
        self.hub.subscribe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::vec3("beam_dir", -1.0, 1.0, [1.0, 0.0, 0.0]),
            ParamSpec::text("site", "london"),
        ])
    }

    #[test]
    fn batch_rides_an_ajo_and_applies() {
        let h = hub();
        let mut ep = UnicoreEndpoint::attach(&h, "juelich");
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.3),
            SteerCommand::new("beam_dir", ParamValue::Vec3([0.0, 0.0, 1.0])),
            SteerCommand::new("site", ParamValue::Str("phoenix".into())),
        ])
        .unwrap();
        assert_eq!(ep.jobs_consigned(), 1);
        let out = h.commit();
        assert_eq!(out.applied, 3);
        assert_eq!(h.get("site"), Some(ParamValue::Str("phoenix".into())));
        assert_eq!(h.get("beam_dir"), Some(ParamValue::Vec3([0.0, 0.0, 1.0])));
    }

    #[test]
    fn payload_codec_roundtrip_and_truncation() {
        let cmds = vec![
            SteerCommand::f64("a", 1.5),
            SteerCommand::new("b", ParamValue::Str("x".into())),
        ];
        let bytes = encode_payload(&cmds);
        assert_eq!(decode_payload(&bytes), Some(cmds));
        for cut in 0..bytes.len() {
            assert_eq!(decode_payload(&bytes[..cut]), None, "cut={cut}");
        }
    }

    #[test]
    fn each_batch_is_one_job() {
        let h = hub();
        let mut ep = UnicoreEndpoint::attach(&h, "j");
        for i in 0..3 {
            ep.set_batch(vec![SteerCommand::f64("miscibility", 0.1 * (i + 1) as f64)])
                .unwrap();
        }
        assert_eq!(ep.jobs_consigned(), 3);
        assert_eq!(h.pending(), 3);
    }
}
