//! The in-process loopback endpoint — the reference adapter.
//!
//! No wire, no codec: batches stage directly into the hub. Every other
//! adapter must be observationally equivalent to this one (same staged
//! commands for the same requested batch); the proptests in this crate
//! pin that equivalence.

use crate::command::{SteerCommand, SteerError};
use crate::endpoint::{check_batch, negotiate_caps, Capabilities, SteerEndpoint, Subscription};
use crate::hub::SteerHub;
use crate::spec::ParamSpec;
use crate::value::ParamValue;

/// Direct in-process attachment to a [`SteerHub`].
pub struct LoopbackEndpoint {
    hub: SteerHub,
    origin: String,
    caps: Capabilities,
}

impl LoopbackEndpoint {
    /// Attach to a hub as `origin`.
    pub fn attach(hub: &SteerHub, origin: &str) -> LoopbackEndpoint {
        LoopbackEndpoint {
            hub: hub.clone(),
            origin: origin.to_string(),
            caps: Capabilities::full("loopback", 1024),
        }
    }
}

impl SteerEndpoint for LoopbackEndpoint {
    fn transport(&self) -> &'static str {
        "loopback"
    }

    fn negotiate(&mut self, client: &Capabilities) -> Capabilities {
        negotiate_caps(&self.hub, &self.origin, &mut self.caps, client)
    }

    fn describe(&self) -> Vec<ParamSpec> {
        self.hub.describe()
    }

    fn get(&self, name: &str) -> Option<ParamValue> {
        self.hub.get(name)
    }

    fn set_batch(&mut self, commands: Vec<SteerCommand>) -> Result<u64, SteerError> {
        check_batch(&self.caps, &commands)?;
        self.hub.stage(&self.origin, "loopback", commands)
    }

    fn subscribe(&mut self) -> Subscription {
        self.hub.subscribe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::SteerNotice;
    use crate::value::ParamKind;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::text("label", "start"),
        ])
    }

    #[test]
    fn stage_commit_subscribe_roundtrip() {
        let h = hub();
        let mut ep = LoopbackEndpoint::attach(&h, "alice");
        let sub = ep.subscribe();
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.2),
            SteerCommand::new("label", ParamValue::Str("demix".into())),
        ])
        .unwrap();
        h.commit();
        assert_eq!(ep.get("miscibility"), Some(ParamValue::F64(0.2)));
        assert_eq!(ep.get("label"), Some(ParamValue::Str("demix".into())));
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn negotiation_narrows_accepted_kinds() {
        let h = hub();
        let mut ep = LoopbackEndpoint::attach(&h, "alice");
        let mut client = Capabilities::full("client", 8);
        client.kinds.remove(&ParamKind::Str);
        let negotiated = ep.negotiate(&client);
        assert!(!negotiated.kinds.contains(&ParamKind::Str));
        assert_eq!(negotiated.max_batch, 8);
        let err = ep
            .set_batch(vec![SteerCommand::new(
                "label",
                ParamValue::Str("x".into()),
            )])
            .unwrap_err();
        assert!(matches!(err, SteerError::UnsupportedKind { .. }));
        assert_eq!(h.handshakes().len(), 1);
    }

    #[test]
    fn describe_mirrors_hub_specs() {
        let h = hub();
        let ep = LoopbackEndpoint::attach(&h, "a");
        let specs = ep.describe();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "label"); // BTreeMap name order
        assert_eq!(specs[1].name, "miscibility");
    }

    #[test]
    fn refused_commit_notifies_subscriber() {
        let h = hub();
        let mut ep = LoopbackEndpoint::attach(&h, "a");
        let sub = ep.subscribe();
        ep.set_batch(vec![SteerCommand::f64("miscibility", 7.0)])
            .unwrap();
        h.commit();
        assert!(matches!(sub.poll(), Some(SteerNotice::Refused { .. })));
    }
}
