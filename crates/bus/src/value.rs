//! Typed steering values.
//!
//! The paper steers heterogeneous codes through heterogeneous middlewares;
//! the least common denominator historically forced everything through
//! `f64`. A [`ParamValue`] is the bus's typed currency instead: every
//! transport adapter encodes it through its own wire machinery (VISIT
//! frames, OGSA service-data text, COVISE module parameters, UNICORE job
//! payloads) and must round-trip it losslessly.

use bytes::{Buf, BufMut, BytesMut};
use visit::VisitValue;

/// The declared type of a steerable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ParamKind {
    /// Double-precision scalar.
    F64 = 1,
    /// 64-bit integer.
    I64 = 2,
    /// Boolean flag.
    Bool = 3,
    /// Three-component double vector (directions, positions).
    Vec3 = 4,
    /// UTF-8 string (labels, site names, file stems).
    Str = 5,
}

impl ParamKind {
    /// All kinds, in wire-code order.
    pub const ALL: [ParamKind; 5] = [
        ParamKind::F64,
        ParamKind::I64,
        ParamKind::Bool,
        ParamKind::Vec3,
        ParamKind::Str,
    ];

    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Option<ParamKind> {
        Some(match b {
            1 => ParamKind::F64,
            2 => ParamKind::I64,
            3 => ParamKind::Bool,
            4 => ParamKind::Vec3,
            5 => ParamKind::Str,
            _ => return None,
        })
    }

    /// Stable lowercase name (capability sets, handshake logs).
    pub fn name(self) -> &'static str {
        match self {
            ParamKind::F64 => "f64",
            ParamKind::I64 => "i64",
            ParamKind::Bool => "bool",
            ParamKind::Vec3 => "vec3",
            ParamKind::Str => "str",
        }
    }
}

/// One typed steering value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Double-precision scalar.
    F64(f64),
    /// 64-bit integer.
    I64(i64),
    /// Boolean flag.
    Bool(bool),
    /// Three-component double vector.
    Vec3([f64; 3]),
    /// UTF-8 string.
    Str(String),
}

impl ParamValue {
    /// The value's kind tag.
    pub fn kind(&self) -> ParamKind {
        match self {
            ParamValue::F64(_) => ParamKind::F64,
            ParamValue::I64(_) => ParamKind::I64,
            ParamValue::Bool(_) => ParamKind::Bool,
            ParamValue::Vec3(_) => ParamKind::Vec3,
            ParamValue::Str(_) => ParamKind::Str,
        }
    }

    /// Exact scalar-to-kind conversion: the one rule for re-typing an
    /// f64 surface (COVISE module parameters, f64 shims) into a declared
    /// kind. `None` when the conversion would lose information.
    pub fn from_scalar(kind: ParamKind, v: f64) -> Option<ParamValue> {
        match kind {
            ParamKind::F64 => Some(ParamValue::F64(v)),
            ParamKind::I64 if v.fract() == 0.0 && v.abs() < 9.0e15 => {
                Some(ParamValue::I64(v as i64))
            }
            ParamKind::Bool if v == 0.0 || v == 1.0 => Some(ParamValue::Bool(v == 1.0)),
            _ => None,
        }
    }

    /// Numeric view: `F64` as-is, `I64` widened, `Bool` as 0/1. `None`
    /// for `Vec3`/`Str` (no canonical scalar).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::F64(v) => Some(*v),
            ParamValue::I64(v) => Some(*v as f64),
            ParamValue::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Canonical text rendering — byte-stable (used in session audit logs
    /// and scenario digests). `F64` uses Rust's shortest round-trip float
    /// formatting, so [`ParamValue::parse`] recovers it exactly.
    pub fn render(&self) -> String {
        match self {
            ParamValue::F64(v) => format!("{v:?}"),
            ParamValue::I64(v) => format!("{v}"),
            ParamValue::Bool(b) => format!("{b}"),
            ParamValue::Vec3([x, y, z]) => format!("[{x:?},{y:?},{z:?}]"),
            ParamValue::Str(s) => s.clone(),
        }
    }

    /// Parse the canonical text rendering back, directed by `kind` (text
    /// is untyped on its own — OGSA's XML-ish encoding works this way).
    pub fn parse(kind: ParamKind, text: &str) -> Option<ParamValue> {
        Some(match kind {
            ParamKind::F64 => ParamValue::F64(text.parse().ok()?),
            ParamKind::I64 => ParamValue::I64(text.parse().ok()?),
            ParamKind::Bool => ParamValue::Bool(text.parse().ok()?),
            ParamKind::Vec3 => {
                let inner = text.strip_prefix('[')?.strip_suffix(']')?;
                let mut it = inner.splitn(3, ',');
                let x = it.next()?.parse().ok()?;
                let y = it.next()?.parse().ok()?;
                let z = it.next()?.parse().ok()?;
                ParamValue::Vec3([x, y, z])
            }
            ParamKind::Str => ParamValue::Str(text.to_string()),
        })
    }

    /// Map onto the VISIT typed-payload layer (the §3.2 wire codec):
    /// scalars become length-1 arrays, `Vec3` a length-3 `F64` array,
    /// `Bool` a length-1 `I32`.
    pub fn to_visit(&self) -> VisitValue {
        match self {
            ParamValue::F64(v) => VisitValue::F64(vec![*v]),
            ParamValue::I64(v) => VisitValue::I64(vec![*v]),
            ParamValue::Bool(b) => VisitValue::I32(vec![i32::from(*b)]),
            ParamValue::Vec3(v) => VisitValue::F64(v.to_vec()),
            ParamValue::Str(s) => VisitValue::Str(s.clone()),
        }
    }

    /// Recover from a VISIT payload, directed by the declared `kind` (the
    /// frame tag carries it on the wire). Strict: shape mismatches return
    /// `None` rather than guessing — the round-trip must be lossless.
    pub fn from_visit(kind: ParamKind, v: &VisitValue) -> Option<ParamValue> {
        Some(match (kind, v) {
            (ParamKind::F64, VisitValue::F64(xs)) if xs.len() == 1 => ParamValue::F64(xs[0]),
            (ParamKind::I64, VisitValue::I64(xs)) if xs.len() == 1 => ParamValue::I64(xs[0]),
            (ParamKind::Bool, VisitValue::I32(xs)) if xs.len() == 1 && (0..=1).contains(&xs[0]) => {
                ParamValue::Bool(xs[0] == 1)
            }
            (ParamKind::Vec3, VisitValue::F64(xs)) if xs.len() == 3 => {
                ParamValue::Vec3([xs[0], xs[1], xs[2]])
            }
            (ParamKind::Str, VisitValue::Str(s)) => ParamValue::Str(s.clone()),
            _ => return None,
        })
    }

    /// Compact tagged binary encoding (kind byte + payload, little-endian)
    /// — the format the core TCP server and the UNICORE job payload use.
    pub fn encode_bytes(&self, out: &mut BytesMut) {
        out.put_u8(self.kind() as u8);
        match self {
            ParamValue::F64(v) => out.put_f64_le(*v),
            ParamValue::I64(v) => out.put_i64_le(*v),
            ParamValue::Bool(b) => out.put_u8(u8::from(*b)),
            ParamValue::Vec3(v) => {
                for c in v {
                    out.put_f64_le(*c);
                }
            }
            ParamValue::Str(s) => {
                out.put_u32_le(s.len() as u32);
                out.put_slice(s.as_bytes());
            }
        }
    }

    /// Decode the tagged binary encoding, advancing `buf` past it.
    /// Returns `None` on any malformation.
    pub fn decode_bytes(buf: &mut &[u8]) -> Option<ParamValue> {
        if buf.is_empty() {
            return None;
        }
        let kind = ParamKind::from_byte(buf.get_u8())?;
        Some(match kind {
            ParamKind::F64 => {
                if buf.len() < 8 {
                    return None;
                }
                ParamValue::F64(buf.get_f64_le())
            }
            ParamKind::I64 => {
                if buf.len() < 8 {
                    return None;
                }
                ParamValue::I64(buf.get_i64_le())
            }
            ParamKind::Bool => {
                if buf.is_empty() {
                    return None;
                }
                match buf.get_u8() {
                    0 => ParamValue::Bool(false),
                    1 => ParamValue::Bool(true),
                    _ => return None,
                }
            }
            ParamKind::Vec3 => {
                if buf.len() < 24 {
                    return None;
                }
                ParamValue::Vec3([buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le()])
            }
            ParamKind::Str => {
                if buf.len() < 4 {
                    return None;
                }
                let len = buf.get_u32_le() as usize;
                if buf.len() < len {
                    return None;
                }
                let s = String::from_utf8(buf[..len].to_vec()).ok()?;
                buf.advance(len);
                ParamValue::Str(s)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ParamValue> {
        vec![
            ParamValue::F64(0.25),
            ParamValue::F64(-1e300),
            ParamValue::I64(i64::MIN),
            ParamValue::Bool(true),
            ParamValue::Bool(false),
            ParamValue::Vec3([1.0, -2.5, 1e-9]),
            ParamValue::Str("manchester-csar".into()),
            ParamValue::Str(String::new()),
        ]
    }

    #[test]
    fn binary_roundtrip_every_variant() {
        for v in samples() {
            let mut buf = BytesMut::new();
            v.encode_bytes(&mut buf);
            let mut slice: &[u8] = &buf;
            assert_eq!(ParamValue::decode_bytes(&mut slice), Some(v.clone()));
            assert!(slice.is_empty(), "decode must consume exactly: {v:?}");
        }
    }

    #[test]
    fn visit_roundtrip_every_variant() {
        for v in samples() {
            let wire = v.to_visit();
            assert_eq!(ParamValue::from_visit(v.kind(), &wire), Some(v));
        }
    }

    #[test]
    fn text_roundtrip_every_variant() {
        for v in samples() {
            assert_eq!(ParamValue::parse(v.kind(), &v.render()), Some(v.clone()));
        }
    }

    #[test]
    fn nan_float_survives_binary_roundtrip_bit_exact() {
        let bits = 0x7ff8_dead_beef_0001u64;
        let v = ParamValue::F64(f64::from_bits(bits));
        let mut buf = BytesMut::new();
        v.encode_bytes(&mut buf);
        let mut slice: &[u8] = &buf;
        match ParamValue::decode_bytes(&mut slice) {
            Some(ParamValue::F64(x)) => assert_eq!(x.to_bits(), bits),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_from_visit_rejected() {
        assert_eq!(
            ParamValue::from_visit(ParamKind::F64, &VisitValue::F64(vec![1.0, 2.0])),
            None
        );
        assert_eq!(
            ParamValue::from_visit(ParamKind::Bool, &VisitValue::I32(vec![7])),
            None
        );
        assert_eq!(
            ParamValue::from_visit(ParamKind::Vec3, &VisitValue::F64(vec![1.0])),
            None
        );
    }

    #[test]
    fn truncated_binary_rejected() {
        for v in samples() {
            let mut buf = BytesMut::new();
            v.encode_bytes(&mut buf);
            for cut in 0..buf.len() {
                let mut slice: &[u8] = &buf[..cut];
                assert_eq!(ParamValue::decode_bytes(&mut slice), None, "cut={cut}");
            }
        }
    }

    #[test]
    fn kind_bytes_roundtrip() {
        for k in ParamKind::ALL {
            assert_eq!(ParamKind::from_byte(k as u8), Some(k));
        }
        assert_eq!(ParamKind::from_byte(0), None);
        assert_eq!(ParamKind::from_byte(9), None);
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(ParamValue::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(ParamValue::I64(-3).as_f64(), Some(-3.0));
        assert_eq!(ParamValue::Bool(true).as_f64(), Some(1.0));
        assert_eq!(ParamValue::Str("x".into()).as_f64(), None);
        assert_eq!(ParamValue::Vec3([0.0; 3]).as_f64(), None);
    }
}
