//! The steering hub: one shared registry + staged batches + subscribers.
//!
//! A [`SteerHub`] is the session-side anchor every endpoint adapter
//! attaches to. Transports *stage* decoded command batches here
//! ([`SteerHub::stage`]); the owner of the simulation loop *commits* them
//! atomically at a step boundary ([`SteerHub::commit_with`]), in global
//! staging order — which is what makes a multi-transport run replay
//! byte-identically: arrival order is deterministic under the virtual
//! clock, and application order equals arrival order regardless of which
//! middleware carried each command.

use crate::command::{CommandBatch, CommitOutcome, SteerCommand, SteerError, SteerNotice};
use crate::endpoint::{Capabilities, Subscription};
use crate::registry::{ParamRegistry, SharedRegistry};
use crate::spec::ParamSpec;
use crate::value::ParamValue;
use gridsteer_ckpt::{CkptError, SectionWriter, Snapshot};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Weak};

#[derive(Default)]
struct HubState {
    staged: Vec<CommandBatch>,
    next_batch: u64,
    commit_seq: u64,
    /// Weak so a dropped subscriber's queue is reclaimed (dead entries
    /// are pruned at each commit).
    subscribers: Vec<Weak<Mutex<VecDeque<SteerNotice>>>>,
    handshakes: Vec<String>,
    /// Oracle probe: per-origin high-water mark of committed batch seqs.
    /// Cleared on restore — a restored process legitimately replays the
    /// staged batches the checkpoint captured.
    last_committed: std::collections::BTreeMap<String, u64>,
    /// Oracle probe: stale-seq commits observed (a batch applied at or
    /// below its origin's high-water mark). Survives restores — the
    /// violation happened in this process's history.
    probe_violations: Vec<String>,
}

/// The shared steering hub. Cheap to clone; all clones are one hub.
#[derive(Clone, Default)]
pub struct SteerHub {
    registry: SharedRegistry,
    state: Arc<Mutex<HubState>>,
}

impl SteerHub {
    /// A hub over a fresh registry declaring `specs`.
    pub fn new(specs: Vec<ParamSpec>) -> SteerHub {
        let mut registry = ParamRegistry::new();
        for spec in specs {
            registry.declare(spec);
        }
        SteerHub {
            registry: SharedRegistry::new(registry),
            state: Arc::default(),
        }
    }

    /// The shared registry — hand this to a `SteeringSession` (or any
    /// other authority) so endpoint reads and session writes see one
    /// value store.
    pub fn registry(&self) -> SharedRegistry {
        self.registry.clone()
    }

    /// The typed parameter surface.
    pub fn describe(&self) -> Vec<ParamSpec> {
        self.registry.specs()
    }

    /// Current value of one parameter.
    pub fn get(&self, name: &str) -> Option<ParamValue> {
        self.registry.get_value(name)
    }

    /// Stage a transport-decoded batch for the next commit. Returns the
    /// assigned batch sequence number.
    pub fn stage(
        &self,
        origin: &str,
        transport: &'static str,
        commands: Vec<SteerCommand>,
    ) -> Result<u64, SteerError> {
        if commands.is_empty() {
            return Err(SteerError::EmptyBatch);
        }
        let mut st = self.state.lock();
        st.next_batch += 1;
        let seq = st.next_batch;
        st.staged.push(CommandBatch {
            seq,
            origin: origin.to_string(),
            transport,
            commands,
        });
        Ok(seq)
    }

    /// Number of batches waiting for the next commit.
    pub fn pending(&self) -> usize {
        self.state.lock().staged.len()
    }

    /// Record a completed capability handshake (audit + scenario digest).
    pub fn record_handshake(&self, origin: &str, negotiated: &Capabilities) {
        self.state
            .lock()
            .handshakes
            .push(format!("{origin} {}", negotiated.render()));
    }

    /// Handshake audit lines, in attach order.
    pub fn handshakes(&self) -> Vec<String> {
        self.state.lock().handshakes.clone()
    }

    /// Register a subscriber fed by every subsequent commit. Dropping
    /// the returned [`Subscription`] unsubscribes; unpolled notices are
    /// capped (oldest dropped first), so an idle subscriber cannot grow
    /// the hub without bound.
    pub fn subscribe(&self) -> Subscription {
        let sub = Subscription::new();
        self.state.lock().subscribers.push(sub.downgrade());
        sub
    }

    /// Commit every staged batch atomically, in staging order, applying
    /// each command through `apply`. The closure owns authority (role
    /// checks, registry write, backend propagation) and returns the value
    /// actually applied or a refusal reason. Outcomes fan out to all
    /// subscribers.
    pub fn commit_with(
        &self,
        mut apply: impl FnMut(&CommandBatch, &SteerCommand) -> Result<ParamValue, String>,
    ) -> CommitOutcome {
        let (batches, commit) = {
            let mut st = self.state.lock();
            if st.staged.is_empty() {
                return CommitOutcome::default();
            }
            st.commit_seq += 1;
            let batches = std::mem::take(&mut st.staged);
            for b in &batches {
                let hw = st.last_committed.get(&b.origin).copied().unwrap_or(0);
                if b.seq <= hw {
                    let v = format!(
                        "stale-seq commit: origin {} batch seq {} at/below high-water {}",
                        b.origin, b.seq, hw
                    );
                    st.probe_violations.push(v);
                } else {
                    st.last_committed.insert(b.origin.clone(), b.seq);
                }
            }
            (batches, st.commit_seq)
        };
        let mut outcome = CommitOutcome {
            commit,
            ..CommitOutcome::default()
        };
        let mut notices = Vec::new();
        for batch in &batches {
            for cmd in &batch.commands {
                match apply(batch, cmd) {
                    Ok(value) => {
                        outcome.applied += 1;
                        notices.push(SteerNotice::Applied {
                            commit,
                            batch: batch.seq,
                            origin: batch.origin.clone(),
                            param: cmd.param.clone(),
                            value,
                        });
                    }
                    Err(reason) => {
                        outcome.refused += 1;
                        notices.push(SteerNotice::Refused {
                            commit,
                            batch: batch.seq,
                            origin: batch.origin.clone(),
                            param: cmd.param.clone(),
                            reason,
                        });
                    }
                }
            }
        }
        let live: Vec<Subscription> = {
            let mut st = self.state.lock();
            st.subscribers.retain(|w| w.strong_count() > 0);
            st.subscribers
                .iter()
                .filter_map(|w| w.upgrade().map(Subscription::from_queue))
                .collect()
        };
        for sub in live {
            for n in &notices {
                sub.push(n.clone());
            }
        }
        outcome
    }

    /// Stale-seq violations observed so far (oracle probe): commits that
    /// applied a batch at or below its origin's previously-committed
    /// high-water seq. Empty on every healthy run.
    pub fn probe_violations(&self) -> Vec<String> {
        self.state.lock().probe_violations.clone()
    }

    /// Commit with the hub's own registry as the only authority (no role
    /// checks) — the standalone path used by tests and benches.
    pub fn commit(&self) -> CommitOutcome {
        let registry = self.registry.clone();
        self.commit_with(|_batch, cmd| registry.set_value(&cmd.param, &cmd.value))
    }

    /// Serialize the full hub state — registry (specs, values, change
    /// log, counter), staged batches, batch/commit sequence counters and
    /// the handshake audit log — into snapshot section `name`.
    /// Subscriber notice queues are process-local and are not
    /// serialized: endpoints re-subscribe after a restore.
    pub fn save_sections(&self, snap: &mut Snapshot, name: &str) {
        let mut w = SectionWriter::new();
        self.registry.save_into(&mut w);
        let st = self.state.lock();
        w.put_u64(st.next_batch);
        w.put_u64(st.commit_seq);
        w.put_u32(st.staged.len() as u32);
        for b in &st.staged {
            w.put_u64(b.seq);
            w.put_str(&b.origin);
            w.put_str(b.transport);
            w.put_u32(b.commands.len() as u32);
            for c in &b.commands {
                crate::ckpt::put_command(&mut w, c);
            }
        }
        w.put_u32(st.handshakes.len() as u32);
        for h in &st.handshakes {
            w.put_str(h);
        }
        drop(st);
        snap.push(name, 0, w.finish());
    }

    /// Restore hub state from snapshot section `name`, replacing the
    /// registry contents, staged batches, counters and handshake log
    /// behind the existing shared handles — clones held by sessions and
    /// endpoints observe the restored state. Subscribers are cleared
    /// (their queues did not survive the process); endpoints
    /// re-subscribe on reattach. Batch and commit numbering resume
    /// exactly where the checkpoint cut them.
    pub fn restore_sections(&self, snap: &Snapshot, name: &str) -> Result<(), CkptError> {
        let mut r = snap.reader(name)?;
        let registry = ParamRegistry::restore_from(&mut r)?;
        let next_batch = r.get_u64()?;
        let commit_seq = r.get_u64()?;
        let nbatches = r.get_u32()?;
        let mut staged = Vec::new();
        for _ in 0..nbatches {
            let seq = r.get_u64()?;
            let origin = r.get_str()?;
            let transport = crate::ckpt::intern_label(&r.get_str()?);
            let ncmds = r.get_u32()?;
            let mut commands = Vec::new();
            for _ in 0..ncmds {
                commands.push(crate::ckpt::get_command(&mut r, "staged command")?);
            }
            staged.push(CommandBatch {
                seq,
                origin,
                transport,
                commands,
            });
        }
        let nhs = r.get_u32()?;
        let mut handshakes = Vec::new();
        for _ in 0..nhs {
            handshakes.push(r.get_str()?);
        }
        r.expect_end()?;
        self.registry.replace(registry);
        let mut st = self.state.lock();
        st.staged = staged;
        st.next_batch = next_batch;
        st.commit_seq = commit_seq;
        st.handshakes = handshakes;
        st.subscribers.clear();
        // batch numbering may rewind past commits the pre-crash process
        // made — replaying them is correct recovery, not a stale commit
        st.last_committed.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ParamSpec;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::f64_clamped("gain", 0.0, 10.0, 1.0),
        ])
    }

    #[test]
    fn staged_batches_apply_in_order_at_commit() {
        let h = hub();
        h.stage("a", "loopback", vec![SteerCommand::f64("miscibility", 0.3)])
            .unwrap();
        h.stage("b", "loopback", vec![SteerCommand::f64("miscibility", 0.6)])
            .unwrap();
        assert_eq!(h.pending(), 2);
        // nothing applied until the step boundary
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(1.0)));
        let out = h.commit();
        assert_eq!(out.applied, 2);
        assert_eq!(h.pending(), 0);
        // staging order wins: b staged last, so b's value is final
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(0.6)));
    }

    #[test]
    fn refusals_are_counted_and_notified() {
        let h = hub();
        let sub = h.subscribe();
        h.stage(
            "a",
            "loopback",
            vec![
                SteerCommand::f64("miscibility", 9.0), // rejected (bounds)
                SteerCommand::f64("gain", 99.0),       // clamped to 10
            ],
        )
        .unwrap();
        let out = h.commit();
        assert_eq!(out.applied, 1);
        assert_eq!(out.refused, 1);
        let notices = sub.drain();
        assert!(
            matches!(&notices[0], SteerNotice::Refused { param, .. } if param == "miscibility")
        );
        assert!(matches!(
            &notices[1],
            SteerNotice::Applied { value: ParamValue::F64(v), .. } if *v == 10.0
        ));
    }

    #[test]
    fn empty_batch_refused_at_stage_time() {
        let h = hub();
        assert_eq!(
            h.stage("a", "loopback", Vec::new()),
            Err(SteerError::EmptyBatch)
        );
    }

    #[test]
    fn batch_seq_is_globally_monotone() {
        let h = hub();
        let s1 = h
            .stage("a", "visit", vec![SteerCommand::f64("gain", 1.0)])
            .unwrap();
        let s2 = h
            .stage("b", "ogsa", vec![SteerCommand::f64("gain", 2.0)])
            .unwrap();
        assert!(s2 > s1);
        h.commit();
        let s3 = h
            .stage("a", "visit", vec![SteerCommand::f64("gain", 3.0)])
            .unwrap();
        assert!(s3 > s2, "sequence survives commits");
    }

    #[test]
    fn commit_with_custom_authority() {
        let h = hub();
        h.stage("eve", "loopback", vec![SteerCommand::f64("gain", 5.0)])
            .unwrap();
        let out = h.commit_with(|batch, _cmd| {
            if batch.origin == "eve" {
                Err("not the master".into())
            } else {
                Ok(ParamValue::F64(0.0))
            }
        });
        assert_eq!(out.refused, 1);
        assert_eq!(
            h.get("gain"),
            Some(ParamValue::F64(1.0)),
            "refused steer must not touch the registry"
        );
    }

    #[test]
    fn dropped_subscribers_are_pruned_and_reclaimed() {
        let h = hub();
        let kept = h.subscribe();
        {
            let _dropped = h.subscribe();
        } // queue freed here; the hub holds only a weak handle
        h.stage("a", "loopback", vec![SteerCommand::f64("gain", 2.0)])
            .unwrap();
        h.commit(); // prunes the dead entry, feeds the live one
        assert_eq!(kept.drain().len(), 1);
        assert_eq!(h.state.lock().subscribers.len(), 1, "dead entry pruned");
    }

    #[test]
    fn unpolled_subscriber_queue_is_bounded() {
        let h = hub();
        let idle = h.subscribe();
        for i in 0..(crate::endpoint::MAX_PENDING_NOTICES + 10) {
            h.stage(
                "a",
                "loopback",
                vec![SteerCommand::f64("gain", (i % 10) as f64)],
            )
            .unwrap();
            h.commit();
        }
        assert_eq!(
            idle.drain().len(),
            crate::endpoint::MAX_PENDING_NOTICES,
            "oldest notices must be shed at the cap"
        );
    }

    #[test]
    fn hub_state_survives_snapshot_roundtrip() {
        let h = hub();
        h.record_handshake("alice", &Capabilities::full("visit", 64));
        h.stage("alice", "visit", vec![SteerCommand::f64("gain", 2.0)])
            .unwrap();
        h.commit();
        // leave one batch staged-but-uncommitted across the checkpoint
        h.stage("bob", "ogsa", vec![SteerCommand::f64("miscibility", 0.5)])
            .unwrap();
        let mut snap = Snapshot::new(1, 0);
        h.save_sections(&mut snap, "steer");
        let snap = Snapshot::decode(&snap.encode()).unwrap();

        let restored = SteerHub::default();
        restored.restore_sections(&snap, "steer").unwrap();
        assert_eq!(restored.describe(), h.describe());
        assert_eq!(restored.get("gain"), Some(ParamValue::F64(2.0)));
        assert_eq!(restored.pending(), 1, "staged batch survives");
        assert_eq!(restored.handshakes(), h.handshakes());
        assert_eq!(restored.registry.history(), h.registry.history());
        // numbering resumes, not restarts: the next batch seq is unique
        let s = restored
            .stage("carol", "loopback", vec![SteerCommand::f64("gain", 3.0)])
            .unwrap();
        assert_eq!(s, 3, "two batches staged pre-checkpoint");
        let out = restored.commit();
        assert_eq!(out.commit, 2, "commit numbering continues");
        assert_eq!(out.applied, 2, "staged batch applied with the new one");
        assert_eq!(restored.get("miscibility"), Some(ParamValue::F64(0.5)));
    }

    #[test]
    fn restore_rejects_missing_section_and_truncation() {
        let h = hub();
        let mut snap = Snapshot::new(1, 0);
        h.save_sections(&mut snap, "steer");
        assert!(matches!(
            h.restore_sections(&snap, "ghost"),
            Err(CkptError::MissingSection { .. })
        ));
        let body = snap.section("steer").unwrap();
        let mut cut = Snapshot::new(1, 0);
        cut.push("steer", 0, body[..body.len() - 4].to_vec());
        assert!(h.restore_sections(&cut, "steer").is_err());
    }

    #[test]
    fn handshake_log_is_ordered() {
        let h = hub();
        h.record_handshake("alice", &Capabilities::full("visit", 64));
        h.record_handshake("bob", &Capabilities::full("ogsa", 32));
        let log = h.handshakes();
        assert_eq!(log.len(), 2);
        assert!(log[0].starts_with("alice transport=visit"));
        assert!(log[1].starts_with("bob transport=ogsa"));
    }
}
