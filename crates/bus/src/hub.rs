//! The steering hub: one shared registry + staged batches + subscribers.
//!
//! A [`SteerHub`] is the session-side anchor every endpoint adapter
//! attaches to. Transports *stage* decoded command batches here
//! ([`SteerHub::stage`]); the owner of the simulation loop *commits* them
//! atomically at a step boundary ([`SteerHub::commit_with`]), in global
//! staging order — which is what makes a multi-transport run replay
//! byte-identically: arrival order is deterministic under the virtual
//! clock, and application order equals arrival order regardless of which
//! middleware carried each command.

use crate::command::{CommandBatch, CommitOutcome, SteerCommand, SteerError, SteerNotice};
use crate::endpoint::{Capabilities, Subscription};
use crate::registry::{ParamRegistry, SharedRegistry};
use crate::spec::ParamSpec;
use crate::value::ParamValue;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Weak};

#[derive(Default)]
struct HubState {
    staged: Vec<CommandBatch>,
    next_batch: u64,
    commit_seq: u64,
    /// Weak so a dropped subscriber's queue is reclaimed (dead entries
    /// are pruned at each commit).
    subscribers: Vec<Weak<Mutex<VecDeque<SteerNotice>>>>,
    handshakes: Vec<String>,
}

/// The shared steering hub. Cheap to clone; all clones are one hub.
#[derive(Clone, Default)]
pub struct SteerHub {
    registry: SharedRegistry,
    state: Arc<Mutex<HubState>>,
}

impl SteerHub {
    /// A hub over a fresh registry declaring `specs`.
    pub fn new(specs: Vec<ParamSpec>) -> SteerHub {
        let mut registry = ParamRegistry::new();
        for spec in specs {
            registry.declare(spec);
        }
        SteerHub {
            registry: SharedRegistry::new(registry),
            state: Arc::default(),
        }
    }

    /// The shared registry — hand this to a `SteeringSession` (or any
    /// other authority) so endpoint reads and session writes see one
    /// value store.
    pub fn registry(&self) -> SharedRegistry {
        self.registry.clone()
    }

    /// The typed parameter surface.
    pub fn describe(&self) -> Vec<ParamSpec> {
        self.registry.specs()
    }

    /// Current value of one parameter.
    pub fn get(&self, name: &str) -> Option<ParamValue> {
        self.registry.get_value(name)
    }

    /// Stage a transport-decoded batch for the next commit. Returns the
    /// assigned batch sequence number.
    pub fn stage(
        &self,
        origin: &str,
        transport: &'static str,
        commands: Vec<SteerCommand>,
    ) -> Result<u64, SteerError> {
        if commands.is_empty() {
            return Err(SteerError::EmptyBatch);
        }
        let mut st = self.state.lock();
        st.next_batch += 1;
        let seq = st.next_batch;
        st.staged.push(CommandBatch {
            seq,
            origin: origin.to_string(),
            transport,
            commands,
        });
        Ok(seq)
    }

    /// Number of batches waiting for the next commit.
    pub fn pending(&self) -> usize {
        self.state.lock().staged.len()
    }

    /// Record a completed capability handshake (audit + scenario digest).
    pub fn record_handshake(&self, origin: &str, negotiated: &Capabilities) {
        self.state
            .lock()
            .handshakes
            .push(format!("{origin} {}", negotiated.render()));
    }

    /// Handshake audit lines, in attach order.
    pub fn handshakes(&self) -> Vec<String> {
        self.state.lock().handshakes.clone()
    }

    /// Register a subscriber fed by every subsequent commit. Dropping
    /// the returned [`Subscription`] unsubscribes; unpolled notices are
    /// capped (oldest dropped first), so an idle subscriber cannot grow
    /// the hub without bound.
    pub fn subscribe(&self) -> Subscription {
        let sub = Subscription::new();
        self.state.lock().subscribers.push(sub.downgrade());
        sub
    }

    /// Commit every staged batch atomically, in staging order, applying
    /// each command through `apply`. The closure owns authority (role
    /// checks, registry write, backend propagation) and returns the value
    /// actually applied or a refusal reason. Outcomes fan out to all
    /// subscribers.
    pub fn commit_with(
        &self,
        mut apply: impl FnMut(&CommandBatch, &SteerCommand) -> Result<ParamValue, String>,
    ) -> CommitOutcome {
        let (batches, commit) = {
            let mut st = self.state.lock();
            if st.staged.is_empty() {
                return CommitOutcome::default();
            }
            st.commit_seq += 1;
            (std::mem::take(&mut st.staged), st.commit_seq)
        };
        let mut outcome = CommitOutcome {
            commit,
            ..CommitOutcome::default()
        };
        let mut notices = Vec::new();
        for batch in &batches {
            for cmd in &batch.commands {
                match apply(batch, cmd) {
                    Ok(value) => {
                        outcome.applied += 1;
                        notices.push(SteerNotice::Applied {
                            commit,
                            batch: batch.seq,
                            origin: batch.origin.clone(),
                            param: cmd.param.clone(),
                            value,
                        });
                    }
                    Err(reason) => {
                        outcome.refused += 1;
                        notices.push(SteerNotice::Refused {
                            commit,
                            batch: batch.seq,
                            origin: batch.origin.clone(),
                            param: cmd.param.clone(),
                            reason,
                        });
                    }
                }
            }
        }
        let live: Vec<Subscription> = {
            let mut st = self.state.lock();
            st.subscribers.retain(|w| w.strong_count() > 0);
            st.subscribers
                .iter()
                .filter_map(|w| w.upgrade().map(Subscription::from_queue))
                .collect()
        };
        for sub in live {
            for n in &notices {
                sub.push(n.clone());
            }
        }
        outcome
    }

    /// Commit with the hub's own registry as the only authority (no role
    /// checks) — the standalone path used by tests and benches.
    pub fn commit(&self) -> CommitOutcome {
        let registry = self.registry.clone();
        self.commit_with(|_batch, cmd| registry.set_value(&cmd.param, &cmd.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ParamSpec;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::f64_clamped("gain", 0.0, 10.0, 1.0),
        ])
    }

    #[test]
    fn staged_batches_apply_in_order_at_commit() {
        let h = hub();
        h.stage("a", "loopback", vec![SteerCommand::f64("miscibility", 0.3)])
            .unwrap();
        h.stage("b", "loopback", vec![SteerCommand::f64("miscibility", 0.6)])
            .unwrap();
        assert_eq!(h.pending(), 2);
        // nothing applied until the step boundary
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(1.0)));
        let out = h.commit();
        assert_eq!(out.applied, 2);
        assert_eq!(h.pending(), 0);
        // staging order wins: b staged last, so b's value is final
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(0.6)));
    }

    #[test]
    fn refusals_are_counted_and_notified() {
        let h = hub();
        let sub = h.subscribe();
        h.stage(
            "a",
            "loopback",
            vec![
                SteerCommand::f64("miscibility", 9.0), // rejected (bounds)
                SteerCommand::f64("gain", 99.0),       // clamped to 10
            ],
        )
        .unwrap();
        let out = h.commit();
        assert_eq!(out.applied, 1);
        assert_eq!(out.refused, 1);
        let notices = sub.drain();
        assert!(
            matches!(&notices[0], SteerNotice::Refused { param, .. } if param == "miscibility")
        );
        assert!(matches!(
            &notices[1],
            SteerNotice::Applied { value: ParamValue::F64(v), .. } if *v == 10.0
        ));
    }

    #[test]
    fn empty_batch_refused_at_stage_time() {
        let h = hub();
        assert_eq!(
            h.stage("a", "loopback", Vec::new()),
            Err(SteerError::EmptyBatch)
        );
    }

    #[test]
    fn batch_seq_is_globally_monotone() {
        let h = hub();
        let s1 = h
            .stage("a", "visit", vec![SteerCommand::f64("gain", 1.0)])
            .unwrap();
        let s2 = h
            .stage("b", "ogsa", vec![SteerCommand::f64("gain", 2.0)])
            .unwrap();
        assert!(s2 > s1);
        h.commit();
        let s3 = h
            .stage("a", "visit", vec![SteerCommand::f64("gain", 3.0)])
            .unwrap();
        assert!(s3 > s2, "sequence survives commits");
    }

    #[test]
    fn commit_with_custom_authority() {
        let h = hub();
        h.stage("eve", "loopback", vec![SteerCommand::f64("gain", 5.0)])
            .unwrap();
        let out = h.commit_with(|batch, _cmd| {
            if batch.origin == "eve" {
                Err("not the master".into())
            } else {
                Ok(ParamValue::F64(0.0))
            }
        });
        assert_eq!(out.refused, 1);
        assert_eq!(
            h.get("gain"),
            Some(ParamValue::F64(1.0)),
            "refused steer must not touch the registry"
        );
    }

    #[test]
    fn dropped_subscribers_are_pruned_and_reclaimed() {
        let h = hub();
        let kept = h.subscribe();
        {
            let _dropped = h.subscribe();
        } // queue freed here; the hub holds only a weak handle
        h.stage("a", "loopback", vec![SteerCommand::f64("gain", 2.0)])
            .unwrap();
        h.commit(); // prunes the dead entry, feeds the live one
        assert_eq!(kept.drain().len(), 1);
        assert_eq!(h.state.lock().subscribers.len(), 1, "dead entry pruned");
    }

    #[test]
    fn unpolled_subscriber_queue_is_bounded() {
        let h = hub();
        let idle = h.subscribe();
        for i in 0..(crate::endpoint::MAX_PENDING_NOTICES + 10) {
            h.stage(
                "a",
                "loopback",
                vec![SteerCommand::f64("gain", (i % 10) as f64)],
            )
            .unwrap();
            h.commit();
        }
        assert_eq!(
            idle.drain().len(),
            crate::endpoint::MAX_PENDING_NOTICES,
            "oldest notices must be shed at the cap"
        );
    }

    #[test]
    fn handshake_log_is_ordered() {
        let h = hub();
        h.record_handshake("alice", &Capabilities::full("visit", 64));
        h.record_handshake("bob", &Capabilities::full("ogsa", 32));
        let log = h.handshakes();
        assert_eq!(log.len(), 2);
        assert!(log[0].starts_with("alice transport=visit"));
        assert!(log[1].starts_with("bob transport=ogsa"));
    }
}
