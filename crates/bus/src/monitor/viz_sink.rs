//! The vizserver → monitor-hub bridge.
//!
//! §2.4's remote-rendering path ("only compressed bitmaps need to be sent
//! to the participating sites") used to terminate inside
//! [`VizServerSession`]'s private per-viewer codec table. [`HubFrameSink`]
//! reroutes it onto the typed data plane: the session encodes each frame
//! *once* through its broadcast codec and publishes it as a
//! [`MonitorPayload::Frame`], and the [`MonitorHub`] owns fan-out — every
//! subscriber gets the frame over its own middleware, with the hub's
//! capability filtering and decimation applying to rendered frames exactly
//! as they do to field slices and scalar series. Late joiners are handled
//! end to end: a new hub subscriber raises the keyframe request the sink
//! relays to the session's codec.

use crate::monitor::frame::MonitorPayload;
use crate::monitor::hub::MonitorHub;
use viz::{EncodedFrame, FrameSink, VizServerSession};

/// A [`FrameSink`] publishing encoded frames into a [`MonitorHub`].
pub struct HubFrameSink<'a> {
    hub: &'a MonitorHub,
    /// Channel name the frames are published under.
    channel: &'a str,
    /// Simulation step stamped onto published frames.
    step: u64,
}

impl<'a> HubFrameSink<'a> {
    /// A sink publishing to `hub` under `channel`, stamping `step`.
    pub fn new(hub: &'a MonitorHub, channel: &'a str, step: u64) -> HubFrameSink<'a> {
        HubFrameSink { hub, channel, step }
    }
}

impl FrameSink for HubFrameSink<'_> {
    fn wants_keyframe(&self) -> bool {
        self.hub.take_keyframe_request(self.channel)
    }

    fn publish_frame(&mut self, frame: &EncodedFrame) {
        self.hub.publish(
            self.step,
            MonitorPayload::frame(
                self.channel,
                frame.keyframe,
                frame.raw_size as u32,
                frame.payload.clone(),
            ),
        );
    }
}

/// Render-and-publish sugar: encode the session's current scene once and
/// fan it out through the hub (one call per step boundary).
pub fn publish_render(
    session: &mut VizServerSession,
    meshes: &[(&viz::TriMesh, [u8; 4])],
    hub: &MonitorHub,
    channel: &str,
    step: u64,
) -> EncodedFrame {
    let mut sink = HubFrameSink::new(hub, channel, step);
    session.render_to_sink(meshes, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::endpoint::MonitorCaps;
    use crate::monitor::frame::MonitorKind;
    use crate::monitor::loopback::LoopbackMonitor;
    use crate::monitor::visit_ep::VisitMonitor;
    use viz::{vizserver::demo_camera, DeltaRleCodec, TriMesh};

    #[test]
    fn rendered_frames_reach_subscribers_and_late_joiners_get_keyframes() {
        let hub = MonitorHub::new();
        hub.attach_endpoint(
            "early",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 64),
        );
        let mut session = VizServerSession::new(48, 48, demo_camera());
        let cube = TriMesh::unit_cube();
        publish_render(&mut session, &[(&cube, [200, 50, 50, 255])], &hub, "viz", 1);
        publish_render(&mut session, &[(&cube, [200, 50, 50, 255])], &hub, "viz", 2);
        // a late joiner attaches mid-stream over a *different* middleware
        hub.attach_endpoint(
            "late",
            Box::new(VisitMonitor::new()),
            &MonitorCaps::full("viewer", 64),
        );
        publish_render(&mut session, &[(&cube, [200, 50, 50, 255])], &hub, "viz", 3);
        let early = hub.recv("early");
        assert_eq!(early.len(), 3);
        let late = hub.recv("late");
        assert_eq!(late.len(), 1);
        match &late[0].payload {
            MonitorPayload::Frame { keyframe, .. } => {
                assert!(keyframe, "late joiner's first frame must be a keyframe")
            }
            other => panic!("expected frame payload, got {other:?}"),
        }
        assert_eq!(late[0].step, 3);
    }

    #[test]
    fn hub_published_frames_decode_to_the_rendered_image() {
        let hub = MonitorHub::new();
        hub.attach_endpoint(
            "v",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 64),
        );
        let mut session = VizServerSession::new(32, 32, demo_camera());
        let cube = TriMesh::unit_cube();
        let published =
            publish_render(&mut session, &[(&cube, [90, 90, 220, 255])], &hub, "viz", 1);
        let got = hub.recv("v");
        assert_eq!(got.len(), 1);
        let MonitorPayload::Frame {
            keyframe,
            raw_size,
            data,
            ..
        } = &got[0].payload
        else {
            panic!("expected frame payload");
        };
        let wire = EncodedFrame {
            keyframe: *keyframe,
            payload: data.to_vec(),
            raw_size: *raw_size as usize,
        };
        let mut dec = DeltaRleCodec::new();
        let img = dec.decode(&wire, 32, 32).expect("decodes");
        let mut dec2 = DeltaRleCodec::new();
        assert_eq!(img, dec2.decode(&published, 32, 32).unwrap());
    }

    #[test]
    fn frame_kind_is_filtered_for_grid_only_subscribers() {
        let hub = MonitorHub::new();
        let mut caps = MonitorCaps::full("viewer", 64);
        caps.kinds.retain(|k| *k == MonitorKind::Grid3);
        hub.attach_endpoint("grids", Box::new(LoopbackMonitor::new()), &caps);
        let mut session = VizServerSession::new(16, 16, demo_camera());
        publish_render(&mut session, &[], &hub, "viz", 1);
        assert!(hub.recv("grids").is_empty());
        assert_eq!(hub.stats_of("grids").unwrap().filtered, 1);
    }
}
