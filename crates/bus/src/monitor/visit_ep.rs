//! The VISIT monitor adapter: frames travel as real §3.2 wire frames.
//!
//! Each delivery batch is encoded into VISIT [`Frame`]s — a batch-open
//! frame, then per monitor frame a name frame, a header frame (sequence,
//! step, and the payload's shape words), and a typed-value frame whose
//! tag carries the [`MonitorKind`] wire code — shipped through a
//! [`MemLink`] pair with the same length-prefixed framing as the TCP
//! transport, and decoded on the viewer side. Grids ride as `F32` arrays,
//! scalar/vector samples as `F64`, encoded framebuffer frames as opaque
//! `Bytes`; the server-side byte-order conversion of §3.2 applies, so a
//! big-endian producer is decoded transparently — and because floats are
//! moved as raw bits, NaN-filled grids survive both byte orders exactly.

use crate::monitor::endpoint::{check_delivery, MonitorCaps, MonitorEndpoint, MonitorError};
use crate::monitor::frame::{MonitorFrame, MonitorKind, MonitorPayload};
use std::time::Duration;
use visit::link::FrameLink;
use visit::{Endianness, Frame, MemLink, MsgKind, VisitValue};

/// Tag of the delivery-open frame (payload: `I64[count]`).
const TAG_BEGIN: u32 = 0x00B6_0001;
/// Tag of a channel-name frame (payload: `Str`).
const TAG_NAME: u32 = 0x00B6_0002;
/// Tag of the per-frame header (payload: `I64[seq, step, a, b, c]` where
/// `a..c` are payload-shape words: grid dims, or keyframe flag + raw
/// size for encoded frames).
const TAG_HEAD: u32 = 0x00B6_0003;
/// Tag of the delivery-close frame (bare).
const TAG_END: u32 = 0x00B6_0004;
/// Base tag of a typed-value frame; the low byte carries the
/// [`MonitorKind`] wire code so the viewer decodes without guessing.
const TAG_VALUE_BASE: u32 = 0x00B6_1000;

/// Monitoring over the VISIT wire protocol.
pub struct VisitMonitor {
    caps: MonitorCaps,
    /// Producer-side link end (the "simulation is the client" side).
    producer: MemLink,
    /// Viewer-side link end, drained synchronously after each delivery.
    viewer: MemLink,
    /// Byte order the producer encodes payloads in (§3.2: the receiver
    /// converts; the sender never does).
    order: Endianness,
    inbox: Vec<MonitorFrame<'static>>,
}

impl VisitMonitor {
    /// A fresh endpoint encoding payloads in the producer's native byte
    /// order.
    pub fn new() -> VisitMonitor {
        Self::with_order(Endianness::native())
    }

    /// A fresh endpoint with an explicit producer byte order (the
    /// cross-endian tests force the mismatched case).
    pub fn with_order(order: Endianness) -> VisitMonitor {
        let (producer, viewer) = MemLink::pair();
        VisitMonitor {
            caps: MonitorCaps::full("visit", 256),
            producer,
            viewer,
            order,
            inbox: Vec::new(),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), MonitorError> {
        self.producer
            .send(&frame.encode())
            .map_err(|e| MonitorError::Transport(format!("visit send: {e:?}")))
    }

    fn send_value(&mut self, tag: u32, value: VisitValue) -> Result<(), MonitorError> {
        let frame = Frame::with_value(MsgKind::Data, tag, self.order, value);
        self.send(&frame)
    }

    /// Drain and decode one delivery from the viewer side of the link.
    fn recv_delivery(&mut self) -> Result<Vec<MonitorFrame<'static>>, MonitorError> {
        let recv = |viewer: &mut MemLink| -> Result<Frame, MonitorError> {
            let bytes = viewer
                .recv_timeout(Duration::from_millis(50))
                .map_err(|e| MonitorError::Transport(format!("visit recv: {e:?}")))?;
            Frame::decode(&bytes).ok_or_else(|| MonitorError::Transport("malformed frame".into()))
        };
        let begin = recv(&mut self.viewer)?;
        let count = match (begin.tag, begin.value.as_ref().and_then(VisitValue::to_i64)) {
            (TAG_BEGIN, Some(v)) if v.len() == 1 && v[0] >= 0 => v[0] as usize,
            _ => return Err(MonitorError::Transport("expected delivery-begin".into())),
        };
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let name_frame = recv(&mut self.viewer)?;
            let name = match (name_frame.tag, name_frame.value) {
                (TAG_NAME, Some(VisitValue::Str(s))) => s,
                _ => return Err(MonitorError::Transport("expected name frame".into())),
            };
            let head = recv(&mut self.viewer)?;
            let words = match (head.tag, head.value.as_ref().and_then(VisitValue::to_i64)) {
                (TAG_HEAD, Some(v)) if v.len() == 5 => v,
                _ => return Err(MonitorError::Transport("expected header frame".into())),
            };
            let (seq, step) = (words[0] as u64, words[1] as u64);
            let value_frame = recv(&mut self.viewer)?;
            let kind = value_frame
                .tag
                .checked_sub(TAG_VALUE_BASE)
                .and_then(|b| u8::try_from(b).ok())
                .and_then(MonitorKind::from_byte)
                .ok_or_else(|| MonitorError::Transport("bad value tag".into()))?;
            let payload = decode_payload(kind, name, &words[2..], value_frame.value.as_ref())
                .ok_or_else(|| MonitorError::Transport("typed payload mismatch".into()))?;
            frames.push(MonitorFrame { seq, step, payload });
        }
        let end = recv(&mut self.viewer)?;
        if end.tag != TAG_END {
            return Err(MonitorError::Transport("expected delivery-end".into()));
        }
        Ok(frames)
    }
}

impl Default for VisitMonitor {
    fn default() -> Self {
        VisitMonitor::new()
    }
}

/// Shape words `(a, b, c)` + typed value → payload. Strict: any mismatch
/// is a refusal, never a guess.
fn decode_payload(
    kind: MonitorKind,
    name: String,
    shape: &[i64],
    value: Option<&VisitValue>,
) -> Option<MonitorPayload<'static>> {
    let name = std::borrow::Cow::Owned(name);
    Some(match (kind, value) {
        (MonitorKind::Scalar, Some(VisitValue::F64(v))) if v.len() == 1 => {
            MonitorPayload::Scalar { name, value: v[0] }
        }
        (MonitorKind::Vec3, Some(VisitValue::F64(v))) if v.len() == 3 => MonitorPayload::Vec3 {
            name,
            value: [v[0], v[1], v[2]],
        },
        (MonitorKind::Grid2, Some(VisitValue::F32(data))) => {
            let (nx, ny) = (u32::try_from(shape[0]).ok()?, u32::try_from(shape[1]).ok()?);
            if data.len() != nx as usize * ny as usize {
                return None;
            }
            MonitorPayload::Grid2 {
                name,
                nx,
                ny,
                data: data.clone().into(),
            }
        }
        (MonitorKind::Grid3, Some(VisitValue::F32(data))) => {
            let (nx, ny, nz) = (
                u32::try_from(shape[0]).ok()?,
                u32::try_from(shape[1]).ok()?,
                u32::try_from(shape[2]).ok()?,
            );
            if data.len() != nx as usize * ny as usize * nz as usize {
                return None;
            }
            MonitorPayload::Grid3 {
                name,
                nx,
                ny,
                nz,
                data: data.clone().into(),
            }
        }
        (MonitorKind::Frame, Some(VisitValue::Bytes(data))) => {
            let keyframe = match shape[0] {
                0 => false,
                1 => true,
                _ => return None,
            };
            MonitorPayload::Frame {
                name,
                keyframe,
                raw_size: u32::try_from(shape[1]).ok()?,
                data: data.clone().into(),
            }
        }
        _ => return None,
    })
}

/// Payload → shape words + typed value.
fn encode_payload(p: &MonitorPayload) -> ([i64; 3], VisitValue) {
    match p {
        MonitorPayload::Scalar { value, .. } => ([0, 0, 0], VisitValue::F64(vec![*value])),
        MonitorPayload::Vec3 { value, .. } => ([0, 0, 0], VisitValue::F64(value.to_vec())),
        MonitorPayload::Grid2 { nx, ny, data, .. } => {
            ([*nx as i64, *ny as i64, 0], VisitValue::F32(data.to_vec()))
        }
        MonitorPayload::Grid3 {
            nx, ny, nz, data, ..
        } => (
            [*nx as i64, *ny as i64, *nz as i64],
            VisitValue::F32(data.to_vec()),
        ),
        MonitorPayload::Frame {
            keyframe,
            raw_size,
            data,
            ..
        } => (
            [i64::from(*keyframe), *raw_size as i64, 0],
            VisitValue::Bytes(data.to_vec()),
        ),
    }
}

impl MonitorEndpoint for VisitMonitor {
    fn transport(&self) -> &'static str {
        "visit"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, frames)?;
        self.send_value(TAG_BEGIN, VisitValue::I64(vec![frames.len() as i64]))?;
        for f in frames {
            self.send_value(TAG_NAME, VisitValue::Str(f.payload.name().to_string()))?;
            let (shape, value) = encode_payload(&f.payload);
            self.send_value(
                TAG_HEAD,
                VisitValue::I64(vec![
                    f.seq as i64,
                    f.step as i64,
                    shape[0],
                    shape[1],
                    shape[2],
                ]),
            )?;
            self.send_value(TAG_VALUE_BASE + f.payload.kind() as u32, value)?;
        }
        self.send(&Frame::bare(MsgKind::Data, TAG_END))?;
        let decoded = self.recv_delivery()?;
        let n = decoded.len();
        self.inbox.extend(decoded);
        Ok(n)
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        std::mem::take(&mut self.inbox)
    }

    fn close(&mut self) {
        // drop undrained frames and anything still queued on the link
        // pair — a departed viewer's end must not hold decoded payloads
        self.inbox.clear();
        while self.viewer.recv_timeout(Duration::from_millis(0)).is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<MonitorFrame<'static>> {
        vec![
            MonitorFrame {
                seq: 1,
                step: 4,
                payload: MonitorPayload::scalar("demix", 0.123456789),
            },
            MonitorFrame {
                seq: 2,
                step: 4,
                payload: MonitorPayload::vec3("centroid", [0.5, -1.5, 2.25]),
            },
            MonitorFrame {
                seq: 3,
                step: 4,
                payload: MonitorPayload::grid2("phi_mid", 2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            },
            MonitorFrame {
                seq: 4,
                step: 4,
                payload: MonitorPayload::grid3("phi", 2, 1, 2, vec![0.25, 0.5, 0.75, 1.0]),
            },
            MonitorFrame {
                seq: 5,
                step: 4,
                payload: MonitorPayload::frame("viz", false, 1024, vec![9, 8, 7]),
            },
        ]
    }

    #[test]
    fn every_kind_survives_the_wire() {
        let mut ep = VisitMonitor::new();
        let frames = sample_frames();
        assert_eq!(ep.deliver(&frames).unwrap(), frames.len());
        assert_eq!(ep.recv(), frames);
    }

    #[test]
    fn close_drops_undrained_frames() {
        let mut ep = VisitMonitor::new();
        ep.deliver(&sample_frames()).unwrap();
        ep.close();
        assert!(ep.recv().is_empty());
    }

    #[test]
    fn big_endian_producer_decoded_transparently() {
        let mut ep = VisitMonitor::with_order(Endianness::Big);
        let frames = sample_frames();
        assert_eq!(ep.deliver(&frames).unwrap(), frames.len());
        assert_eq!(ep.recv(), frames);
    }

    #[test]
    fn nan_grid_rides_both_orders_bit_exact() {
        let bits = [0x7fc0_0001u32, 0xffc1_2345, 0x3f80_0000];
        for order in [Endianness::Little, Endianness::Big] {
            let mut ep = VisitMonitor::with_order(order);
            let f = MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::grid2(
                    "nan",
                    3,
                    1,
                    bits.iter().map(|b| f32::from_bits(*b)).collect(),
                ),
            };
            ep.deliver(std::slice::from_ref(&f)).unwrap();
            match &ep.recv()[0].payload {
                MonitorPayload::Grid2 { data, .. } => {
                    let got: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got, bits, "{order:?}");
                }
                other => panic!("expected grid2, got {other:?}"),
            }
        }
    }
}
