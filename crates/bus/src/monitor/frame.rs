//! Typed monitored-output frames and their tagged binary codec.
//!
//! [`MonitorFrame`] is the data-plane mirror of the steering
//! [`SteerCommand`](crate::SteerCommand): where steering carries *requests
//! into* the simulation, a monitor frame carries *results out* to viewers.
//! Frames are sequence-numbered by the [`MonitorHub`](crate::MonitorHub)
//! and stamped with the simulation step they were emitted at, so any
//! viewer on any transport can order, decimate, and gap-detect the stream
//! it receives.
//!
//! The payload kinds cover the paper's output shapes: scalar series
//! points and 3-vectors (diagnostics like the demix metric or the PEPC
//! beam centroid), dense 2-D/3-D field slices (the order-parameter lattice
//! the Figure-1 pipeline ships to the isosurface stage), and encoded
//! framebuffer frames (the VizServer compressed-bitmap path). The tagged
//! binary codec here is the reference encoding — the UNICORE staged-file
//! and OGSA service adapters ride it directly; VISIT and COVISE re-express
//! payloads in their own native machinery and must round-trip losslessly
//! (floats travel as raw bits, so NaN-filled grids survive bit-exactly).

use bytes::{Buf, BufMut, BytesMut};
use std::borrow::Cow;

/// A frame that cannot be represented in the tagged binary codec. Before
/// these were typed, oversized inputs were silently truncated by the
/// `as u16`/`as u32` length casts — corrupting the stream framing for
/// every frame that followed. Encoding now refuses instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCodecError {
    /// The channel name exceeds the codec's u16 length field.
    NameTooLong {
        /// Offending name length in bytes.
        len: usize,
    },
    /// An encoded-frame payload exceeds the codec's u32 length field.
    DataTooLong {
        /// Offending payload length in bytes.
        len: usize,
    },
    /// A grid payload's data length disagrees with its declared dims
    /// (`nx * ny [* nz]`), so the decoder would mis-frame everything
    /// after it. Constructors enforce the shape; this catches payloads
    /// built by hand.
    GridShapeMismatch {
        /// `nx * ny [* nz]` as declared (`None` if the product itself
        /// overflows `usize`).
        expected: Option<usize>,
        /// Actual data length.
        len: usize,
    },
}

impl std::fmt::Display for FrameCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameCodecError::NameTooLong { len } => write!(
                f,
                "channel name of {len} bytes exceeds the codec's u16 length field"
            ),
            FrameCodecError::DataTooLong { len } => write!(
                f,
                "frame payload of {len} bytes exceeds the codec's u32 length field"
            ),
            FrameCodecError::GridShapeMismatch { expected, len } => match expected {
                Some(e) => write!(f, "grid data length {len} != declared shape {e}"),
                None => write!(f, "grid shape overflows the codec ({len} values)"),
            },
        }
    }
}

impl std::error::Error for FrameCodecError {}

/// The declared payload kind of a monitor frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum MonitorKind {
    /// One scalar series point.
    Scalar = 1,
    /// One 3-component vector sample.
    Vec3 = 2,
    /// A dense 2-D `f32` field slice.
    Grid2 = 3,
    /// A dense 3-D `f32` field.
    Grid3 = 4,
    /// An encoded framebuffer frame (viz codec output).
    Frame = 5,
}

impl MonitorKind {
    /// All kinds, in wire-code order.
    pub const ALL: [MonitorKind; 5] = [
        MonitorKind::Scalar,
        MonitorKind::Vec3,
        MonitorKind::Grid2,
        MonitorKind::Grid3,
        MonitorKind::Frame,
    ];

    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Option<MonitorKind> {
        Some(match b {
            1 => MonitorKind::Scalar,
            2 => MonitorKind::Vec3,
            3 => MonitorKind::Grid2,
            4 => MonitorKind::Grid3,
            5 => MonitorKind::Frame,
            _ => return None,
        })
    }

    /// Stable lowercase name (capability sets, handshake logs).
    pub fn name(self) -> &'static str {
        match self {
            MonitorKind::Scalar => "scalar",
            MonitorKind::Vec3 => "vec3",
            MonitorKind::Grid2 => "grid2",
            MonitorKind::Grid3 => "grid3",
            MonitorKind::Frame => "frame",
        }
    }
}

/// One typed monitored-output payload.
///
/// Names and bulk data are [`Cow`]s: the owning form (`'static`, what the
/// plain constructors build) behaves exactly as before, while the
/// `*_borrowed` constructors wrap the simulation's own buffers without
/// copying — the zero-copy publish path. A borrowed payload crossing into
/// storage calls [`into_owned`](MonitorPayload::into_owned).
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorPayload<'a> {
    /// A scalar series point (named channel).
    Scalar {
        /// Channel name.
        name: Cow<'a, str>,
        /// Sample value.
        value: f64,
    },
    /// A 3-component vector sample (named channel).
    Vec3 {
        /// Channel name.
        name: Cow<'a, str>,
        /// Sample value.
        value: [f64; 3],
    },
    /// A dense 2-D field slice, row-major (`x` fastest).
    Grid2 {
        /// Channel name.
        name: Cow<'a, str>,
        /// Width.
        nx: u32,
        /// Height.
        ny: u32,
        /// `nx * ny` values.
        data: Cow<'a, [f32]>,
    },
    /// A dense 3-D field, x-fastest layout.
    Grid3 {
        /// Channel name.
        name: Cow<'a, str>,
        /// X extent.
        nx: u32,
        /// Y extent.
        ny: u32,
        /// Z extent.
        nz: u32,
        /// `nx * ny * nz` values.
        data: Cow<'a, [f32]>,
    },
    /// An encoded framebuffer frame (the viz delta+RLE codec output).
    Frame {
        /// Channel name (render session label).
        name: Cow<'a, str>,
        /// True if decodable without history.
        keyframe: bool,
        /// Uncompressed size in bytes.
        raw_size: u32,
        /// Codec payload.
        data: Cow<'a, [u8]>,
    },
}

impl MonitorPayload<'static> {
    /// Scalar-channel constructor.
    pub fn scalar(name: &str, value: f64) -> MonitorPayload<'static> {
        MonitorPayload::Scalar {
            name: Cow::Owned(name.to_string()),
            value,
        }
    }

    /// Vector-channel constructor.
    pub fn vec3(name: &str, value: [f64; 3]) -> MonitorPayload<'static> {
        MonitorPayload::Vec3 {
            name: Cow::Owned(name.to_string()),
            value,
        }
    }

    /// 2-D slice constructor. Panics if `data.len() != nx * ny`.
    pub fn grid2(name: &str, nx: u32, ny: u32, data: Vec<f32>) -> MonitorPayload<'static> {
        assert_eq!(
            data.len(),
            nx as usize * ny as usize,
            "grid2 shape mismatch"
        );
        MonitorPayload::Grid2 {
            name: Cow::Owned(name.to_string()),
            nx,
            ny,
            data: Cow::Owned(data),
        }
    }

    /// 3-D field constructor. Panics if `data.len() != nx * ny * nz`.
    pub fn grid3(name: &str, nx: u32, ny: u32, nz: u32, data: Vec<f32>) -> MonitorPayload<'static> {
        assert_eq!(
            data.len(),
            nx as usize * ny as usize * nz as usize,
            "grid3 shape mismatch"
        );
        MonitorPayload::Grid3 {
            name: Cow::Owned(name.to_string()),
            nx,
            ny,
            nz,
            data: Cow::Owned(data),
        }
    }

    /// Encoded-frame constructor.
    pub fn frame(
        name: &str,
        keyframe: bool,
        raw_size: u32,
        data: Vec<u8>,
    ) -> MonitorPayload<'static> {
        MonitorPayload::Frame {
            name: Cow::Owned(name.to_string()),
            keyframe,
            raw_size,
            data: Cow::Owned(data),
        }
    }
}

impl<'a> MonitorPayload<'a> {
    /// Zero-copy 2-D slice constructor: borrows the producer's buffer for
    /// the duration of the publish. Panics if `data.len() != nx * ny`.
    pub fn grid2_borrowed(name: &'a str, nx: u32, ny: u32, data: &'a [f32]) -> MonitorPayload<'a> {
        assert_eq!(
            data.len(),
            nx as usize * ny as usize,
            "grid2 shape mismatch"
        );
        MonitorPayload::Grid2 {
            name: Cow::Borrowed(name),
            nx,
            ny,
            data: Cow::Borrowed(data),
        }
    }

    /// Zero-copy 3-D field constructor. Panics if
    /// `data.len() != nx * ny * nz`.
    pub fn grid3_borrowed(
        name: &'a str,
        nx: u32,
        ny: u32,
        nz: u32,
        data: &'a [f32],
    ) -> MonitorPayload<'a> {
        assert_eq!(
            data.len(),
            nx as usize * ny as usize * nz as usize,
            "grid3 shape mismatch"
        );
        MonitorPayload::Grid3 {
            name: Cow::Borrowed(name),
            nx,
            ny,
            nz,
            data: Cow::Borrowed(data),
        }
    }

    /// Zero-copy encoded-frame constructor: borrows the codec's payload.
    pub fn frame_borrowed(
        name: &'a str,
        keyframe: bool,
        raw_size: u32,
        data: &'a [u8],
    ) -> MonitorPayload<'a> {
        MonitorPayload::Frame {
            name: Cow::Borrowed(name),
            keyframe,
            raw_size,
            data: Cow::Borrowed(data),
        }
    }

    /// The payload's kind tag.
    pub fn kind(&self) -> MonitorKind {
        match self {
            MonitorPayload::Scalar { .. } => MonitorKind::Scalar,
            MonitorPayload::Vec3 { .. } => MonitorKind::Vec3,
            MonitorPayload::Grid2 { .. } => MonitorKind::Grid2,
            MonitorPayload::Grid3 { .. } => MonitorKind::Grid3,
            MonitorPayload::Frame { .. } => MonitorKind::Frame,
        }
    }

    /// Channel name.
    pub fn name(&self) -> &str {
        match self {
            MonitorPayload::Scalar { name, .. }
            | MonitorPayload::Vec3 { name, .. }
            | MonitorPayload::Grid2 { name, .. }
            | MonitorPayload::Grid3 { name, .. }
            | MonitorPayload::Frame { name, .. } => name,
        }
    }

    /// Detach from any borrowed buffers (copying them if still borrowed).
    pub fn into_owned(self) -> MonitorPayload<'static> {
        match self {
            MonitorPayload::Scalar { name, value } => MonitorPayload::Scalar {
                name: Cow::Owned(name.into_owned()),
                value,
            },
            MonitorPayload::Vec3 { name, value } => MonitorPayload::Vec3 {
                name: Cow::Owned(name.into_owned()),
                value,
            },
            MonitorPayload::Grid2 { name, nx, ny, data } => MonitorPayload::Grid2 {
                name: Cow::Owned(name.into_owned()),
                nx,
                ny,
                data: Cow::Owned(data.into_owned()),
            },
            MonitorPayload::Grid3 {
                name,
                nx,
                ny,
                nz,
                data,
            } => MonitorPayload::Grid3 {
                name: Cow::Owned(name.into_owned()),
                nx,
                ny,
                nz,
                data: Cow::Owned(data.into_owned()),
            },
            MonitorPayload::Frame {
                name,
                keyframe,
                raw_size,
                data,
            } => MonitorPayload::Frame {
                name: Cow::Owned(name.into_owned()),
                keyframe,
                raw_size,
                data: Cow::Owned(data.into_owned()),
            },
        }
    }
}

/// One sequence-numbered monitored-output frame, emitted at a simulation
/// step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorFrame<'a> {
    /// Hub-assigned monotone sequence number (global emission order).
    pub seq: u64,
    /// Simulation step the payload was sampled at.
    pub step: u64,
    /// The typed payload.
    pub payload: MonitorPayload<'a>,
}

impl<'a> MonitorFrame<'a> {
    /// Detach from any borrowed buffers (copying them if still borrowed).
    pub fn into_owned(self) -> MonitorFrame<'static> {
        MonitorFrame {
            seq: self.seq,
            step: self.step,
            payload: self.payload.into_owned(),
        }
    }

    /// Check that this frame fits the codec's length fields. `Ok(())`
    /// guarantees [`encode_bytes`](MonitorFrame::encode_bytes) succeeds.
    pub fn validate(&self) -> Result<(), FrameCodecError> {
        let name = self.payload.name();
        if name.len() > u16::MAX as usize {
            return Err(FrameCodecError::NameTooLong { len: name.len() });
        }
        match &self.payload {
            MonitorPayload::Scalar { .. } | MonitorPayload::Vec3 { .. } => Ok(()),
            MonitorPayload::Grid2 { nx, ny, data, .. } => {
                let expected = (*nx as usize).checked_mul(*ny as usize);
                if expected == Some(data.len()) {
                    Ok(())
                } else {
                    Err(FrameCodecError::GridShapeMismatch {
                        expected,
                        len: data.len(),
                    })
                }
            }
            MonitorPayload::Grid3 {
                nx, ny, nz, data, ..
            } => {
                let expected = (*nx as usize)
                    .checked_mul(*ny as usize)
                    .and_then(|p| p.checked_mul(*nz as usize));
                if expected == Some(data.len()) {
                    Ok(())
                } else {
                    Err(FrameCodecError::GridShapeMismatch {
                        expected,
                        len: data.len(),
                    })
                }
            }
            MonitorPayload::Frame { data, .. } => {
                if data.len() > u32::MAX as usize {
                    Err(FrameCodecError::DataTooLong { len: data.len() })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Encode into the tagged binary form (little-endian; floats as raw
    /// bits, so NaN payloads are preserved exactly). Refuses frames the
    /// length fields cannot represent — the old `as u16`/`as u32` casts
    /// silently wrapped, corrupting the stream framing for every frame
    /// that followed.
    pub fn encode_bytes(&self, out: &mut BytesMut) -> Result<(), FrameCodecError> {
        self.validate()?;
        out.put_u64_le(self.seq);
        out.put_u64_le(self.step);
        out.put_u8(self.payload.kind() as u8);
        let name = self.payload.name();
        out.put_u16_le(name.len() as u16);
        out.put_slice(name.as_bytes());
        match &self.payload {
            MonitorPayload::Scalar { value, .. } => out.put_u64_le(value.to_bits()),
            MonitorPayload::Vec3 { value, .. } => {
                for c in value {
                    out.put_u64_le(c.to_bits());
                }
            }
            MonitorPayload::Grid2 { nx, ny, data, .. } => {
                out.put_u32_le(*nx);
                out.put_u32_le(*ny);
                for v in data.iter() {
                    out.put_u32_le(v.to_bits());
                }
            }
            MonitorPayload::Grid3 {
                nx, ny, nz, data, ..
            } => {
                out.put_u32_le(*nx);
                out.put_u32_le(*ny);
                out.put_u32_le(*nz);
                for v in data.iter() {
                    out.put_u32_le(v.to_bits());
                }
            }
            MonitorPayload::Frame {
                keyframe,
                raw_size,
                data,
                ..
            } => {
                out.put_u8(u8::from(*keyframe));
                out.put_u32_le(*raw_size);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
        }
        Ok(())
    }

    /// Encode into a fresh byte vector, refusing unrepresentable frames.
    pub fn try_to_bytes(&self) -> Result<Vec<u8>, FrameCodecError> {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        self.encode_bytes(&mut buf)?;
        Ok(buf.to_vec())
    }

    /// Encode into a fresh byte vector. Panics on a frame the codec
    /// cannot represent — digest and test paths only handle frames that
    /// already crossed a hub, which validates on delivery; transports
    /// facing untrusted input use
    /// [`try_to_bytes`](MonitorFrame::try_to_bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.try_to_bytes()
            .expect("frame exceeds the codec's length fields")
    }

    /// Decode the tagged binary encoding, advancing `buf` past it.
    /// Returns `None` on any malformation (truncation, bad kind byte,
    /// shape/length mismatch, non-UTF-8 name). The result owns all its
    /// data; transit-only consumers use
    /// [`decode_borrowed`](MonitorFrame::decode_borrowed) instead.
    pub fn decode_bytes(buf: &mut &[u8]) -> Option<MonitorFrame<'static>> {
        MonitorFrame::decode_borrowed(buf).map(MonitorFrame::into_owned)
    }

    /// Decode the tagged binary encoding *borrowing* from `buf`: the
    /// channel name and encoded-frame payload stay slices of the input
    /// (no per-frame allocation for them — this is the fix for the old
    /// `to_vec()`-per-decode hot path). Grid values still materialize a
    /// `Vec<f32>` because `f32` lanes cannot alias an arbitrary byte
    /// buffer's alignment. Consumers that keep the frame past the
    /// buffer's life call [`into_owned`](MonitorFrame::into_owned).
    pub fn decode_borrowed<'b>(buf: &mut &'b [u8]) -> Option<MonitorFrame<'b>> {
        if buf.len() < 8 + 8 + 1 + 2 {
            return None;
        }
        let seq = buf.get_u64_le();
        let step = buf.get_u64_le();
        let kind = MonitorKind::from_byte(buf.get_u8())?;
        let name_len = buf.get_u16_le() as usize;
        if buf.len() < name_len {
            return None;
        }
        let cur: &'b [u8] = buf;
        let name = Cow::Borrowed(std::str::from_utf8(&cur[..name_len]).ok()?);
        *buf = &cur[name_len..];
        let payload = match kind {
            MonitorKind::Scalar => {
                if buf.len() < 8 {
                    return None;
                }
                MonitorPayload::Scalar {
                    name,
                    value: f64::from_bits(buf.get_u64_le()),
                }
            }
            MonitorKind::Vec3 => {
                if buf.len() < 24 {
                    return None;
                }
                MonitorPayload::Vec3 {
                    name,
                    value: [
                        f64::from_bits(buf.get_u64_le()),
                        f64::from_bits(buf.get_u64_le()),
                        f64::from_bits(buf.get_u64_le()),
                    ],
                }
            }
            MonitorKind::Grid2 => {
                if buf.len() < 8 {
                    return None;
                }
                let nx = buf.get_u32_le();
                let ny = buf.get_u32_le();
                let count = (nx as usize).checked_mul(ny as usize)?;
                let data = Cow::Owned(decode_f32s(buf, count)?);
                MonitorPayload::Grid2 { name, nx, ny, data }
            }
            MonitorKind::Grid3 => {
                if buf.len() < 12 {
                    return None;
                }
                let nx = buf.get_u32_le();
                let ny = buf.get_u32_le();
                let nz = buf.get_u32_le();
                let count = (nx as usize)
                    .checked_mul(ny as usize)?
                    .checked_mul(nz as usize)?;
                let data = Cow::Owned(decode_f32s(buf, count)?);
                MonitorPayload::Grid3 {
                    name,
                    nx,
                    ny,
                    nz,
                    data,
                }
            }
            MonitorKind::Frame => {
                if buf.len() < 9 {
                    return None;
                }
                let keyframe = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let raw_size = buf.get_u32_le();
                let len = buf.get_u32_le() as usize;
                if buf.len() < len {
                    return None;
                }
                let cur: &'b [u8] = buf;
                let data = Cow::Borrowed(&cur[..len]);
                *buf = &cur[len..];
                MonitorPayload::Frame {
                    name,
                    keyframe,
                    raw_size,
                    data,
                }
            }
        };
        Some(MonitorFrame { seq, step, payload })
    }

    /// Encoded size in bytes — what one frame costs on a byte-counted
    /// link (the harness charges deliveries at this size).
    pub fn wire_size(&self) -> usize {
        let header = 8 + 8 + 1 + 2 + self.payload.name().len();
        header
            + match &self.payload {
                MonitorPayload::Scalar { .. } => 8,
                MonitorPayload::Vec3 { .. } => 24,
                MonitorPayload::Grid2 { data, .. } => 8 + data.len() * 4,
                MonitorPayload::Grid3 { data, .. } => 12 + data.len() * 4,
                MonitorPayload::Frame { data, .. } => 9 + data.len(),
            }
    }

    /// Fold this frame's canonical bytes into a running FNV-1a 64 hash —
    /// the byte-stable digest viewers and scenario reports accumulate.
    pub fn fold_fnv(&self, mut h: u64) -> u64 {
        for b in self.to_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Decode exactly `count` bit-exact `f32`s.
fn decode_f32s(buf: &mut &[u8], count: usize) -> Option<Vec<f32>> {
    if buf.len() < count.checked_mul(4)? {
        return None;
    }
    let mut data = Vec::with_capacity(count);
    for _ in 0..count {
        data.push(f32::from_bits(buf.get_u32_le()));
    }
    Some(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<MonitorFrame<'static>> {
        vec![
            MonitorFrame {
                seq: 1,
                step: 10,
                payload: MonitorPayload::scalar("demix", 0.125),
            },
            MonitorFrame {
                seq: 2,
                step: 10,
                payload: MonitorPayload::vec3("centroid", [1.0, -2.5, 1e-12]),
            },
            MonitorFrame {
                seq: 3,
                step: 11,
                payload: MonitorPayload::grid2(
                    "phi_mid",
                    3,
                    2,
                    vec![0.0, 1.5, -2.0, 0.5, 9.0, 4.5],
                ),
            },
            MonitorFrame {
                seq: 4,
                step: 11,
                payload: MonitorPayload::grid3("phi", 2, 2, 2, (0..8).map(|i| i as f32).collect()),
            },
            MonitorFrame {
                seq: 5,
                step: 12,
                payload: MonitorPayload::frame("viz", true, 4096, vec![1, 255, 0, 7]),
            },
            MonitorFrame {
                seq: 6,
                step: 12,
                payload: MonitorPayload::scalar("", f64::NEG_INFINITY),
            },
        ]
    }

    #[test]
    fn binary_roundtrip_every_kind() {
        for f in samples() {
            let bytes = f.to_bytes();
            assert_eq!(bytes.len(), f.wire_size(), "{f:?}");
            let mut slice: &[u8] = &bytes;
            assert_eq!(MonitorFrame::decode_bytes(&mut slice), Some(f.clone()));
            assert!(slice.is_empty(), "decode must consume exactly: {f:?}");
        }
    }

    #[test]
    fn nan_grid_survives_bit_exact() {
        let bits = 0x7fc0_dead_u32;
        let f = MonitorFrame {
            seq: 9,
            step: 3,
            payload: MonitorPayload::grid2("nan", 2, 1, vec![f32::from_bits(bits), 1.0]),
        };
        let bytes = f.to_bytes();
        let mut slice: &[u8] = &bytes;
        match MonitorFrame::decode_bytes(&mut slice).unwrap().payload {
            MonitorPayload::Grid2 { data, .. } => {
                assert_eq!(data[0].to_bits(), bits);
                assert_eq!(data[1], 1.0);
            }
            other => panic!("expected grid2, got {other:?}"),
        }
    }

    #[test]
    fn truncated_binary_rejected() {
        for f in samples() {
            let bytes = f.to_bytes();
            for cut in 0..bytes.len() {
                let mut slice: &[u8] = &bytes[..cut];
                assert_eq!(MonitorFrame::decode_bytes(&mut slice), None, "cut={cut}");
            }
        }
    }

    #[test]
    fn oversized_grid_dims_rejected_without_allocation() {
        // a frame whose declared dims wildly exceed the buffer must be
        // rejected before any giant allocation is attempted
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        buf.put_u8(MonitorKind::Grid3 as u8);
        buf.put_u16_le(1);
        buf.put_slice(b"g");
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        let mut slice: &[u8] = &buf;
        assert_eq!(MonitorFrame::decode_bytes(&mut slice), None);
    }

    #[test]
    fn kind_bytes_roundtrip() {
        for k in MonitorKind::ALL {
            assert_eq!(MonitorKind::from_byte(k as u8), Some(k));
        }
        assert_eq!(MonitorKind::from_byte(0), None);
        assert_eq!(MonitorKind::from_byte(6), None);
    }

    #[test]
    fn fold_fnv_is_order_sensitive() {
        let s = samples();
        let a = s[1].fold_fnv(s[0].fold_fnv(0xcbf2_9ce4_8422_2325));
        let b = s[0].fold_fnv(s[1].fold_fnv(0xcbf2_9ce4_8422_2325));
        assert_ne!(a, b, "frame order must be part of the digest");
    }

    #[test]
    #[should_panic(expected = "grid2 shape mismatch")]
    fn grid_constructor_checks_shape() {
        let _ = MonitorPayload::grid2("bad", 3, 3, vec![0.0; 8]);
    }

    #[test]
    fn oversized_channel_name_fails_loudly_not_silently() {
        let f = MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::scalar(&"x".repeat(65536), 0.0),
        };
        assert_eq!(
            f.try_to_bytes(),
            Err(FrameCodecError::NameTooLong { len: 65536 })
        );
        let mut out = BytesMut::new();
        assert!(f.encode_bytes(&mut out).is_err());
        assert!(out.is_empty(), "a refused encode must write nothing");
        assert!(FrameCodecError::NameTooLong { len: 65536 }
            .to_string()
            .contains("exceeds the codec's u16 length field"));
    }

    #[test]
    fn mismatched_grid_shape_refused_not_misframed() {
        // bypass the constructor's assert: a hand-built grid whose data
        // disagrees with its declared dims must not encode (the decoder
        // would read nx*ny values and mis-frame everything after)
        let f = MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::Grid2 {
                name: "g".into(),
                nx: 3,
                ny: 3,
                data: vec![0.0; 8].into(),
            },
        };
        assert_eq!(
            f.try_to_bytes(),
            Err(FrameCodecError::GridShapeMismatch {
                expected: Some(9),
                len: 8
            })
        );
        // a declared shape whose product overflows the address space is
        // refused too, without attempting the multiply
        let f = MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::Grid3 {
                name: "g".into(),
                nx: u32::MAX,
                ny: u32::MAX,
                nz: u32::MAX,
                data: vec![0.0; 4].into(),
            },
        };
        assert_eq!(
            f.try_to_bytes(),
            Err(FrameCodecError::GridShapeMismatch {
                expected: None,
                len: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the codec's length fields")]
    fn infallible_to_bytes_panics_on_unrepresentable() {
        let f = MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::scalar(&"x".repeat(65536), 0.0),
        };
        let _ = f.to_bytes();
    }
}
