//! The UNICORE monitor adapter: frames travel as staged job files.
//!
//! UNICORE has no streaming channel in either direction — everything is a
//! consigned job (§2.2). Each delivery batch therefore becomes a two-task
//! AJO: a `monitor-<n>.dat` file carrying the binary-encoded frames,
//! materialized at the consumer's polling site, plus a `monitor-publish`
//! execute task depending on it. The AJO is serialized and deserialized
//! (the consignment hop), its DAG validated, and the staged file decoded
//! back into typed frames on the consumer side — the "UNICORE consumer
//! polls staged files" delivery model, which is why batching matters most
//! on this transport: one job per batch instead of one job per sample.

use crate::monitor::endpoint::{
    check_delivery, FrameChunk, MonitorCaps, MonitorEndpoint, MonitorError,
};
use crate::monitor::frame::MonitorFrame;
use bytes::{Buf, BufMut, BytesMut};
use unicore::{Ajo, Task};

/// Encode a frame batch as the staged-file payload (count + the tagged
/// binary frame codec). Refuses batches the count field or the frame
/// codec cannot represent — the old casts silently truncated.
fn encode_payload(frames: &[MonitorFrame]) -> Result<Vec<u8>, MonitorError> {
    if frames.len() > u16::MAX as usize {
        return Err(MonitorError::TooLarge {
            len: frames.len(),
            max: u16::MAX as usize,
        });
    }
    let mut buf = BytesMut::new();
    buf.put_u16_le(frames.len() as u16);
    for f in frames {
        f.encode_bytes(&mut buf)?;
    }
    Ok(buf.to_vec())
}

/// Decode the staged-file payload. `None` on any malformation.
fn decode_payload(mut buf: &[u8]) -> Option<Vec<MonitorFrame<'static>>> {
    if buf.len() < 2 {
        return None;
    }
    let count = buf.get_u16_le() as usize;
    let mut frames = Vec::with_capacity(count);
    for _ in 0..count {
        frames.push(MonitorFrame::decode_bytes(&mut buf)?);
    }
    buf.is_empty().then_some(frames)
}

/// Monitoring through UNICORE job consignment.
pub struct UnicoreMonitor {
    caps: MonitorCaps,
    origin: String,
    /// Destination Vsite name used in the job shape.
    vsite: String,
    jobs_consigned: u64,
    inbox: Vec<MonitorFrame<'static>>,
}

impl UnicoreMonitor {
    /// A fresh endpoint consigning from `origin` to a default Vsite.
    pub fn new(origin: &str) -> UnicoreMonitor {
        UnicoreMonitor {
            caps: MonitorCaps::full("unicore", 64),
            origin: origin.to_string(),
            vsite: "viewer-vsite".to_string(),
            jobs_consigned: 0,
            inbox: Vec::new(),
        }
    }

    /// Jobs consigned so far (one per delivery batch).
    pub fn jobs_consigned(&self) -> u64 {
        self.jobs_consigned
    }

    /// Build the two-task AJO around an already-encoded staged-file
    /// payload, run the consignment hop, and decode the staged file on
    /// the consumer side (shared by both delivery entry points).
    fn consign(&mut self, payload: Vec<u8>) -> Result<usize, MonitorError> {
        let file = format!("monitor-{}.dat", self.jobs_consigned);
        let mut ajo = Ajo::new(&format!("monitor-{}", self.origin), &self.vsite);
        let stage = ajo.add_task(
            Task::StageIn {
                path: file.clone(),
                data: payload,
            },
            &[],
        );
        ajo.add_task(
            Task::Execute {
                command: "monitor-publish".into(),
                args: vec![self.origin.clone()],
            },
            &[stage],
        );
        // the consignment hop: serialize, ship, deserialize, validate
        let consigned = Ajo::from_bytes(&ajo.to_bytes())
            .ok_or_else(|| MonitorError::Transport("AJO serialization hop failed".into()))?;
        let order = consigned
            .topo_order()
            .map_err(|e| MonitorError::Transport(format!("invalid monitor AJO: {e:?}")))?;
        // consumer side: poll the staged file out of the validated DAG
        let mut decoded: Option<Vec<MonitorFrame<'static>>> = None;
        for id in order {
            if let Some(Task::StageIn { path, data }) = consigned.task(id).map(|t| &t.task) {
                if *path == file {
                    decoded = decode_payload(data);
                }
            }
        }
        let decoded = decoded
            .ok_or_else(|| MonitorError::Transport("monitor file missing or malformed".into()))?;
        self.jobs_consigned += 1;
        let n = decoded.len();
        self.inbox.extend(decoded);
        Ok(n)
    }
}

impl MonitorEndpoint for UnicoreMonitor {
    fn transport(&self) -> &'static str {
        "unicore"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, frames)?;
        let payload = encode_payload(frames)?;
        self.consign(payload)
    }

    fn deliver_chunk(&mut self, chunk: &FrameChunk<'_>) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, chunk.frames())?;
        if chunk.len() > u16::MAX as usize {
            return Err(MonitorError::TooLarge {
                len: chunk.len(),
                max: u16::MAX as usize,
            });
        }
        // staged-file payload from the publish-wide shared encode cache:
        // byte-identical to encode_payload, but each frame is serialized
        // once per publish instead of once per subscriber
        let mut buf = BytesMut::new();
        buf.put_u16_le(chunk.len() as u16);
        for i in 0..chunk.len() {
            buf.put_slice(&chunk.frame_bytes(i)?);
        }
        self.consign(buf.to_vec())
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        std::mem::take(&mut self.inbox)
    }

    fn close(&mut self) {
        // UNICORE is job-per-batch: nothing in flight to tear down, but
        // staged frames the consumer never polled are dropped with it
        self.inbox.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::MonitorPayload;

    #[test]
    fn batch_rides_one_ajo() {
        let mut ep = UnicoreMonitor::new("lbm");
        let frames = vec![
            MonitorFrame {
                seq: 1,
                step: 9,
                payload: MonitorPayload::scalar("demix", 0.75),
            },
            MonitorFrame {
                seq: 2,
                step: 9,
                payload: MonitorPayload::frame("viz", true, 64, vec![4, 4, 4]),
            },
        ];
        assert_eq!(ep.deliver(&frames).unwrap(), 2);
        assert_eq!(ep.jobs_consigned(), 1, "one job per batch");
        assert_eq!(ep.recv(), frames);
    }

    #[test]
    fn per_sample_delivery_costs_one_job_each() {
        let mut ep = UnicoreMonitor::new("lbm");
        for seq in 1..=3u64 {
            ep.deliver(&[MonitorFrame {
                seq,
                step: 0,
                payload: MonitorPayload::scalar("s", seq as f64),
            }])
            .unwrap();
        }
        assert_eq!(ep.jobs_consigned(), 3);
        assert_eq!(ep.recv().len(), 3);
    }

    #[test]
    fn payload_codec_roundtrip_and_truncation() {
        let frames = vec![
            MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::vec3("v", [1.0, 2.0, 3.0]),
            },
            MonitorFrame {
                seq: 2,
                step: 0,
                payload: MonitorPayload::grid2("g", 1, 2, vec![5.0, 6.0]),
            },
        ];
        let bytes = encode_payload(&frames).unwrap();
        assert_eq!(decode_payload(&bytes), Some(frames));
        for cut in 0..bytes.len() {
            assert_eq!(decode_payload(&bytes[..cut]), None, "cut={cut}");
        }
    }

    #[test]
    fn unencodable_frame_surfaces_as_codec_error() {
        let mut ep = UnicoreMonitor::new("lbm");
        let err = ep
            .deliver(&[MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::scalar(&"n".repeat(70_000), 0.0),
            }])
            .unwrap_err();
        assert!(matches!(err, MonitorError::Codec(_)), "{err}");
        assert_eq!(ep.jobs_consigned(), 0, "no job consigned for a refusal");
    }

    #[test]
    fn close_drops_unpolled_staged_frames() {
        let mut ep = UnicoreMonitor::new("lbm");
        ep.deliver(&[MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::scalar("s", 1.0),
        }])
        .unwrap();
        ep.close();
        assert!(ep.recv().is_empty());
    }
}
