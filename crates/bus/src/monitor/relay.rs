//! The hierarchical relay fabric: ROADMAP's answer to "millions of
//! viewers on one origin".
//!
//! A flat [`MonitorHub`] pays one transport envelope per subscriber per
//! publish — linear in viewer count, hopeless past a few hundred. A
//! [`RelayHub`] breaks that linearity: it subscribes to a parent hub as
//! an *ordinary endpoint* (its [`RelayHub::uplink_endpoint`] is just
//! another [`MonitorEndpoint`]), and re-publishes the stream to its own
//! children through an inner [`MonitorHub`]. Relays compose into trees —
//! origin → region relays → edge relays → viewers — so the origin's
//! publish cost is `O(direct children)` no matter how wide the leaf tier
//! grows; that is the §3.3 vbroker fan-out taken hierarchical.
//!
//! Each tier is an independent backpressure domain:
//!
//! * **Decimation** — [`RelayPolicy::deliver_every`] thins the stream
//!   before it fans further down; keyframes are exempt, because
//!   decimating one would strand every delta stream below.
//! * **Per-child send budgets** — [`RelayPolicy::default_child_budget`]
//!   caps what any one child takes per delivery, dropping the *oldest*
//!   surplus (counted in [`MonitorStats::shed`], surfaced through
//!   [`RelayReport`]). A slow edge sheds history; it never stalls a tier.
//! * **Edge keyframe cache** — the relay remembers the latest
//!   self-contained frame per channel. A late joiner is served from that
//!   cache at attach, and the request is *not* re-raised to the origin:
//!   at scale, attach churn must terminate at the edge.
//!
//! Determinism: ingest order is uplink delivery order, children fan out
//! in attach order via [`MonitorHub::forward_batch`] — which preserves
//! the origin's sequence numbers, so a viewer's frame digest is
//! byte-identical whether it sits on the origin or three tiers down.
//!
//! [`MonitorStats::shed`]: crate::monitor::hub::MonitorStats

use crate::monitor::endpoint::{check_delivery, MonitorCaps, MonitorEndpoint, MonitorError};
use crate::monitor::frame::{MonitorFrame, MonitorPayload};
use crate::monitor::hub::{MonitorHub, MonitorStats};
use gridsteer_ckpt::{CkptError, SectionWriter, Snapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-tier forwarding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayPolicy {
    /// Forward every Nth ingested frame to the children (1 = all).
    /// Keyframes are always forwarded regardless of the rate.
    pub deliver_every: u32,
    /// Send budget applied to each child attached without an explicit
    /// one: at most this many due frames per delivery, oldest shed
    /// first. `None` = unbounded.
    pub default_child_budget: Option<usize>,
}

impl Default for RelayPolicy {
    fn default() -> RelayPolicy {
        RelayPolicy {
            deliver_every: 1,
            default_child_budget: None,
        }
    }
}

/// One relay tier's accounting, for scenario reports and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayReport {
    /// Frames accepted from the parent tier.
    pub ingested: u64,
    /// Frames re-published to the children.
    pub forwarded: u64,
    /// Frames thinned by this tier's decimation rate.
    pub decimated: u64,
    /// Frames shed by per-child send budgets (summed over children).
    pub shed: u64,
    /// Cached keyframes served to late joiners at this tier.
    pub keyframes_served: u64,
}

/// This tier's mutable core, shared with its uplink endpoint handles.
struct RelayCore {
    policy: RelayPolicy,
    /// Frames delivered by the parent but not yet pumped downstream
    /// (the uplink endpoint only enqueues — the parent's publish cost
    /// must not include this tier's fan-out).
    ingress: Vec<MonitorFrame<'static>>,
    /// Ingested frames counted against the decimation rate.
    admissible: u64,
    /// Latest self-contained frame per channel — the edge keyframe
    /// cache late joiners are served from.
    cache: BTreeMap<String, MonitorFrame<'static>>,
    ingested: u64,
    forwarded: u64,
    decimated: u64,
    keyframes_served: u64,
}

/// A relay node: parent-facing endpoint, child-facing hub. Cheap to
/// clone; all clones are one relay.
#[derive(Clone)]
pub struct RelayHub {
    core: Arc<Mutex<RelayCore>>,
    children: MonitorHub,
}

impl RelayHub {
    /// A fresh relay with the given forwarding policy and no children.
    pub fn new(policy: RelayPolicy) -> RelayHub {
        RelayHub {
            core: Arc::new(Mutex::new(RelayCore {
                policy,
                ingress: Vec::new(),
                admissible: 0,
                cache: BTreeMap::new(),
                ingested: 0,
                forwarded: 0,
                decimated: 0,
                keyframes_served: 0,
            })),
            children: MonitorHub::new(),
        }
    }

    /// The capability set a relay's uplink presents: every kind, large
    /// batches, no decimation — thinning is this tier's own policy, not
    /// the parent's.
    pub fn uplink_caps() -> MonitorCaps {
        MonitorCaps::full("relay", 1024)
    }

    /// A parent-facing endpoint for this relay. Deliveries enqueue into
    /// the relay's ingress buffer and return immediately — the parent
    /// pays an envelope, never this tier's downstream fan-out. Drain
    /// with [`RelayHub::pump`].
    pub fn uplink_endpoint(&self) -> Box<dyn MonitorEndpoint> {
        Box::new(RelayUplink {
            caps: Self::uplink_caps(),
            core: self.core.clone(),
        })
    }

    /// Attach this relay under a parent [`MonitorHub`] as subscriber
    /// `name`. Returns the negotiated capability set.
    pub fn attach_to(&self, parent: &MonitorHub, name: &str) -> MonitorCaps {
        parent.attach_endpoint(name, self.uplink_endpoint(), &Self::uplink_caps())
    }

    /// Attach this relay under a parent *relay* as child `name` — tree
    /// composition. Returns the negotiated capability set.
    pub fn attach_under(&self, parent: &RelayHub, name: &str) -> MonitorCaps {
        parent.attach_child(name, self.uplink_endpoint(), &Self::uplink_caps())
    }

    /// Attach a child subscriber (a viewer endpoint or a deeper relay's
    /// uplink) under this tier's default child budget, serving any
    /// cached keyframes immediately — the late joiner decodes from here,
    /// and no request travels upstream.
    pub fn attach_child(
        &self,
        name: &str,
        ep: Box<dyn MonitorEndpoint>,
        viewer: &MonitorCaps,
    ) -> MonitorCaps {
        let budget = self.core.lock().policy.default_child_budget;
        self.attach_child_with_budget(name, ep, viewer, budget)
    }

    /// [`attach_child`](RelayHub::attach_child) with an explicit
    /// per-delivery send budget for this child.
    pub fn attach_child_with_budget(
        &self,
        name: &str,
        ep: Box<dyn MonitorEndpoint>,
        viewer: &MonitorCaps,
        budget: Option<usize>,
    ) -> MonitorCaps {
        let negotiated = self
            .children
            .attach_endpoint_with_budget(name, ep, viewer, budget);
        let cached: Vec<MonitorFrame<'static>> = {
            let core = self.core.lock();
            core.cache.values().cloned().collect()
        };
        if !cached.is_empty() {
            let served = self.children.deliver_to(name, &cached);
            self.core.lock().keyframes_served += served;
        }
        // the cache answered the join: mark the channels served so the
        // child hub never surfaces a request this tier already satisfied
        for f in &cached {
            self.children.mark_keyframe_served(name, f.payload.name());
        }
        negotiated
    }

    /// Detach child `name` (closing its endpoint and pruning its state),
    /// returning its final delivery statistics.
    pub fn detach_child(&self, name: &str) -> Option<MonitorStats> {
        self.children.detach(name)
    }

    /// Ingest a frame batch from the parent tier *now*: update the
    /// keyframe cache, apply this tier's decimation, and fan the due
    /// frames out to the children with upstream sequence numbers
    /// preserved. Returns the number of frames forwarded. (The uplink
    /// endpoint path defers this — see [`RelayHub::pump`].)
    pub fn ingest(&self, frames: &[MonitorFrame]) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        let due = {
            let mut core = self.core.lock();
            core.admit(frames)
        };
        if !due.is_empty() {
            self.children.forward_batch(&due);
        }
        due.len() as u64
    }

    /// Drain the ingress buffer (frames the parent delivered through the
    /// uplink endpoint) and ingest it. Tiers are pumped top-down — a
    /// parent's pump fills its children's ingress buffers through their
    /// uplinks, then the children pump. Returns frames forwarded.
    pub fn pump(&self) -> u64 {
        let staged = std::mem::take(&mut self.core.lock().ingress);
        self.ingest(&staged)
    }

    /// Drain what child `name`'s viewer side has received.
    pub fn recv_child(&self, name: &str) -> Vec<MonitorFrame<'static>> {
        self.children.recv(name)
    }

    /// One child's delivery statistics.
    pub fn stats_of_child(&self, name: &str) -> Option<MonitorStats> {
        self.children.stats_of(name)
    }

    /// Number of attached children.
    pub fn children_count(&self) -> usize {
        self.children.subscribers()
    }

    /// Child handshake audit lines, in attach order.
    pub fn handshakes(&self) -> Vec<String> {
        self.children.handshakes()
    }

    /// Channels currently held in the keyframe cache.
    pub fn cached_channels(&self) -> Vec<String> {
        self.core.lock().cache.keys().cloned().collect()
    }

    /// This tier's accounting snapshot.
    pub fn report(&self) -> RelayReport {
        let core = self.core.lock();
        RelayReport {
            ingested: core.ingested,
            forwarded: core.forwarded,
            decimated: core.decimated,
            shed: self.children.stats().iter().map(|(_, s)| s.shed).sum(),
            keyframes_served: core.keyframes_served,
        }
    }

    /// Serialize this tier's state under `prefix`: `{prefix}/core` holds
    /// the forwarding policy, decimation phase, keyframe cache, unpumped
    /// ingress frames and accounting counters; `{prefix}/children` holds
    /// the child hub (names, caps, schedules — see
    /// [`MonitorHub::save_sections`]). Scenarios run several relays, so
    /// the prefix keeps their sections distinct.
    pub fn save_sections(&self, snap: &mut Snapshot, prefix: &str) {
        let mut w = SectionWriter::new();
        let core = self.core.lock();
        w.put_u32(core.policy.deliver_every);
        w.put_bool(core.policy.default_child_budget.is_some());
        w.put_u64(core.policy.default_child_budget.unwrap_or(0) as u64);
        w.put_u64(core.admissible);
        w.put_u64(core.ingested);
        w.put_u64(core.forwarded);
        w.put_u64(core.decimated);
        w.put_u64(core.keyframes_served);
        w.put_u32(core.ingress.len() as u32);
        for f in &core.ingress {
            crate::ckpt::put_frame(&mut w, f);
        }
        w.put_u32(core.cache.len() as u32);
        for f in core.cache.values() {
            crate::ckpt::put_frame(&mut w, f);
        }
        drop(core);
        snap.push(&format!("{prefix}/core"), 0, w.finish());
        self.children
            .save_sections(snap, &format!("{prefix}/children"));
    }

    /// Restore this tier from the `{prefix}/…` sections, rebuilding
    /// child endpoints through `resolver` (see
    /// [`MonitorHub::restore_sections`]). The keyframe cache comes back
    /// intact, so a late joiner attaching *after* a restore is still
    /// served at the edge without a request travelling upstream.
    pub fn restore_sections(
        &self,
        snap: &Snapshot,
        prefix: &str,
        resolver: &mut dyn FnMut(&str, &MonitorCaps) -> Box<dyn MonitorEndpoint>,
    ) -> Result<(), CkptError> {
        let section = format!("{prefix}/core");
        let mut r = snap.reader(&section)?;
        let deliver_every = r.get_u32()?;
        let has_budget = r.get_bool()?;
        let budget_raw = r.get_u64()?;
        let policy = RelayPolicy {
            deliver_every,
            default_child_budget: has_budget.then_some(budget_raw as usize),
        };
        let admissible = r.get_u64()?;
        let ingested = r.get_u64()?;
        let forwarded = r.get_u64()?;
        let decimated = r.get_u64()?;
        let keyframes_served = r.get_u64()?;
        let ningress = r.get_u32()?;
        let mut ingress = Vec::new();
        for _ in 0..ningress {
            ingress.push(crate::ckpt::get_frame(&mut r, "relay ingress frame")?);
        }
        let ncache = r.get_u32()?;
        let mut cache = BTreeMap::new();
        for _ in 0..ncache {
            let f = crate::ckpt::get_frame(&mut r, "relay cached keyframe")?;
            cache.insert(f.payload.name().to_string(), f);
        }
        r.expect_end()?;
        self.children
            .restore_sections(snap, &format!("{prefix}/children"), resolver)?;
        let mut core = self.core.lock();
        core.policy = policy;
        core.admissible = admissible;
        core.ingested = ingested;
        core.forwarded = forwarded;
        core.decimated = decimated;
        core.keyframes_served = keyframes_served;
        core.ingress = ingress;
        core.cache = cache;
        Ok(())
    }
}

impl RelayCore {
    /// Account a batch: cache self-contained frames, decimate, return
    /// what this tier forwards.
    fn admit(&mut self, frames: &[MonitorFrame]) -> Vec<MonitorFrame<'static>> {
        let every = self.policy.deliver_every.max(1) as u64;
        let mut due = Vec::with_capacity(frames.len());
        for f in frames {
            self.ingested += 1;
            // a frame a joiner can decode with no history: any non-delta
            // payload, or an encoded frame flagged as a keyframe
            let self_contained = !matches!(
                &f.payload,
                MonitorPayload::Frame {
                    keyframe: false,
                    ..
                }
            );
            if self_contained {
                self.cache
                    .insert(f.payload.name().to_string(), f.clone().into_owned());
            }
            let take = self.admissible.is_multiple_of(every);
            self.admissible += 1;
            let keyframe = matches!(&f.payload, MonitorPayload::Frame { keyframe: true, .. });
            if take || keyframe {
                due.push(f.clone().into_owned());
            } else {
                self.decimated += 1;
            }
        }
        self.forwarded += due.len() as u64;
        due
    }
}

/// The parent-facing endpoint half of a [`RelayHub`].
struct RelayUplink {
    caps: MonitorCaps,
    core: Arc<Mutex<RelayCore>>,
}

impl MonitorEndpoint for RelayUplink {
    fn transport(&self) -> &'static str {
        "relay"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, frames)?;
        self.core
            .lock()
            .ingress
            .extend(frames.iter().map(|f| f.clone().into_owned()));
        Ok(frames.len())
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        // the relay is a pass-through, not a viewer: frames leave
        // through the child hub, never back out of the uplink
        Vec::new()
    }

    fn close(&mut self) {
        // the parent detached this relay: frames it delivered but the
        // relay never pumped are gone with the uplink
        self.core.lock().ingress.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::loopback::LoopbackMonitor;

    fn scalar(v: f64) -> MonitorPayload<'static> {
        MonitorPayload::scalar("x", v)
    }

    fn viz_frame(keyframe: bool, tag: u8) -> MonitorPayload<'static> {
        MonitorPayload::frame("viz", keyframe, 64, vec![tag])
    }

    fn viewer_caps() -> MonitorCaps {
        MonitorCaps::full("viewer", 64)
    }

    #[test]
    fn two_tier_stream_matches_direct_attach_byte_for_byte() {
        let origin = MonitorHub::new();
        origin.attach_endpoint("direct", Box::new(LoopbackMonitor::new()), &viewer_caps());
        let region = RelayHub::new(RelayPolicy::default());
        region.attach_to(&origin, "region-0");
        let edge = RelayHub::new(RelayPolicy::default());
        edge.attach_under(&region, "edge-0");
        edge.attach_child("leaf", Box::new(LoopbackMonitor::new()), &viewer_caps());

        for step in 0..4 {
            origin.publish_batch(
                step,
                vec![scalar(step as f64), MonitorPayload::vec3("v", [1.0; 3])],
            );
            region.pump();
            edge.pump();
        }
        let direct = origin.recv("direct");
        let relayed = edge.recv_child("leaf");
        assert_eq!(direct.len(), 8);
        assert_eq!(
            direct, relayed,
            "sequence numbers and payloads survive two tiers"
        );
        let fold = |frames: &[MonitorFrame]| {
            frames
                .iter()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, f| f.fold_fnv(h))
        };
        assert_eq!(fold(&direct), fold(&relayed), "digests byte-identical");
    }

    #[test]
    fn tier_decimation_thins_but_never_drops_keyframes() {
        let origin = MonitorHub::new();
        let relay = RelayHub::new(RelayPolicy {
            deliver_every: 3,
            default_child_budget: None,
        });
        relay.attach_to(&origin, "r");
        relay.attach_child("leaf", Box::new(LoopbackMonitor::new()), &viewer_caps());
        for i in 0..9u64 {
            origin.publish(i, scalar(i as f64));
            // an off-phase keyframe every 3rd publish
            if i % 3 == 1 {
                origin.publish(i, viz_frame(true, i as u8));
            }
            relay.pump();
        }
        let rep = relay.report();
        assert_eq!(rep.ingested, 12);
        let got = relay.recv_child("leaf");
        let keyframes = got
            .iter()
            .filter(|f| matches!(f.payload, MonitorPayload::Frame { .. }))
            .count();
        assert_eq!(keyframes, 3, "every keyframe forwarded despite decimation");
        assert_eq!(rep.forwarded as usize, got.len());
        assert!(rep.decimated > 0, "the scalar stream was thinned");
        assert_eq!(rep.ingested, rep.forwarded + rep.decimated);
    }

    #[test]
    fn child_budget_sheds_oldest_and_is_reported() {
        let origin = MonitorHub::new();
        let relay = RelayHub::new(RelayPolicy {
            deliver_every: 1,
            default_child_budget: Some(2),
        });
        relay.attach_to(&origin, "r");
        relay.attach_child("slow", Box::new(LoopbackMonitor::new()), &viewer_caps());
        relay.attach_child_with_budget(
            "fast",
            Box::new(LoopbackMonitor::new()),
            &viewer_caps(),
            None,
        );
        origin.publish_batch(0, (0..5).map(|i| scalar(i as f64)).collect());
        relay.pump();
        assert_eq!(relay.report().shed, 3, "5 due - default budget 2");
        let slow = relay.recv_child("slow");
        assert_eq!(slow.len(), 2);
        assert_eq!(
            relay.recv_child("fast").len(),
            5,
            "explicit unbounded budget overrides the tier default"
        );
        // the *newest* two frames survived
        let fast_tail = relay.stats_of_child("slow").unwrap();
        assert_eq!(fast_tail.shed, 3);
        assert_eq!(slow[0].seq, 4);
        assert_eq!(slow[1].seq, 5);
    }

    #[test]
    fn late_joiner_served_from_edge_cache_without_reaching_origin() {
        let origin = MonitorHub::new();
        let relay = RelayHub::new(RelayPolicy::default());
        relay.attach_to(&origin, "r");
        // the relay's own attach raised the origin-side request once;
        // the producer answers it with a keyframe
        assert!(origin.take_keyframe_request("viz"));
        origin.publish(0, viz_frame(true, 1));
        origin.publish(0, MonitorPayload::grid2("g", 1, 1, vec![0.5]));
        origin.publish(1, viz_frame(false, 2)); // delta: not cacheable
        relay.pump();
        assert_eq!(relay.cached_channels(), vec!["g", "viz"]);

        // a viewer joins at the edge, long after those frames passed
        relay.attach_child("late", Box::new(LoopbackMonitor::new()), &viewer_caps());
        let got = relay.recv_child("late");
        assert_eq!(got.len(), 2, "cached keyframe + cached grid");
        assert!(got
            .iter()
            .any(|f| matches!(f.payload, MonitorPayload::Frame { keyframe: true, .. })));
        assert_eq!(relay.report().keyframes_served, 2);
        assert!(
            !origin.take_keyframe_request("viz"),
            "the join terminated at the edge — nothing re-raised upstream"
        );
    }

    #[test]
    fn uplink_delivery_only_enqueues_until_pumped() {
        let origin = MonitorHub::new();
        let relay = RelayHub::new(RelayPolicy::default());
        relay.attach_to(&origin, "r");
        relay.attach_child("leaf", Box::new(LoopbackMonitor::new()), &viewer_caps());
        origin.publish(0, scalar(1.0));
        assert!(
            relay.recv_child("leaf").is_empty(),
            "nothing fans out on the parent's publish path"
        );
        assert_eq!(relay.pump(), 1);
        assert_eq!(relay.recv_child("leaf").len(), 1);
        assert_eq!(relay.pump(), 0, "ingress drained");
    }

    #[test]
    fn restored_relay_keeps_cache_schedule_and_counters() {
        let origin = MonitorHub::new();
        let relay = RelayHub::new(RelayPolicy {
            deliver_every: 2,
            default_child_budget: Some(8),
        });
        relay.attach_to(&origin, "r");
        relay.attach_child("leaf", Box::new(LoopbackMonitor::new()), &viewer_caps());
        for i in 0..5u64 {
            origin.publish(i, scalar(i as f64));
        }
        origin.publish(5, viz_frame(true, 7));
        relay.pump();
        let _ = relay.recv_child("leaf");
        // one frame delivered through the uplink but not yet pumped —
        // the checkpoint must carry it or the restored run loses it
        origin.publish(6, scalar(6.0));

        let mut snap = gridsteer_ckpt::Snapshot::new(1, 0);
        relay.save_sections(&mut snap, "relay/r0");
        let snap = gridsteer_ckpt::Snapshot::decode(&snap.encode()).unwrap();
        let restored = RelayHub::new(RelayPolicy::default());
        restored
            .restore_sections(&snap, "relay/r0", &mut |_, _| {
                Box::new(LoopbackMonitor::new())
            })
            .unwrap();

        assert_eq!(restored.report(), relay.report());
        assert_eq!(restored.cached_channels(), relay.cached_channels());
        assert_eq!(restored.children_count(), 1);
        assert_eq!(restored.handshakes(), relay.handshakes());
        // the unpumped ingress frame survives and fans out after restore
        relay.pump();
        restored.pump();
        assert_eq!(restored.recv_child("leaf"), relay.recv_child("leaf"));
        assert_eq!(restored.report(), relay.report());
        // a late joiner is still served from the restored edge cache
        restored.attach_child("late", Box::new(LoopbackMonitor::new()), &viewer_caps());
        let got = restored.recv_child("late");
        assert_eq!(got.len(), restored.cached_channels().len());
    }

    #[test]
    fn detached_child_stops_receiving_and_frees_its_name() {
        let origin = MonitorHub::new();
        let relay = RelayHub::new(RelayPolicy::default());
        relay.attach_to(&origin, "r");
        relay.attach_child("v", Box::new(LoopbackMonitor::new()), &viewer_caps());
        origin.publish(0, scalar(1.0));
        relay.pump();
        let stats = relay.detach_child("v").unwrap();
        assert_eq!(stats.delivered, 1);
        origin.publish(1, scalar(2.0));
        relay.pump();
        assert!(relay.recv_child("v").is_empty());
        assert_eq!(relay.children_count(), 0);
    }
}
