//! The transport-agnostic monitor-endpoint contract.
//!
//! A [`MonitorEndpoint`] is the subscriber side of the data plane: the hub
//! pushes sequence-numbered [`MonitorFrame`]s *through* the endpoint's
//! middleware machinery (VISIT wire frames, OGSA service invocations,
//! COVISE data objects, UNICORE staged files, or an in-process loopback),
//! and the viewer on the far side drains the decoded frames back out with
//! [`MonitorEndpoint::recv`]. Capability negotiation is per-subscriber:
//! a viewer offers what it can consume ([`MonitorCaps`]), the endpoint
//! answers with the intersection, and the hub then filters and decimates
//! each subscriber's stream against that negotiated set — a COVISE viewer
//! that only takes grids never sees a scalar frame, and a thin desktop
//! client can ask for every Nth frame instead of all of them.

use crate::monitor::frame::{FrameCodecError, MonitorFrame, MonitorKind};
use std::cell::OnceCell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// What one side of a monitor connection can produce or consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorCaps {
    /// Transport label ("loopback", "visit", "ogsa", "covise", "unicore").
    pub transport: &'static str,
    /// Payload kinds this side can carry losslessly.
    pub kinds: BTreeSet<MonitorKind>,
    /// Largest delivery batch this side accepts.
    pub max_batch: usize,
    /// Decimation: deliver every Nth admissible frame (1 = every frame).
    /// Negotiation takes the *coarser* of the two rates — a slow viewer
    /// must never be forced to take more frames than it asked for.
    pub deliver_every: u32,
}

impl MonitorCaps {
    /// A capability set carrying every kind at full rate.
    pub fn full(transport: &'static str, max_batch: usize) -> MonitorCaps {
        MonitorCaps {
            transport,
            kinds: MonitorKind::ALL.into_iter().collect(),
            max_batch,
            deliver_every: 1,
        }
    }

    /// Request decimation to every `n`th frame (builder sugar).
    pub fn every(mut self, n: u32) -> MonitorCaps {
        self.deliver_every = n.max(1);
        self
    }

    /// The handshake result: what *both* sides can do, at the coarser
    /// delivery rate.
    pub fn intersect(&self, other: &MonitorCaps) -> MonitorCaps {
        MonitorCaps {
            transport: self.transport,
            kinds: self.kinds.intersection(&other.kinds).copied().collect(),
            max_batch: self.max_batch.min(other.max_batch),
            deliver_every: self.deliver_every.max(other.deliver_every).max(1),
        }
    }

    /// Stable one-line rendering (handshake audit lines, digests).
    pub fn render(&self) -> String {
        let kinds: Vec<&str> = self.kinds.iter().map(|k| k.name()).collect();
        format!(
            "transport={} kinds={} max_batch={} every={}",
            self.transport,
            kinds.join("+"),
            self.max_batch,
            self.deliver_every
        )
    }
}

/// Errors a monitor transport can raise while shipping frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// An empty delivery batch.
    EmptyBatch,
    /// The batch exceeds the negotiated maximum size.
    TooLarge {
        /// Requested batch length.
        len: usize,
        /// Negotiated maximum.
        max: usize,
    },
    /// A frame's payload kind is outside the negotiated capability set.
    UnsupportedKind {
        /// Offending channel.
        channel: String,
        /// The kind the transport cannot carry.
        kind: &'static str,
    },
    /// A frame does not fit the reference codec's length fields.
    Codec(FrameCodecError),
    /// The transport failed to encode/decode the frames.
    Transport(String),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::EmptyBatch => write!(f, "empty delivery batch"),
            MonitorError::TooLarge { len, max } => {
                write!(f, "batch of {len} exceeds negotiated max {max}")
            }
            MonitorError::UnsupportedKind { channel, kind } => {
                write!(f, "{channel}: kind {kind} not negotiated on this transport")
            }
            MonitorError::Codec(e) => write!(f, "codec error: {e}"),
            MonitorError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl From<FrameCodecError> for MonitorError {
    fn from(e: FrameCodecError) -> MonitorError {
        MonitorError::Codec(e)
    }
}

/// Enforce a negotiated capability set on an outgoing delivery (shared by
/// every adapter).
pub(crate) fn check_delivery(
    caps: &MonitorCaps,
    frames: &[MonitorFrame],
) -> Result<(), MonitorError> {
    if frames.is_empty() {
        return Err(MonitorError::EmptyBatch);
    }
    if frames.len() > caps.max_batch {
        return Err(MonitorError::TooLarge {
            len: frames.len(),
            max: caps.max_batch,
        });
    }
    for f in frames {
        if !caps.kinds.contains(&f.payload.kind()) {
            return Err(MonitorError::UnsupportedKind {
                channel: f.payload.name().to_string(),
                kind: f.payload.kind().name(),
            });
        }
    }
    Ok(())
}

/// One frame's canonical codec bytes, filled lazily (see [`FrameChunk`]).
pub type FrameBytesCell = OnceCell<Arc<Vec<u8>>>;

/// A delivery chunk plus a shared per-frame encode cache.
///
/// The hub builds one cache slot per published frame and hands every
/// subscriber chunk views into it: the first transport that needs a
/// frame's reference-codec bytes encodes it once via
/// [`frame_bytes`](FrameChunk::frame_bytes), and every later subscriber
/// (UNICORE staging the same file payload, OGSA hexing the same frame)
/// clones the `Arc` instead of re-encoding. Transports with their own
/// native re-expression (VISIT, COVISE) ignore the cache and read the
/// typed frames directly.
pub struct FrameChunk<'a> {
    frames: &'a [MonitorFrame<'a>],
    cache: &'a [FrameBytesCell],
}

impl<'a> FrameChunk<'a> {
    /// A chunk over `frames` backed by the parallel `cache` slice.
    /// Panics if the two lengths disagree.
    pub fn new(frames: &'a [MonitorFrame<'a>], cache: &'a [FrameBytesCell]) -> FrameChunk<'a> {
        assert_eq!(
            frames.len(),
            cache.len(),
            "encode cache must parallel the frame slice"
        );
        FrameChunk { frames, cache }
    }

    /// The typed frames in this chunk.
    pub fn frames(&self) -> &'a [MonitorFrame<'a>] {
        self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the chunk carries no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Canonical codec bytes of frame `i`: encoded at most once per
    /// publish, shared across every subscriber that asks.
    pub fn frame_bytes(&self, i: usize) -> Result<Arc<Vec<u8>>, FrameCodecError> {
        if let Some(bytes) = self.cache[i].get() {
            return Ok(bytes.clone());
        }
        let bytes = Arc::new(self.frames[i].try_to_bytes()?);
        // single-threaded under the hub mutex, so this set never races;
        // ignoring the result keeps the error path (above) alloc-free
        let _ = self.cache[i].set(bytes.clone());
        Ok(bytes)
    }
}

/// One attached monitor subscriber over some transport.
///
/// Implementations are *full round trips*: [`MonitorEndpoint::deliver`]
/// pushes frames through the genuine middleware encode/ship/decode path,
/// and [`MonitorEndpoint::recv`] drains what the viewer side decoded —
/// so the frames a viewer sees are exactly what that middleware would
/// hand a remote process.
pub trait MonitorEndpoint: Send {
    /// Transport label (matches [`MonitorCaps::transport`]).
    fn transport(&self) -> &'static str;

    /// Capability handshake: the viewer offers what it can consume, the
    /// endpoint answers with the negotiated intersection and enforces it
    /// on subsequent deliveries.
    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps;

    /// Ship a batch of frames through the transport to the viewer side.
    /// Returns the number of frames that completed the trip.
    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError>;

    /// Ship a hub chunk, with access to the publish-wide shared encode
    /// cache. Transports that serialize via the reference codec override
    /// this to reuse [`FrameChunk::frame_bytes`] instead of re-encoding;
    /// the default just forwards the typed frames to
    /// [`deliver`](MonitorEndpoint::deliver).
    fn deliver_chunk(&mut self, chunk: &FrameChunk<'_>) -> Result<usize, MonitorError> {
        self.deliver(chunk.frames())
    }

    /// Drain the frames the viewer side has decoded, in delivery order.
    fn recv(&mut self) -> Vec<MonitorFrame<'static>>;

    /// Release transport-side resources when the subscriber detaches
    /// ([`MonitorHub::detach`](crate::MonitorHub::detach)): drop
    /// undrained frames, reclaim middleware state. Default is a no-op
    /// for stateless transports.
    fn close(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::MonitorPayload;

    #[test]
    fn intersection_narrows_kinds_and_coarsens_rate() {
        let mut grids_only = MonitorCaps::full("covise", 16);
        grids_only
            .kinds
            .retain(|k| matches!(k, MonitorKind::Grid2 | MonitorKind::Grid3));
        let viewer = MonitorCaps::full("viewer", 64).every(3);
        let n = grids_only.intersect(&viewer);
        assert_eq!(n.kinds.len(), 2);
        assert!(!n.kinds.contains(&MonitorKind::Scalar));
        assert_eq!(n.max_batch, 16);
        assert_eq!(n.deliver_every, 3, "the coarser rate wins");
    }

    #[test]
    fn render_is_stable_and_ordered() {
        let caps = MonitorCaps::full("visit", 64);
        assert_eq!(
            caps.render(),
            "transport=visit kinds=scalar+vec3+grid2+grid3+frame max_batch=64 every=1"
        );
    }

    #[test]
    fn check_delivery_enforces_negotiated_set() {
        let mut caps = MonitorCaps::full("t", 2);
        caps.kinds.remove(&MonitorKind::Frame);
        let scalar = MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::scalar("x", 1.0),
        };
        let frame = MonitorFrame {
            seq: 2,
            step: 0,
            payload: MonitorPayload::frame("viz", true, 0, Vec::new()),
        };
        assert_eq!(check_delivery(&caps, &[]), Err(MonitorError::EmptyBatch));
        assert!(check_delivery(&caps, std::slice::from_ref(&scalar)).is_ok());
        assert!(matches!(
            check_delivery(&caps, &[frame]),
            Err(MonitorError::UnsupportedKind { .. })
        ));
        assert!(matches!(
            check_delivery(&caps, &[scalar.clone(), scalar.clone(), scalar]),
            Err(MonitorError::TooLarge { len: 3, max: 2 })
        ));
    }

    #[test]
    fn zero_decimation_is_clamped() {
        let caps = MonitorCaps::full("t", 8).every(0);
        assert_eq!(caps.deliver_every, 1);
        let n = caps.intersect(&MonitorCaps::full("v", 8));
        assert_eq!(n.deliver_every, 1);
    }
}
