//! The OGSA monitor adapter: frames are served through the registry.
//!
//! The endpoint hosts a [`MonitorFeedService`] in a real [`HostingEnv`],
//! publishes it in the Figure-2 [`Registry`] under the
//! [`MonitorFeedService::PORT_TYPE`] port type, and discovers it back —
//! the §2.3 client flow. Deliveries are `publishFrames` operations whose
//! arguments carry the tagged binary frame encoding as hex text (the
//! XML-ish encoding OGSI services actually used for opaque payloads);
//! the viewer side *pulls* with a `pullFrames` round trip — OGSA serves
//! monitored output on request rather than streaming it, so one invoke
//! returns everything published since the last poll.

use crate::monitor::endpoint::{
    check_delivery, FrameChunk, MonitorCaps, MonitorEndpoint, MonitorError,
};
use crate::monitor::frame::MonitorFrame;
use ogsa::{GridService, Gsh, HostingEnv, InvokeResult, Registry, SdeValue, ServiceData};
use parking_lot::Mutex;

/// Lowercase hex digits, indexed by nibble (this codec is the per-frame
/// hot path of the OGSA hop — table lookups, no formatter machinery).
const HEX: &[u8; 16] = b"0123456789abcdef";

/// Lowercase hex encoding of a frame's binary form.
fn to_hex(bytes: &[u8]) -> String {
    let mut s = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize]);
        s.push(HEX[(b & 0x0f) as usize]);
    }
    // the table emits only ASCII hex digits
    String::from_utf8(s).expect("hex is ASCII")
}

/// One hex digit's value, or `None`.
fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Inverse of [`to_hex`]. `None` on any malformation.
fn from_hex(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

/// The hosted service half: a [`GridService`] buffering published frames
/// until a viewer pulls them.
pub struct MonitorFeedService {
    origin: String,
    pending: Vec<MonitorFrame<'static>>,
    frames_served: u64,
}

impl MonitorFeedService {
    /// The port type published to the registry.
    pub const PORT_TYPE: &'static str = "gridsteer:monitor-feed";

    /// A feed service for `origin`.
    pub fn new(origin: &str) -> MonitorFeedService {
        MonitorFeedService {
            origin: origin.to_string(),
            pending: Vec::new(),
            frames_served: 0,
        }
    }
}

impl GridService for MonitorFeedService {
    fn port_types(&self) -> Vec<String> {
        vec![Self::PORT_TYPE.to_string()]
    }

    fn service_data(&self) -> ServiceData {
        let mut sd = ServiceData::new();
        sd.set("origin", SdeValue::Str(self.origin.clone()));
        sd.set("pendingFrames", SdeValue::I64(self.pending.len() as i64));
        sd.set("framesServed", SdeValue::I64(self.frames_served as i64));
        sd
    }

    fn invoke(&mut self, op: &str, args: &[SdeValue]) -> InvokeResult {
        match op {
            "publishFrames" => {
                if args.is_empty() {
                    return InvokeResult::Fault("publishFrames needs (hexFrame)+".into());
                }
                let mut decoded = Vec::with_capacity(args.len());
                for arg in args {
                    let frame = arg.as_str().and_then(from_hex).and_then(|bytes| {
                        let mut slice: &[u8] = &bytes;
                        let f = MonitorFrame::decode_bytes(&mut slice)?;
                        slice.is_empty().then_some(f)
                    });
                    match frame {
                        Some(f) => decoded.push(f),
                        None => return InvokeResult::Fault("malformed frame payload".into()),
                    }
                }
                let n = decoded.len();
                self.pending.extend(decoded);
                InvokeResult::Ok(vec![SdeValue::I64(n as i64)])
            }
            "pullFrames" => {
                let drained: Vec<String> = self
                    .pending
                    .drain(..)
                    .map(|f| to_hex(&f.to_bytes()))
                    .collect();
                self.frames_served += drained.len() as u64;
                InvokeResult::Ok(vec![SdeValue::List(drained)])
            }
            other => ogsa::service::unknown_op(other),
        }
    }
}

/// Monitoring through the OGSA hosting environment.
pub struct OgsaMonitor {
    caps: MonitorCaps,
    /// The hosting environment (locked so pulls work through `&mut self`
    /// without re-borrowing).
    env: Mutex<HostingEnv>,
    gsh: Gsh,
    inbox: Vec<MonitorFrame<'static>>,
}

impl OgsaMonitor {
    /// A fresh endpoint: host the feed service, publish it in a registry,
    /// discover it back, and bind to the handle.
    pub fn new(origin: &str) -> OgsaMonitor {
        let mut env = HostingEnv::new();
        let feed_gsh = env.host(
            "monitor-feed",
            Box::new(MonitorFeedService::new(origin)),
            None,
        );
        let reg_gsh = env.host("registry", Box::new(Registry::new()), None);
        let _ = env.invoke(
            &reg_gsh,
            "publish",
            &[
                SdeValue::Str(feed_gsh.clone()),
                SdeValue::Str(MonitorFeedService::PORT_TYPE.into()),
                SdeValue::Str(origin.into()),
            ],
        );
        // the Figure-2 client flow: discover by port type, bind the handle
        let gsh = env
            .invoke(
                &reg_gsh,
                "discover",
                &[SdeValue::Str(MonitorFeedService::PORT_TYPE.into())],
            )
            .ok()
            .and_then(|r| {
                r.first()
                    .and_then(|v| v.as_list().and_then(|l| l.first().cloned()))
            })
            .unwrap_or(feed_gsh);
        OgsaMonitor {
            caps: MonitorCaps::full("ogsa", 128),
            env: Mutex::new(env),
            gsh,
            inbox: Vec::new(),
        }
    }

    /// Invoke `publishFrames` with pre-hexed frame arguments, mapping the
    /// service result (shared by both delivery entry points).
    fn publish_hex(&mut self, args: Vec<SdeValue>) -> Result<usize, MonitorError> {
        let count = args.len();
        match self.env.lock().invoke(&self.gsh, "publishFrames", &args) {
            Ok(InvokeResult::Ok(out)) => match out.first().and_then(SdeValue::as_i64) {
                Some(n) if n as usize == count => Ok(n as usize),
                _ => Err(MonitorError::Transport(
                    "publishFrames count mismatch".into(),
                )),
            },
            Ok(InvokeResult::Fault(f)) => Err(MonitorError::Transport(f)),
            Err(e) => Err(MonitorError::Transport(format!("{e:?}"))),
        }
    }

    /// Pull everything the service has buffered (a real service round
    /// trip) into the viewer inbox.
    fn pull(&mut self) {
        let result = self.env.lock().invoke(&self.gsh, "pullFrames", &[]);
        if let Ok(InvokeResult::Ok(out)) = result {
            if let Some(hexes) = out.first().and_then(SdeValue::as_list) {
                for hex in hexes {
                    if let Some(bytes) = from_hex(hex) {
                        let mut slice: &[u8] = &bytes;
                        if let Some(f) = MonitorFrame::decode_bytes(&mut slice) {
                            self.inbox.push(f);
                        }
                    }
                }
            }
        }
    }
}

impl MonitorEndpoint for OgsaMonitor {
    fn transport(&self) -> &'static str {
        "ogsa"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, frames)?;
        let mut args: Vec<SdeValue> = Vec::with_capacity(frames.len());
        for f in frames {
            args.push(SdeValue::Str(to_hex(&f.try_to_bytes()?)));
        }
        self.publish_hex(args)
    }

    fn deliver_chunk(&mut self, chunk: &FrameChunk<'_>) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, chunk.frames())?;
        // hex each frame's canonical bytes out of the publish-wide shared
        // encode cache: same invocation arguments as deliver, but the
        // binary serialization happens once per publish, not once per
        // subscriber
        let mut args: Vec<SdeValue> = Vec::with_capacity(chunk.len());
        for i in 0..chunk.len() {
            args.push(SdeValue::Str(to_hex(&chunk.frame_bytes(i)?)));
        }
        self.publish_hex(args)
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        self.pull();
        std::mem::take(&mut self.inbox)
    }

    fn close(&mut self) {
        // final service round trip drains whatever the feed buffered for
        // this viewer, then everything undrained is dropped — the hosted
        // service must not keep accumulating for a departed subscriber
        let _ = self.env.lock().invoke(&self.gsh, "pullFrames", &[]);
        self.inbox.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::MonitorPayload;

    #[test]
    fn hex_codec_roundtrip() {
        let bytes = vec![0u8, 1, 0xab, 0xff, 0x7f];
        assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes));
        assert_eq!(from_hex("0g"), None);
        assert_eq!(from_hex("abc"), None);
    }

    #[test]
    fn frames_ride_the_service_hop() {
        let mut ep = OgsaMonitor::new("lbm-run");
        let frames = vec![
            MonitorFrame {
                seq: 7,
                step: 2,
                payload: MonitorPayload::scalar("demix", -0.5),
            },
            MonitorFrame {
                seq: 8,
                step: 2,
                payload: MonitorPayload::grid2("phi", 2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            },
        ];
        assert_eq!(ep.deliver(&frames).unwrap(), 2);
        assert_eq!(ep.recv(), frames);
        assert!(ep.recv().is_empty(), "pull drains the service buffer");
    }

    #[test]
    fn service_buffers_across_deliveries_until_pulled() {
        let mut ep = OgsaMonitor::new("x");
        for seq in 1..=3u64 {
            ep.deliver(&[MonitorFrame {
                seq,
                step: 0,
                payload: MonitorPayload::scalar("s", seq as f64),
            }])
            .unwrap();
        }
        let got = ep.recv();
        assert_eq!(got.len(), 3, "one pull returns everything pending");
        assert_eq!(got.iter().map(|f| f.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn close_drains_the_hosted_feed() {
        let mut ep = OgsaMonitor::new("x");
        ep.deliver(&[MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::scalar("s", 1.0),
        }])
        .unwrap();
        ep.close();
        assert!(ep.recv().is_empty(), "service buffer drained on close");
    }

    #[test]
    fn unencodable_frame_surfaces_as_codec_error() {
        let mut ep = OgsaMonitor::new("x");
        let err = ep
            .deliver(&[MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::scalar(&"n".repeat(70_000), 0.0),
            }])
            .unwrap_err();
        assert!(matches!(err, MonitorError::Codec(_)), "{err}");
    }

    #[test]
    fn malformed_publish_is_a_fault() {
        let mut svc = MonitorFeedService::new("x");
        let r = svc.invoke("publishFrames", &[SdeValue::Str("zz".into())]);
        assert!(matches!(r, InvokeResult::Fault(_)));
        assert!(matches!(svc.invoke("bogusOp", &[]), InvokeResult::Fault(_)));
    }
}
