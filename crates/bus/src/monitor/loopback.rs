//! The in-process loopback monitor endpoint — the reference adapter.
//!
//! No wire, no codec: delivered frames land directly in the viewer-side
//! inbox. Every other adapter must be observationally equivalent to this
//! one (same received frames for the same delivered batch); the monitor
//! proptests pin that equivalence.

use crate::monitor::endpoint::{check_delivery, MonitorCaps, MonitorEndpoint, MonitorError};
use crate::monitor::frame::MonitorFrame;

/// Direct in-process frame delivery.
pub struct LoopbackMonitor {
    caps: MonitorCaps,
    inbox: Vec<MonitorFrame<'static>>,
}

impl LoopbackMonitor {
    /// A fresh loopback endpoint.
    pub fn new() -> LoopbackMonitor {
        LoopbackMonitor {
            caps: MonitorCaps::full("loopback", 1024),
            inbox: Vec::new(),
        }
    }
}

impl Default for LoopbackMonitor {
    fn default() -> Self {
        LoopbackMonitor::new()
    }
}

impl MonitorEndpoint for LoopbackMonitor {
    fn transport(&self) -> &'static str {
        "loopback"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, frames)?;
        self.inbox
            .extend(frames.iter().map(|f| f.clone().into_owned()));
        Ok(frames.len())
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        std::mem::take(&mut self.inbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::{MonitorKind, MonitorPayload};

    #[test]
    fn deliver_recv_roundtrip() {
        let mut ep = LoopbackMonitor::new();
        let frames = vec![
            MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::scalar("x", 0.5),
            },
            MonitorFrame {
                seq: 2,
                step: 0,
                payload: MonitorPayload::grid3("g", 1, 1, 2, vec![1.0, 2.0]),
            },
        ];
        assert_eq!(ep.deliver(&frames).unwrap(), 2);
        assert_eq!(ep.recv(), frames);
        assert!(ep.recv().is_empty());
    }

    #[test]
    fn negotiated_kinds_enforced() {
        let mut ep = LoopbackMonitor::new();
        let mut viewer = MonitorCaps::full("viewer", 8);
        viewer.kinds.remove(&MonitorKind::Frame);
        let n = ep.negotiate(&viewer);
        assert!(!n.kinds.contains(&MonitorKind::Frame));
        let err = ep
            .deliver(&[MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::frame("viz", true, 0, Vec::new()),
            }])
            .unwrap_err();
        assert!(matches!(err, MonitorError::UnsupportedKind { .. }));
    }
}
