//! # The typed monitor bus — the data-plane mirror of the steering bus
//!
//! PR 4 unified the *inbound* half of the paper's interoperability story:
//! steering commands flow into one simulation over every middleware
//! through the [`SteerEndpoint`](crate::SteerEndpoint) /
//! [`SteerHub`](crate::SteerHub) API. This module is the *outbound* half —
//! monitored results flowing from the simulation out to distributed
//! viewers fast enough to meet the §4.2–4.4 reaction-time budgets:
//!
//! * [`MonitorFrame`] / [`MonitorPayload`] / [`MonitorKind`] — typed,
//!   sequence-numbered output frames: scalar series points, 3-vectors,
//!   dense 2-D/3-D field slices, and encoded framebuffer frames (the viz
//!   codec output), with a lossless tagged binary reference codec.
//! * [`MonitorCaps`] / [`MonitorEndpoint`] — the subscriber contract:
//!   per-viewer capability negotiation (which payload kinds, what batch
//!   size, what decimation rate), then frames pushed through the genuine
//!   middleware machinery and drained on the viewer side.
//! * [`MonitorHub`] — the producer-side anchor: payloads published at
//!   simulation step boundaries are stamped with monotone sequence
//!   numbers and fanned out to every subscriber in attach order, filtered
//!   and decimated per the negotiated capability set. Batched publication
//!   ships one transport envelope per chunk instead of per frame.
//! * One adapter per middleware, mirroring the steering set:
//!   [`LoopbackMonitor`] (in-process reference), [`VisitMonitor`] (real
//!   §3.2 wire frames, both byte orders), [`OgsaMonitor`] (a hosted
//!   [`MonitorFeedService`] discovered through the Figure-2 registry and
//!   *pulled* by the viewer), [`CoviseMonitor`] (grids-only shared data
//!   objects — negotiation is load-bearing), and [`UnicoreMonitor`]
//!   (batches consigned as staged-file AJOs the consumer polls).
//! * [`HubFrameSink`] — reroutes the VizServer compressed-bitmap path
//!   ([`viz::VizServerSession`]) onto the hub, so rendered frames travel
//!   the same data plane as field slices and series points.
//! * [`RelayHub`] — the hierarchical fan-out fabric: a relay subscribes
//!   to a parent hub as an ordinary endpoint and re-publishes decimated,
//!   keyframe-cached streams to its own children, composable into
//!   origin → region → edge trees where each tier applies its own
//!   backpressure and serves late joiners from its edge cache.

pub mod covise_ep;
pub mod endpoint;
pub mod frame;
pub mod hub;
pub mod loopback;
pub mod ogsa_ep;
pub mod relay;
pub mod unicore_ep;
pub mod visit_ep;
pub mod viz_sink;

pub use covise_ep::CoviseMonitor;
pub use endpoint::{FrameBytesCell, FrameChunk, MonitorCaps, MonitorEndpoint, MonitorError};
pub use frame::{FrameCodecError, MonitorFrame, MonitorKind, MonitorPayload};
pub use hub::{MonitorHub, MonitorStats};
pub use loopback::LoopbackMonitor;
pub use ogsa_ep::{MonitorFeedService, OgsaMonitor};
pub use relay::{RelayHub, RelayPolicy, RelayReport};
pub use unicore_ep::UnicoreMonitor;
pub use visit_ep::VisitMonitor;
pub use viz_sink::{publish_render, HubFrameSink};
