//! The monitor hub: one producer surface, N capability-filtered viewers.
//!
//! A [`MonitorHub`] is the session-side anchor of the data plane, the
//! mirror image of the steering [`SteerHub`](crate::SteerHub): where the
//! steering hub collects *inbound* batches from many transports and
//! commits them at a step boundary, the monitor hub takes the simulation's
//! *outbound* step-boundary output and fans it out to every attached
//! subscriber — each behind its own middleware adapter, each filtered and
//! decimated against its negotiated [`MonitorCaps`].
//!
//! Determinism contract: subscribers are fanned out in attach order,
//! sequence numbers are assigned in publish order, and decimation counts
//! admissible frames per subscriber — so for a fixed publish stream the
//! full per-subscriber delivery schedule (delivered / decimated /
//! filtered) is a pure function of the scenario, never of wall-clock or
//! thread count. That is what lets scenario digests fold received frames
//! byte-stably.

use crate::monitor::endpoint::{MonitorCaps, MonitorEndpoint};
use crate::monitor::frame::{MonitorFrame, MonitorPayload};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-subscriber delivery accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Frames that completed the middleware round trip.
    pub delivered: u64,
    /// Admissible frames skipped by the negotiated decimation rate.
    pub decimated: u64,
    /// Frames whose kind is outside the negotiated capability set.
    pub filtered: u64,
    /// Frames lost to transport errors.
    pub errors: u64,
}

struct SubEntry {
    name: String,
    ep: Box<dyn MonitorEndpoint>,
    caps: MonitorCaps,
    /// Admissible frames seen so far (drives decimation).
    admissible: u64,
    stats: MonitorStats,
}

#[derive(Default)]
struct HubState {
    subs: Vec<SubEntry>,
    next_seq: u64,
    published: u64,
    handshakes: Vec<String>,
    /// Bumped on every subscriber attach. Frame producers compare their
    /// channel's last-keyframe epoch against this, so each producer
    /// (channel) independently notices late joiners — one producer
    /// consuming the signal cannot starve another.
    attach_epoch: u64,
    /// Per-channel epoch at which the last keyframe request was granted.
    keyframe_seen: BTreeMap<String, u64>,
}

/// The shared monitor hub. Cheap to clone; all clones are one hub.
#[derive(Clone, Default)]
pub struct MonitorHub {
    state: Arc<Mutex<HubState>>,
}

impl MonitorHub {
    /// An empty hub with no subscribers.
    pub fn new() -> MonitorHub {
        MonitorHub::default()
    }

    /// Attach a subscriber endpoint as `name`, negotiating against the
    /// viewer's offered capabilities. Returns the negotiated set; the
    /// handshake is recorded on the audit log (part of scenario digests).
    pub fn attach_endpoint(
        &self,
        name: &str,
        mut ep: Box<dyn MonitorEndpoint>,
        viewer: &MonitorCaps,
    ) -> MonitorCaps {
        let negotiated = ep.negotiate(viewer);
        let mut st = self.state.lock();
        assert!(
            st.subs.iter().all(|s| s.name != name),
            "duplicate monitor subscriber name {name:?} — \
             recv()/stats_of() resolve by name, so names must be unique"
        );
        st.handshakes
            .push(format!("{name} {}", negotiated.render()));
        st.attach_epoch += 1;
        st.subs.push(SubEntry {
            name: name.to_string(),
            ep,
            caps: negotiated.clone(),
            admissible: 0,
            stats: MonitorStats::default(),
        });
        negotiated
    }

    /// Number of attached subscribers.
    pub fn subscribers(&self) -> usize {
        self.state.lock().subs.len()
    }

    /// Frames published so far.
    pub fn frames_published(&self) -> u64 {
        self.state.lock().published
    }

    /// Handshake audit lines, in attach order.
    pub fn handshakes(&self) -> Vec<String> {
        self.state.lock().handshakes.clone()
    }

    /// True once per `channel` after each new subscriber attach — frame
    /// producers with inter-frame codec state (the viz sink) consume this
    /// to emit a keyframe the late joiner can decode. The request is
    /// tracked per channel, so several producers sharing one hub each see
    /// it for their own stream.
    pub fn take_keyframe_request(&self, channel: &str) -> bool {
        let mut st = self.state.lock();
        let epoch = st.attach_epoch;
        let seen = st.keyframe_seen.entry(channel.to_string()).or_insert(0);
        if *seen < epoch {
            *seen = epoch;
            true
        } else {
            false
        }
    }

    /// Publish one payload sampled at simulation `step`: assign the next
    /// sequence number and fan the frame out immediately. Returns the
    /// assigned sequence number. This is the *per-sample* delivery mode —
    /// every subscriber pays its transport's envelope cost per frame.
    pub fn publish(&self, step: u64, payload: MonitorPayload) -> u64 {
        let mut st = self.state.lock();
        st.next_seq += 1;
        let seq = st.next_seq;
        st.published += 1;
        let frame = MonitorFrame { seq, step, payload };
        fan_out(&mut st, std::slice::from_ref(&frame));
        seq
    }

    /// Publish a whole step boundary's payloads as one batch: sequence
    /// numbers are assigned in order, then each subscriber receives its
    /// admissible frames chunked to its negotiated `max_batch` — one
    /// transport envelope per chunk instead of per frame, which is where
    /// batched fan-out wins on every middleware. Returns the number of
    /// frames published.
    pub fn publish_batch(&self, step: u64, payloads: Vec<MonitorPayload>) -> u64 {
        if payloads.is_empty() {
            return 0;
        }
        let mut st = self.state.lock();
        let frames: Vec<MonitorFrame> = payloads
            .into_iter()
            .map(|payload| {
                st.next_seq += 1;
                st.published += 1;
                MonitorFrame {
                    seq: st.next_seq,
                    step,
                    payload,
                }
            })
            .collect();
        fan_out(&mut st, &frames);
        frames.len() as u64
    }

    /// Drain the frames subscriber `name`'s viewer side has received, in
    /// delivery order. Empty if the name is unknown.
    pub fn recv(&self, name: &str) -> Vec<MonitorFrame> {
        let mut st = self.state.lock();
        st.subs
            .iter_mut()
            .find(|s| s.name == name)
            .map(|s| s.ep.recv())
            .unwrap_or_default()
    }

    /// Per-subscriber delivery statistics, in attach order.
    pub fn stats(&self) -> Vec<(String, MonitorStats)> {
        self.state
            .lock()
            .subs
            .iter()
            .map(|s| (s.name.clone(), s.stats))
            .collect()
    }

    /// One subscriber's delivery statistics.
    pub fn stats_of(&self, name: &str) -> Option<MonitorStats> {
        self.state
            .lock()
            .subs
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.stats)
    }
}

/// Fan a frame batch out to every subscriber: filter by negotiated kinds,
/// decimate by the negotiated rate, chunk to the negotiated batch size,
/// ship. Deterministic: attach order, publish order, per-subscriber
/// admissible counters.
fn fan_out(st: &mut HubState, frames: &[MonitorFrame]) {
    for sub in &mut st.subs {
        let mut due_idx: Vec<usize> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            if !sub.caps.kinds.contains(&frame.payload.kind()) {
                sub.stats.filtered += 1;
                continue;
            }
            let take = sub.admissible % sub.caps.deliver_every as u64 == 0;
            sub.admissible += 1;
            if take {
                due_idx.push(i);
            } else {
                sub.stats.decimated += 1;
            }
        }
        let max_batch = sub.caps.max_batch.max(1);
        let ship = |ep: &mut dyn MonitorEndpoint,
                    stats: &mut MonitorStats,
                    chunk: &[MonitorFrame]| match ep.deliver(chunk) {
            Ok(n) => stats.delivered += n as u64,
            Err(_) => stats.errors += chunk.len() as u64,
        };
        if due_idx.len() == frames.len() {
            // fast path (full caps, no decimation — the common case):
            // chunk the caller's slice directly, no per-subscriber clone
            // of grid/frame payloads inside the hub
            for chunk in frames.chunks(max_batch) {
                ship(sub.ep.as_mut(), &mut sub.stats, chunk);
            }
        } else {
            let due: Vec<MonitorFrame> = due_idx.into_iter().map(|i| frames[i].clone()).collect();
            for chunk in due.chunks(max_batch) {
                ship(sub.ep.as_mut(), &mut sub.stats, chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::MonitorKind;
    use crate::monitor::loopback::LoopbackMonitor;

    fn hub_with(names: &[&str]) -> MonitorHub {
        let hub = MonitorHub::new();
        for n in names {
            hub.attach_endpoint(
                n,
                Box::new(LoopbackMonitor::new()),
                &MonitorCaps::full("viewer", 64),
            );
        }
        hub
    }

    #[test]
    fn publish_assigns_monotone_seqs_and_fans_out() {
        let hub = hub_with(&["a", "b"]);
        let s1 = hub.publish(5, MonitorPayload::scalar("x", 1.0));
        let s2 = hub.publish(5, MonitorPayload::scalar("x", 2.0));
        assert!(s2 > s1);
        assert_eq!(hub.frames_published(), 2);
        for n in ["a", "b"] {
            let got = hub.recv(n);
            assert_eq!(got.len(), 2, "{n}");
            assert_eq!(got[0].seq, s1);
            assert_eq!(got[1].seq, s2);
            assert_eq!(got[0].step, 5);
        }
        assert!(hub.recv("a").is_empty(), "recv drains");
    }

    #[test]
    fn batch_publish_matches_per_sample_content() {
        let payloads = || {
            vec![
                MonitorPayload::scalar("x", 1.0),
                MonitorPayload::vec3("v", [1.0, 2.0, 3.0]),
                MonitorPayload::grid2("g", 2, 1, vec![0.5, -0.5]),
            ]
        };
        let single = hub_with(&["v"]);
        for p in payloads() {
            single.publish(7, p);
        }
        let batched = hub_with(&["v"]);
        assert_eq!(batched.publish_batch(7, payloads()), 3);
        assert_eq!(single.recv("v"), batched.recv("v"));
        assert_eq!(
            single.stats_of("v").unwrap().delivered,
            batched.stats_of("v").unwrap().delivered
        );
    }

    #[test]
    fn kind_filter_and_decimation_are_counted() {
        let hub = MonitorHub::new();
        let mut caps = MonitorCaps::full("viewer", 64).every(2);
        caps.kinds.remove(&MonitorKind::Scalar);
        hub.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
        for i in 0..6 {
            hub.publish(i, MonitorPayload::scalar("s", i as f64)); // filtered
            hub.publish(i, MonitorPayload::vec3("v", [i as f64; 3])); // admissible
        }
        let st = hub.stats_of("v").unwrap();
        assert_eq!(st.filtered, 6);
        assert_eq!(st.delivered, 3, "every 2nd of 6 admissible");
        assert_eq!(st.decimated, 3);
        let got = hub.recv("v");
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|f| f.payload.kind() == MonitorKind::Vec3));
    }

    #[test]
    fn keyframe_request_raised_on_attach_and_consumed_once_per_channel() {
        let hub = MonitorHub::new();
        assert!(!hub.take_keyframe_request("cam-a"));
        hub.attach_endpoint(
            "v",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 8),
        );
        // two independent producers each see the request for their own
        // channel — one consuming it cannot starve the other
        assert!(hub.take_keyframe_request("cam-a"));
        assert!(hub.take_keyframe_request("cam-b"));
        assert!(!hub.take_keyframe_request("cam-a"), "consumed for cam-a");
        assert!(!hub.take_keyframe_request("cam-b"), "consumed for cam-b");
        hub.attach_endpoint(
            "w",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 8),
        );
        assert!(hub.take_keyframe_request("cam-a"), "new attach re-raises");
    }

    #[test]
    #[should_panic(expected = "duplicate monitor subscriber name")]
    fn duplicate_subscriber_names_are_rejected() {
        let hub = MonitorHub::new();
        let caps = MonitorCaps::full("viewer", 8);
        hub.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
        hub.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
    }

    #[test]
    fn handshake_log_is_ordered_and_stable() {
        let hub = hub_with(&["alice", "bob"]);
        let log = hub.handshakes();
        assert_eq!(log.len(), 2);
        assert!(log[0].starts_with("alice transport=loopback"));
        assert!(log[1].starts_with("bob transport=loopback"));
    }

    #[test]
    fn unknown_subscriber_recv_is_empty() {
        let hub = hub_with(&["a"]);
        assert!(hub.recv("ghost").is_empty());
        assert_eq!(hub.stats_of("ghost"), None);
    }
}
