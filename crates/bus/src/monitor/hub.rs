//! The monitor hub: one producer surface, N capability-filtered viewers.
//!
//! A [`MonitorHub`] is the session-side anchor of the data plane, the
//! mirror image of the steering [`SteerHub`](crate::SteerHub): where the
//! steering hub collects *inbound* batches from many transports and
//! commits them at a step boundary, the monitor hub takes the simulation's
//! *outbound* step-boundary output and fans it out to every attached
//! subscriber — each behind its own middleware adapter, each filtered and
//! decimated against its negotiated [`MonitorCaps`].
//!
//! Determinism contract: subscribers are fanned out in attach order,
//! sequence numbers are assigned in publish order, and decimation counts
//! admissible frames per subscriber — so for a fixed publish stream the
//! full per-subscriber delivery schedule (delivered / decimated /
//! filtered) is a pure function of the scenario, never of wall-clock or
//! thread count. That is what lets scenario digests fold received frames
//! byte-stably.

use crate::monitor::endpoint::{FrameBytesCell, FrameChunk, MonitorCaps, MonitorEndpoint};
use crate::monitor::frame::{MonitorFrame, MonitorPayload};
use gridsteer_ckpt::{CkptError, SectionWriter, Snapshot};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Per-subscriber delivery accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Frames that completed the middleware round trip.
    pub delivered: u64,
    /// Admissible frames skipped by the negotiated decimation rate.
    pub decimated: u64,
    /// Frames whose kind is outside the negotiated capability set.
    pub filtered: u64,
    /// Frames lost to transport errors.
    pub errors: u64,
    /// Oldest due frames dropped by the per-subscriber send budget
    /// (backpressure: a slow child sheds history, never blocks the hub).
    pub shed: u64,
}

struct SubEntry {
    name: String,
    ep: Box<dyn MonitorEndpoint>,
    caps: MonitorCaps,
    /// Admissible frames seen so far (drives decimation).
    admissible: u64,
    /// Per-delivery send budget: at most this many due frames ship per
    /// fan-out call; the *oldest* surplus is dropped (and counted in
    /// [`MonitorStats::shed`]). `None` = unbounded.
    budget: Option<usize>,
    /// Channels this subscriber has been keyframed on. Attach starts
    /// empty, so every frame producer sees a pending request for its own
    /// channel; the whole set leaves with the subscriber on detach —
    /// keyframe state can no longer outlive (or leak across) viewers.
    keyframes_served: BTreeSet<String>,
    stats: MonitorStats,
}

#[derive(Default)]
struct HubState {
    subs: Vec<SubEntry>,
    next_seq: u64,
    published: u64,
    handshakes: Vec<String>,
}

/// The shared monitor hub. Cheap to clone; all clones are one hub.
#[derive(Clone, Default)]
pub struct MonitorHub {
    state: Arc<Mutex<HubState>>,
}

impl MonitorHub {
    /// An empty hub with no subscribers.
    pub fn new() -> MonitorHub {
        MonitorHub::default()
    }

    /// Attach a subscriber endpoint as `name`, negotiating against the
    /// viewer's offered capabilities. Returns the negotiated set; the
    /// handshake is recorded on the audit log (part of scenario digests).
    pub fn attach_endpoint(
        &self,
        name: &str,
        ep: Box<dyn MonitorEndpoint>,
        viewer: &MonitorCaps,
    ) -> MonitorCaps {
        self.attach_endpoint_with_budget(name, ep, viewer, None)
    }

    /// [`attach_endpoint`](MonitorHub::attach_endpoint) with a per-delivery
    /// send budget: at most `budget` due frames ship to this subscriber
    /// per fan-out call, dropping the oldest surplus (counted in
    /// [`MonitorStats::shed`]). This is the hub-side backpressure valve
    /// relay tiers lean on.
    pub fn attach_endpoint_with_budget(
        &self,
        name: &str,
        mut ep: Box<dyn MonitorEndpoint>,
        viewer: &MonitorCaps,
        budget: Option<usize>,
    ) -> MonitorCaps {
        let negotiated = ep.negotiate(viewer);
        let mut st = self.state.lock();
        assert!(
            st.subs.iter().all(|s| s.name != name),
            "duplicate monitor subscriber name {name:?} — \
             recv()/stats_of() resolve by name, so names must be unique"
        );
        st.handshakes
            .push(format!("{name} {}", negotiated.render()));
        st.subs.push(SubEntry {
            name: name.to_string(),
            ep,
            caps: negotiated.clone(),
            admissible: 0,
            budget,
            keyframes_served: BTreeSet::new(),
            stats: MonitorStats::default(),
        });
        negotiated
    }

    /// Detach subscriber `name`: the endpoint's transport is closed, the
    /// entry (including its per-channel keyframe state) is dropped, and a
    /// `detach` line joins the handshake audit log. Returns the final
    /// delivery statistics, or `None` if the name is unknown. Frames
    /// published after detach never reach the departed endpoint — before
    /// this existed, a viewer that left kept costing fan-out work and its
    /// keyframe bookkeeping grew without bound.
    pub fn detach(&self, name: &str) -> Option<MonitorStats> {
        let mut st = self.state.lock();
        let idx = st.subs.iter().position(|s| s.name == name)?;
        let mut sub = st.subs.remove(idx);
        sub.ep.close();
        st.handshakes.push(format!("{name} detach"));
        Some(sub.stats)
    }

    /// Number of attached subscribers.
    pub fn subscribers(&self) -> usize {
        self.state.lock().subs.len()
    }

    /// Frames published so far.
    pub fn frames_published(&self) -> u64 {
        self.state.lock().published
    }

    /// Handshake audit lines, in attach order.
    pub fn handshakes(&self) -> Vec<String> {
        self.state.lock().handshakes.clone()
    }

    /// True once per `channel` after each new subscriber attach — frame
    /// producers with inter-frame codec state (the viz sink) consume this
    /// to emit a keyframe the late joiner can decode. The request is
    /// tracked per channel *per subscriber* (granting it marks every
    /// current subscriber served on that channel), so several producers
    /// sharing one hub each see it for their own stream, and detaching a
    /// subscriber prunes its share of the state.
    pub fn take_keyframe_request(&self, channel: &str) -> bool {
        let mut st = self.state.lock();
        let mut pending = false;
        for sub in &mut st.subs {
            if sub.keyframes_served.insert(channel.to_string()) {
                pending = true;
            }
        }
        pending
    }

    /// Mark subscriber `name` as already keyframed on `channel` without a
    /// producer round trip — relay tiers use this after serving a cached
    /// keyframe directly, so the request is not re-raised upstream.
    pub fn mark_keyframe_served(&self, name: &str, channel: &str) {
        let mut st = self.state.lock();
        if let Some(sub) = st.subs.iter_mut().find(|s| s.name == name) {
            sub.keyframes_served.insert(channel.to_string());
        }
    }

    /// Publish one payload sampled at simulation `step`: assign the next
    /// sequence number and fan the frame out immediately. Returns the
    /// assigned sequence number. This is the *per-sample* delivery mode —
    /// every subscriber pays its transport's envelope cost per frame.
    pub fn publish(&self, step: u64, payload: MonitorPayload) -> u64 {
        let mut st = self.state.lock();
        st.next_seq += 1;
        let seq = st.next_seq;
        st.published += 1;
        let frame = MonitorFrame { seq, step, payload };
        fan_out(&mut st, std::slice::from_ref(&frame));
        seq
    }

    /// Publish a whole step boundary's payloads as one batch: sequence
    /// numbers are assigned in order, then each subscriber receives its
    /// admissible frames chunked to its negotiated `max_batch` — one
    /// transport envelope per chunk instead of per frame, which is where
    /// batched fan-out wins on every middleware. Returns the number of
    /// frames published.
    pub fn publish_batch(&self, step: u64, payloads: Vec<MonitorPayload>) -> u64 {
        if payloads.is_empty() {
            return 0;
        }
        let mut st = self.state.lock();
        let frames: Vec<MonitorFrame> = payloads
            .into_iter()
            .map(|payload| {
                st.next_seq += 1;
                st.published += 1;
                MonitorFrame {
                    seq: st.next_seq,
                    step,
                    payload,
                }
            })
            .collect();
        fan_out(&mut st, &frames);
        frames.len() as u64
    }

    /// Fan out frames that already carry sequence numbers, *without*
    /// reassigning them. This is the relay-tier path: a [`RelayHub`]
    /// re-publishes upstream frames to its children and the origin's
    /// sequence numbers must survive the whole tree, or per-viewer
    /// digests would depend on which tier served them. Returns the
    /// number of frames forwarded.
    ///
    /// [`RelayHub`]: crate::monitor::relay::RelayHub
    pub fn forward_batch(&self, frames: &[MonitorFrame]) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        let mut st = self.state.lock();
        st.published += frames.len() as u64;
        fan_out(&mut st, frames);
        frames.len() as u64
    }

    /// Deliver frames to *one* subscriber directly, bypassing decimation
    /// and send budgets (kind filtering and batch chunking still apply —
    /// the transport's negotiated envelope is real). Relay tiers use this
    /// to serve cached keyframes to a late joiner without disturbing any
    /// sibling's stream. Returns the number of frames delivered.
    pub fn deliver_to(&self, name: &str, frames: &[MonitorFrame]) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        let mut st = self.state.lock();
        let Some(sub) = st.subs.iter_mut().find(|s| s.name == name) else {
            return 0;
        };
        let due: Vec<MonitorFrame> = frames
            .iter()
            .filter(|f| sub.caps.kinds.contains(&f.payload.kind()))
            .cloned()
            .collect();
        let mut delivered = 0;
        for chunk in due.chunks(sub.caps.max_batch.max(1)) {
            match sub.ep.deliver(chunk) {
                Ok(n) => {
                    sub.stats.delivered += n as u64;
                    delivered += n as u64;
                }
                Err(_) => sub.stats.errors += chunk.len() as u64,
            }
        }
        delivered
    }

    /// Drain the frames subscriber `name`'s viewer side has received, in
    /// delivery order. Empty if the name is unknown.
    pub fn recv(&self, name: &str) -> Vec<MonitorFrame<'static>> {
        let mut st = self.state.lock();
        st.subs
            .iter_mut()
            .find(|s| s.name == name)
            .map(|s| s.ep.recv())
            .unwrap_or_default()
    }

    /// Per-subscriber delivery statistics, in attach order.
    pub fn stats(&self) -> Vec<(String, MonitorStats)> {
        self.state
            .lock()
            .subs
            .iter()
            .map(|s| (s.name.clone(), s.stats))
            .collect()
    }

    /// One subscriber's delivery statistics.
    pub fn stats_of(&self, name: &str) -> Option<MonitorStats> {
        self.state
            .lock()
            .subs
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.stats)
    }

    /// Serialize the full hub state — sequence counters, handshake audit
    /// log, and every subscriber's negotiated caps, decimation phase,
    /// send budget, keyframe bookkeeping and delivery statistics — into
    /// snapshot section `name`. Endpoint objects themselves are
    /// process-local middleware handles and are not serialized; restore
    /// rebuilds them through a resolver.
    pub fn save_sections(&self, snap: &mut Snapshot, name: &str) {
        let mut w = SectionWriter::new();
        let st = self.state.lock();
        w.put_u64(st.next_seq);
        w.put_u64(st.published);
        w.put_u32(st.handshakes.len() as u32);
        for h in &st.handshakes {
            w.put_str(h);
        }
        w.put_u32(st.subs.len() as u32);
        for sub in &st.subs {
            w.put_str(&sub.name);
            crate::ckpt::put_caps(&mut w, &sub.caps);
            w.put_u64(sub.admissible);
            w.put_bool(sub.budget.is_some());
            w.put_u64(sub.budget.unwrap_or(0) as u64);
            w.put_u32(sub.keyframes_served.len() as u32);
            for c in &sub.keyframes_served {
                w.put_str(c);
            }
            let s = &sub.stats;
            for v in [s.delivered, s.decimated, s.filtered, s.errors, s.shed] {
                w.put_u64(v);
            }
        }
        drop(st);
        snap.push(name, 0, w.finish());
    }

    /// Restore hub state from snapshot section `name`. The `resolver`
    /// builds a fresh endpoint per `(subscriber name, saved caps)`; the
    /// endpoint negotiates against the saved caps and the *saved* set
    /// then stands as the subscriber's negotiated result. Restore pushes
    /// no new handshake lines and perturbs no counters, so a restored
    /// hub's delivery schedule (decimation phase, sequence numbers,
    /// per-subscriber stats) continues exactly where the checkpoint cut
    /// it — that is what keeps a crashed-and-restored scenario digest
    /// byte-identical to an uncrashed one.
    pub fn restore_sections(
        &self,
        snap: &Snapshot,
        name: &str,
        resolver: &mut dyn FnMut(&str, &MonitorCaps) -> Box<dyn MonitorEndpoint>,
    ) -> Result<(), CkptError> {
        let mut r = snap.reader(name)?;
        let next_seq = r.get_u64()?;
        let published = r.get_u64()?;
        let nhs = r.get_u32()?;
        let mut handshakes = Vec::new();
        for _ in 0..nhs {
            handshakes.push(r.get_str()?);
        }
        let nsubs = r.get_u32()?;
        let mut subs = Vec::new();
        for _ in 0..nsubs {
            let sub_name = r.get_str()?;
            let caps = crate::ckpt::get_caps(&mut r)?;
            let admissible = r.get_u64()?;
            let has_budget = r.get_bool()?;
            let budget_raw = r.get_u64()?;
            let nkf = r.get_u32()?;
            let mut keyframes_served = BTreeSet::new();
            for _ in 0..nkf {
                keyframes_served.insert(r.get_str()?);
            }
            let stats = MonitorStats {
                delivered: r.get_u64()?,
                decimated: r.get_u64()?,
                filtered: r.get_u64()?,
                errors: r.get_u64()?,
                shed: r.get_u64()?,
            };
            let mut ep = resolver(&sub_name, &caps);
            ep.negotiate(&caps);
            subs.push(SubEntry {
                name: sub_name,
                ep,
                caps,
                admissible,
                budget: has_budget.then_some(budget_raw as usize),
                keyframes_served,
                stats,
            });
        }
        r.expect_end()?;
        let mut st = self.state.lock();
        st.subs = subs;
        st.next_seq = next_seq;
        st.published = published;
        st.handshakes = handshakes;
        Ok(())
    }
}

/// Fan a frame batch out to every subscriber: filter by negotiated kinds,
/// decimate by the negotiated rate, shed the oldest frames beyond the
/// subscriber's send budget, chunk to the negotiated batch size, ship.
/// Deterministic: attach order, publish order, per-subscriber admissible
/// counters.
fn fan_out(st: &mut HubState, frames: &[MonitorFrame]) {
    // One shared encode cache per publish, parallel to `frames`: the
    // first subscriber whose transport needs a frame's canonical bytes
    // pays the encode, every later subscriber ships the same shared
    // buffer — encode-once fan-out instead of once per subscriber.
    // (fan_out runs under the hub mutex, so the OnceCell is race-free.)
    let cache: Vec<FrameBytesCell> = (0..frames.len()).map(|_| FrameBytesCell::new()).collect();
    for sub in &mut st.subs {
        let mut due_idx: Vec<usize> = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            if !sub.caps.kinds.contains(&frame.payload.kind()) {
                sub.stats.filtered += 1;
                continue;
            }
            let take = sub.admissible % sub.caps.deliver_every as u64 == 0;
            sub.admissible += 1;
            if take {
                due_idx.push(i);
            } else {
                sub.stats.decimated += 1;
            }
        }
        if let Some(budget) = sub.budget {
            if due_idx.len() > budget {
                // drop-oldest: the newest frames are the ones a live
                // viewer can still use
                let surplus = due_idx.len() - budget;
                sub.stats.shed += surplus as u64;
                due_idx.drain(..surplus);
            }
        }
        let max_batch = sub.caps.max_batch.max(1);
        if due_idx.len() == frames.len() {
            // fast path (full caps, no decimation — the common case):
            // chunk the caller's slice directly, no per-subscriber clone
            // of grid/frame payloads inside the hub, and hand each chunk
            // the matching slice of the shared encode cache
            for (chunk, ccache) in frames.chunks(max_batch).zip(cache.chunks(max_batch)) {
                match sub.ep.deliver_chunk(&FrameChunk::new(chunk, ccache)) {
                    Ok(n) => sub.stats.delivered += n as u64,
                    Err(_) => sub.stats.errors += chunk.len() as u64,
                }
            }
        } else {
            let due: Vec<MonitorFrame> = due_idx.into_iter().map(|i| frames[i].clone()).collect();
            for chunk in due.chunks(max_batch) {
                match sub.ep.deliver(chunk) {
                    Ok(n) => sub.stats.delivered += n as u64,
                    Err(_) => sub.stats.errors += chunk.len() as u64,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::frame::MonitorKind;
    use crate::monitor::loopback::LoopbackMonitor;

    fn hub_with(names: &[&str]) -> MonitorHub {
        let hub = MonitorHub::new();
        for n in names {
            hub.attach_endpoint(
                n,
                Box::new(LoopbackMonitor::new()),
                &MonitorCaps::full("viewer", 64),
            );
        }
        hub
    }

    #[test]
    fn publish_assigns_monotone_seqs_and_fans_out() {
        let hub = hub_with(&["a", "b"]);
        let s1 = hub.publish(5, MonitorPayload::scalar("x", 1.0));
        let s2 = hub.publish(5, MonitorPayload::scalar("x", 2.0));
        assert!(s2 > s1);
        assert_eq!(hub.frames_published(), 2);
        for n in ["a", "b"] {
            let got = hub.recv(n);
            assert_eq!(got.len(), 2, "{n}");
            assert_eq!(got[0].seq, s1);
            assert_eq!(got[1].seq, s2);
            assert_eq!(got[0].step, 5);
        }
        assert!(hub.recv("a").is_empty(), "recv drains");
    }

    #[test]
    fn batch_publish_matches_per_sample_content() {
        let payloads = || {
            vec![
                MonitorPayload::scalar("x", 1.0),
                MonitorPayload::vec3("v", [1.0, 2.0, 3.0]),
                MonitorPayload::grid2("g", 2, 1, vec![0.5, -0.5]),
            ]
        };
        let single = hub_with(&["v"]);
        for p in payloads() {
            single.publish(7, p);
        }
        let batched = hub_with(&["v"]);
        assert_eq!(batched.publish_batch(7, payloads()), 3);
        assert_eq!(single.recv("v"), batched.recv("v"));
        assert_eq!(
            single.stats_of("v").unwrap().delivered,
            batched.stats_of("v").unwrap().delivered
        );
    }

    #[test]
    fn kind_filter_and_decimation_are_counted() {
        let hub = MonitorHub::new();
        let mut caps = MonitorCaps::full("viewer", 64).every(2);
        caps.kinds.remove(&MonitorKind::Scalar);
        hub.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
        for i in 0..6 {
            hub.publish(i, MonitorPayload::scalar("s", i as f64)); // filtered
            hub.publish(i, MonitorPayload::vec3("v", [i as f64; 3])); // admissible
        }
        let st = hub.stats_of("v").unwrap();
        assert_eq!(st.filtered, 6);
        assert_eq!(st.delivered, 3, "every 2nd of 6 admissible");
        assert_eq!(st.decimated, 3);
        let got = hub.recv("v");
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|f| f.payload.kind() == MonitorKind::Vec3));
    }

    #[test]
    fn keyframe_request_raised_on_attach_and_consumed_once_per_channel() {
        let hub = MonitorHub::new();
        assert!(!hub.take_keyframe_request("cam-a"));
        hub.attach_endpoint(
            "v",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 8),
        );
        // two independent producers each see the request for their own
        // channel — one consuming it cannot starve the other
        assert!(hub.take_keyframe_request("cam-a"));
        assert!(hub.take_keyframe_request("cam-b"));
        assert!(!hub.take_keyframe_request("cam-a"), "consumed for cam-a");
        assert!(!hub.take_keyframe_request("cam-b"), "consumed for cam-b");
        hub.attach_endpoint(
            "w",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 8),
        );
        assert!(hub.take_keyframe_request("cam-a"), "new attach re-raises");
    }

    #[test]
    #[should_panic(expected = "duplicate monitor subscriber name")]
    fn duplicate_subscriber_names_are_rejected() {
        let hub = MonitorHub::new();
        let caps = MonitorCaps::full("viewer", 8);
        hub.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
        hub.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
    }

    #[test]
    fn handshake_log_is_ordered_and_stable() {
        let hub = hub_with(&["alice", "bob"]);
        let log = hub.handshakes();
        assert_eq!(log.len(), 2);
        assert!(log[0].starts_with("alice transport=loopback"));
        assert!(log[1].starts_with("bob transport=loopback"));
    }

    #[test]
    fn unknown_subscriber_recv_is_empty() {
        let hub = hub_with(&["a"]);
        assert!(hub.recv("ghost").is_empty());
        assert_eq!(hub.stats_of("ghost"), None);
    }

    #[test]
    fn detach_stops_deliveries_and_returns_final_stats() {
        let hub = hub_with(&["a", "b"]);
        hub.publish(1, MonitorPayload::scalar("x", 1.0));
        let final_stats = hub.detach("a").expect("a is attached");
        assert_eq!(final_stats.delivered, 1);
        assert_eq!(hub.subscribers(), 1);
        assert_eq!(hub.stats_of("a"), None, "entry is gone");
        hub.publish(2, MonitorPayload::scalar("x", 2.0));
        assert!(
            hub.recv("a").is_empty(),
            "no frames reach a departed viewer"
        );
        assert_eq!(hub.stats_of("b").unwrap().delivered, 2, "b unaffected");
        assert_eq!(hub.detach("a"), None, "double detach is a miss");
        let log = hub.handshakes();
        assert_eq!(log.last().unwrap(), "a detach");
    }

    #[test]
    fn detach_prunes_keyframe_state_and_frees_the_name() {
        let hub = hub_with(&["v"]);
        assert!(hub.take_keyframe_request("cam"));
        assert!(!hub.take_keyframe_request("cam"));
        hub.detach("v");
        assert!(
            !hub.take_keyframe_request("cam"),
            "no subscribers, no pending requests"
        );
        // the name is reusable, and the rejoin starts with a clean
        // keyframe slate — exactly what a late joiner needs
        hub.attach_endpoint(
            "v",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 8),
        );
        assert!(hub.take_keyframe_request("cam"), "rejoin re-raises");
    }

    #[test]
    fn send_budget_sheds_oldest_frames() {
        let hub = MonitorHub::new();
        hub.attach_endpoint_with_budget(
            "slow",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 64),
            Some(2),
        );
        let payloads: Vec<MonitorPayload> = (0..5)
            .map(|i| MonitorPayload::scalar("x", i as f64))
            .collect();
        hub.publish_batch(3, payloads);
        let st = hub.stats_of("slow").unwrap();
        assert_eq!(st.shed, 3, "5 due - budget 2");
        assert_eq!(st.delivered, 2);
        let got = hub.recv("slow");
        assert_eq!(got.len(), 2);
        // the two *newest* frames survive
        assert_eq!(got[0].seq, 4);
        assert_eq!(got[1].seq, 5);
    }

    #[test]
    fn forward_batch_preserves_upstream_seqs() {
        let origin = hub_with(&["direct"]);
        origin.publish_batch(
            9,
            vec![
                MonitorPayload::scalar("x", 1.0),
                MonitorPayload::scalar("x", 2.0),
            ],
        );
        let upstream = origin.recv("direct");
        let relay = hub_with(&["child"]);
        assert_eq!(relay.forward_batch(&upstream), 2);
        let got = relay.recv("child");
        assert_eq!(got, upstream, "seq numbers survive the relay tier");
        assert_eq!(relay.frames_published(), 2);
    }

    #[test]
    fn restored_hub_continues_the_delivery_schedule_exactly() {
        // an uninterrupted hub is the reference
        let reference = MonitorHub::new();
        let caps = MonitorCaps::full("viewer", 64).every(2);
        reference.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
        let publish_phase = |hub: &MonitorHub, base: u64| {
            for i in 0..5u64 {
                hub.publish(base + i, MonitorPayload::scalar("x", (base + i) as f64));
            }
        };
        publish_phase(&reference, 0);

        // the checkpointed hub publishes the same first phase, snapshots,
        // restores into a *fresh* hub, then publishes the second phase
        let before = MonitorHub::new();
        before.attach_endpoint("v", Box::new(LoopbackMonitor::new()), &caps);
        publish_phase(&before, 0);
        assert!(before.take_keyframe_request("x"), "first request pends");
        let drained_before = before.recv("v");
        let mut snap = Snapshot::new(1, 0);
        before.save_sections(&mut snap, "mon");
        let snap = Snapshot::decode(&snap.encode()).unwrap();
        let restored = MonitorHub::new();
        restored
            .restore_sections(&snap, "mon", &mut |_, _| Box::new(LoopbackMonitor::new()))
            .unwrap();

        publish_phase(&reference, 5);
        publish_phase(&restored, 5);
        assert_eq!(restored.handshakes(), reference.handshakes());
        assert_eq!(restored.stats_of("v"), reference.stats_of("v"));
        assert_eq!(restored.frames_published(), reference.frames_published());
        // decimation phase survived: drained frames concatenate to the
        // reference's uninterrupted stream
        let mut all = drained_before;
        all.extend(restored.recv("v"));
        assert_eq!(all, reference.recv("v"));
        assert!(
            !restored.take_keyframe_request("x"),
            "restored subscriber keeps its served-keyframe state"
        );
    }

    #[test]
    fn restore_rejects_bad_caps_kind_byte() {
        let hub = hub_with(&["v"]);
        let mut snap = Snapshot::new(1, 0);
        hub.save_sections(&mut snap, "mon");
        // poison every byte in turn; decode must fail typed, never panic
        let body = snap.section("mon").unwrap().to_vec();
        let mut saw_err = false;
        for i in 0..body.len() {
            let mut poisoned = body.clone();
            poisoned[i] = 0xff;
            let mut s = Snapshot::new(1, 0);
            s.push("mon", 0, poisoned);
            let fresh = MonitorHub::new();
            if fresh
                .restore_sections(&s, "mon", &mut |_, _| Box::new(LoopbackMonitor::new()))
                .is_err()
            {
                saw_err = true;
            }
        }
        assert!(saw_err, "no poisoned byte produced a typed error");
    }

    #[test]
    fn deliver_to_targets_one_subscriber_and_respects_kinds() {
        let hub = MonitorHub::new();
        hub.attach_endpoint(
            "a",
            Box::new(LoopbackMonitor::new()),
            &MonitorCaps::full("viewer", 64),
        );
        let mut grids_only = MonitorCaps::full("viewer", 64);
        grids_only.kinds.retain(|k| *k == MonitorKind::Grid2);
        hub.attach_endpoint("b", Box::new(LoopbackMonitor::new()), &grids_only);
        let frames = vec![
            MonitorFrame {
                seq: 7,
                step: 1,
                payload: MonitorPayload::scalar("x", 1.0),
            },
            MonitorFrame {
                seq: 8,
                step: 1,
                payload: MonitorPayload::grid2("g", 1, 1, vec![0.5]),
            },
        ];
        assert_eq!(hub.deliver_to("b", &frames), 1, "scalar filtered for b");
        assert!(hub.recv("a").is_empty(), "a untouched by targeted delivery");
        let got = hub.recv("b");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 8);
        assert_eq!(hub.deliver_to("ghost", &frames), 0);
    }
}
