//! The COVISE monitor adapter: frames travel as shared data objects, and
//! every delivery fires the viewer's module network.
//!
//! COVISE's data plane is object-based — "scientific data is handled as
//! data objects … they represent grids on which dependent data is
//! defined" (§4.5) — so this is the transport where monitor capability
//! negotiation does real work: the adapter's capability set carries only
//! [`MonitorKind::Grid2`] and [`MonitorKind::Grid3`] (the shapes a COVISE
//! module network consumes) and *excludes* scalars, vectors, and encoded
//! framebuffer frames. A hub that negotiates first discovers this and
//! never offers such frames to a COVISE viewer — they are counted as
//! filtered, exactly like a scalar steer was re-routed in the inbound
//! direction.
//!
//! Delivered grids become genuine [`covise::DataObject`]s
//! ([`Payload::Slice`] for 2-D, [`Payload::Field`] for 3-D) placed in a
//! real [`SharedDataSpace`]; the viewer side reads them back zero-copy
//! and reconstructs the typed frames. Floats are never re-derived, so
//! NaN-filled grids survive the object hop bit-exactly.
//!
//! Crucially, each *delivery event* also does what COVISE actually does
//! when new data lands: the viewer's module pipeline (a [`ReadField`] fed
//! the freshest grid, wired into a [`CutPlane`]) executes once through
//! the real [`Controller`] — §4.3's post-processing loop. That per-event
//! pipeline firing is why batched delivery wins on this transport: one
//! scene refresh per step-boundary batch instead of one per sample.

use crate::monitor::endpoint::{check_delivery, MonitorCaps, MonitorEndpoint, MonitorError};
use crate::monitor::frame::{MonitorFrame, MonitorKind, MonitorPayload};
use covise::broker::HostArch;
use covise::{
    Controller, CutPlane, DataObject, ModuleId, Payload, ReadField, RequestBroker, SharedDataSpace,
};
use std::sync::Arc;
use viz::Field3;

/// Monitoring through a COVISE shared data space + module network.
pub struct CoviseMonitor {
    caps: MonitorCaps,
    sds: SharedDataSpace,
    /// Zero-copy handles to the delivered objects, in delivery order
    /// (the SDS itself keys by its system-wide unique names, which carry
    /// no ordering guarantee).
    pending: Vec<Arc<DataObject>>,
    /// The viewer pipeline, refreshed once per delivery event.
    broker: RequestBroker,
    controller: Controller,
    read_field: ModuleId,
    executions: u64,
}

impl CoviseMonitor {
    /// A fresh endpoint over its own shared data space, with a
    /// ReadField → CutPlane viewer pipeline on one host.
    pub fn new() -> CoviseMonitor {
        let mut caps = MonitorCaps::full("covise", 32);
        caps.kinds
            .retain(|k| matches!(k, MonitorKind::Grid2 | MonitorKind::Grid3));
        let mut broker = RequestBroker::new();
        let host = broker.add_host("viewer", HostArch::Little);
        let mut controller = Controller::new();
        let read_field =
            controller.add_module(host, Box::new(ReadField::new(Field3::zeros(2, 2, 2))));
        let cut = controller.add_module(host, Box::new(CutPlane::new()));
        controller
            .connect(read_field, "field", cut, "field")
            .expect("static pipeline wires");
        CoviseMonitor {
            caps,
            sds: SharedDataSpace::new(),
            pending: Vec::new(),
            broker,
            controller,
            read_field,
            executions: 0,
        }
    }

    /// Module-network executions so far (one per delivery event).
    pub fn pipeline_executions(&self) -> u64 {
        self.executions
    }

    /// Convert one admissible frame into an attributed data object. The
    /// 2-D height rides as an attribute so even degenerate shapes
    /// (`nx == 0`) reconstruct exactly — the loopback-equivalence
    /// contract admits no silently-dropped frames.
    fn to_object(frame: &MonitorFrame) -> Option<DataObject> {
        let (payload, ny_attr) = match &frame.payload {
            MonitorPayload::Grid2 { nx, ny, data, .. } => (
                Payload::Slice {
                    values: data.to_vec(),
                    width: *nx as usize,
                },
                Some(*ny),
            ),
            MonitorPayload::Grid3 {
                nx, ny, nz, data, ..
            } => (
                Payload::Field(Field3::from_vec(
                    *nx as usize,
                    *ny as usize,
                    *nz as usize,
                    data.to_vec(),
                )),
                None,
            ),
            _ => return None,
        };
        let mut obj = DataObject::new(frame.payload.name(), payload)
            .with_attr("channel", frame.payload.name())
            .with_attr("seq", &frame.seq.to_string())
            .with_attr("step", &frame.step.to_string());
        if let Some(ny) = ny_attr {
            obj = obj.with_attr("ny", &ny.to_string());
        }
        Some(obj)
    }

    /// Reconstruct the typed frame from an SDS object.
    fn from_object(obj: &DataObject) -> Option<MonitorFrame<'static>> {
        let channel = obj.attributes.get("channel")?;
        let seq = obj.attributes.get("seq")?.parse().ok()?;
        let step = obj.attributes.get("step")?.parse().ok()?;
        let payload = match &obj.payload {
            Payload::Slice { values, width } => {
                let nx = u32::try_from(*width).ok()?;
                let ny: u32 = obj.attributes.get("ny")?.parse().ok()?;
                if values.len() != nx as usize * ny as usize {
                    return None;
                }
                MonitorPayload::Grid2 {
                    name: channel.clone().into(),
                    nx,
                    ny,
                    data: values.clone().into(),
                }
            }
            Payload::Field(field) => {
                let (nx, ny, nz) = field.dims();
                MonitorPayload::Grid3 {
                    name: channel.clone().into(),
                    nx: nx as u32,
                    ny: ny as u32,
                    nz: nz as u32,
                    data: field.data().to_vec().into(),
                }
            }
            _ => return None,
        };
        Some(MonitorFrame { seq, step, payload })
    }

    /// The freshest delivered grid as a pipeline-feedable field (`None`
    /// for degenerate empty grids — nothing to render).
    fn as_field(frame: &MonitorFrame) -> Option<Field3> {
        match &frame.payload {
            MonitorPayload::Grid2 { data, .. } | MonitorPayload::Grid3 { data, .. }
                if data.is_empty() =>
            {
                None
            }
            MonitorPayload::Grid2 { nx, ny, data, .. } => Some(Field3::from_vec(
                *nx as usize,
                *ny as usize,
                1,
                data.to_vec(),
            )),
            MonitorPayload::Grid3 {
                nx, ny, nz, data, ..
            } => Some(Field3::from_vec(
                *nx as usize,
                *ny as usize,
                *nz as usize,
                data.to_vec(),
            )),
            _ => None,
        }
    }
}

impl Default for CoviseMonitor {
    fn default() -> Self {
        CoviseMonitor::new()
    }
}

impl MonitorEndpoint for CoviseMonitor {
    fn transport(&self) -> &'static str {
        "covise"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        check_delivery(&self.caps, frames)?;
        for frame in frames {
            let obj = Self::to_object(frame).ok_or_else(|| MonitorError::UnsupportedKind {
                channel: frame.payload.name().to_string(),
                kind: frame.payload.kind().name(),
            })?;
            self.pending.push(self.sds.put(obj));
        }
        // the §4.3 loop: new data arrived, so the viewer's module network
        // refreshes the scene — once per delivery event, however many
        // objects the event carried (this is what batching amortizes)
        if let Some(field) = frames.last().and_then(Self::as_field) {
            self.controller
                .module_mut(self.read_field)
                .feed_field(field);
        }
        self.controller
            .execute(&mut self.broker)
            .map_err(|e| MonitorError::Transport(format!("pipeline refresh failed: {e:?}")))?;
        self.executions += 1;
        Ok(frames.len())
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        let mut out = Vec::with_capacity(self.pending.len());
        for obj in std::mem::take(&mut self.pending) {
            if let Some(frame) = Self::from_object(&obj) {
                out.push(frame);
            }
        }
        // every delivered object was consumed: end of its SDS lifetime
        self.sds = SharedDataSpace::new();
        out
    }

    fn close(&mut self) {
        // reclaim the shared data space: objects delivered to a departed
        // viewer must not outlive it, drained or not
        self.pending.clear();
        self.sds = SharedDataSpace::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_ride_the_shared_data_space() {
        let mut ep = CoviseMonitor::new();
        let frames = vec![
            MonitorFrame {
                seq: 1,
                step: 3,
                payload: MonitorPayload::grid2("phi_mid", 2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            },
            MonitorFrame {
                seq: 2,
                step: 3,
                payload: MonitorPayload::grid3("phi", 2, 1, 2, vec![0.1, 0.2, 0.3, 0.4]),
            },
        ];
        assert_eq!(ep.deliver(&frames).unwrap(), 2);
        assert_eq!(ep.recv(), frames);
        assert!(ep.sds.is_empty(), "consumed objects must be reclaimed");
    }

    #[test]
    fn each_delivery_event_fires_the_pipeline_once() {
        let mut ep = CoviseMonitor::new();
        let frame = |seq| MonitorFrame {
            seq,
            step: 0,
            payload: MonitorPayload::grid2("g", 2, 1, vec![seq as f32, 0.0]),
        };
        // three per-sample deliveries: three scene refreshes
        for seq in 1..=3 {
            ep.deliver(&[frame(seq)]).unwrap();
        }
        assert_eq!(ep.pipeline_executions(), 3);
        // one batched delivery of three frames: one refresh
        ep.deliver(&[frame(4), frame(5), frame(6)]).unwrap();
        assert_eq!(ep.pipeline_executions(), 4);
        assert_eq!(ep.recv().len(), 6);
    }

    #[test]
    fn degenerate_grids_round_trip_instead_of_vanishing() {
        // zero-width / zero-height shapes must reconstruct exactly (the
        // loopback-equivalence contract admits no silent drops)
        let mut ep = CoviseMonitor::new();
        let frames = vec![
            MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::grid2("empty", 0, 5, Vec::new()),
            },
            MonitorFrame {
                seq: 2,
                step: 0,
                payload: MonitorPayload::grid2("flat", 3, 0, Vec::new()),
            },
        ];
        assert_eq!(ep.deliver(&frames).unwrap(), 2);
        assert_eq!(ep.recv(), frames);
    }

    #[test]
    fn close_reclaims_the_data_space() {
        let mut ep = CoviseMonitor::new();
        ep.deliver(&[MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::grid2("g", 1, 1, vec![1.0]),
        }])
        .unwrap();
        ep.close();
        assert!(ep.sds.is_empty(), "objects reclaimed on close");
        assert!(ep.recv().is_empty());
    }

    #[test]
    fn non_grid_kinds_are_outside_the_capability_set() {
        let mut ep = CoviseMonitor::new();
        let n = ep.negotiate(&MonitorCaps::full("viewer", 64));
        assert_eq!(n.kinds.len(), 2, "grids only: {}", n.render());
        let err = ep
            .deliver(&[MonitorFrame {
                seq: 1,
                step: 0,
                payload: MonitorPayload::scalar("demix", 0.5),
            }])
            .unwrap_err();
        assert!(matches!(err, MonitorError::UnsupportedKind { .. }));
    }

    #[test]
    fn nan_grid_survives_the_object_hop() {
        let bits = 0xffc0_0042u32;
        let mut ep = CoviseMonitor::new();
        ep.deliver(&[MonitorFrame {
            seq: 1,
            step: 0,
            payload: MonitorPayload::grid3("nan", 1, 1, 2, vec![f32::from_bits(bits), 7.0]),
        }])
        .unwrap();
        match &ep.recv()[0].payload {
            MonitorPayload::Grid3 { data, .. } => assert_eq!(data[0].to_bits(), bits),
            other => panic!("expected grid3, got {other:?}"),
        }
    }
}
