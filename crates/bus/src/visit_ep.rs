//! The VISIT adapter: batches travel as real §3.2 wire frames.
//!
//! Every [`set_batch`](crate::SteerEndpoint::set_batch) is encoded into
//! VISIT [`Frame`]s (begin / name / typed-value / end), shipped through a
//! [`MemLink`] pair using the same length-prefixed framing as the TCP
//! transport, and decoded on the far side back into typed commands before
//! staging — so the bytes on the link are exactly what a remote VISIT
//! simulation would see, including the client-native byte order that the
//! receiving side converts transparently.

use crate::command::{SteerCommand, SteerError};
use crate::endpoint::{check_batch, negotiate_caps, Capabilities, SteerEndpoint, Subscription};
use crate::hub::SteerHub;
use crate::spec::ParamSpec;
use crate::value::{ParamKind, ParamValue};
use std::time::Duration;
use visit::link::FrameLink;
use visit::{Endianness, Frame, MemLink, MsgKind, VisitValue};

/// Tag of the batch-open frame (payload: `I64[seq-hint, count]`).
const TAG_BEGIN: u32 = 0x00B5_0001;
/// Tag of a parameter-name frame (payload: `Str`).
const TAG_NAME: u32 = 0x00B5_0002;
/// Tag of the batch-close frame (bare).
const TAG_END: u32 = 0x00B5_0003;
/// Base tag of a typed-value frame; the low byte carries the
/// [`ParamKind`] wire code so the receiver decodes without guessing.
const TAG_VALUE_BASE: u32 = 0x00B5_1000;

/// Steering over the VISIT wire protocol.
pub struct VisitEndpoint {
    hub: SteerHub,
    origin: String,
    caps: Capabilities,
    /// Client-side link end (the "simulation is the client" side).
    client: MemLink,
    /// Server-side link end, drained synchronously after each batch.
    server: MemLink,
    /// Byte order the client encodes payloads in (§3.2: the server
    /// converts; the client never does).
    order: Endianness,
}

impl VisitEndpoint {
    /// Attach to a hub as `origin`, encoding payloads in the client's
    /// native byte order.
    pub fn attach(hub: &SteerHub, origin: &str) -> VisitEndpoint {
        Self::attach_with_order(hub, origin, Endianness::native())
    }

    /// Attach with an explicit client byte order (the cross-endian tests
    /// force the mismatched case).
    pub fn attach_with_order(hub: &SteerHub, origin: &str, order: Endianness) -> VisitEndpoint {
        let (client, server) = MemLink::pair();
        VisitEndpoint {
            hub: hub.clone(),
            origin: origin.to_string(),
            caps: Capabilities::full("visit", 256),
            client,
            server,
            order,
        }
    }

    /// Drain and decode one batch from the server side of the link.
    fn recv_batch(&mut self) -> Result<Vec<SteerCommand>, SteerError> {
        let recv = |server: &mut MemLink| -> Result<Frame, SteerError> {
            let bytes = server
                .recv_timeout(Duration::from_millis(50))
                .map_err(|e| SteerError::Transport(format!("visit recv: {e:?}")))?;
            Frame::decode(&bytes).ok_or_else(|| SteerError::Transport("malformed frame".into()))
        };
        let begin = recv(&mut self.server)?;
        let count = match (begin.tag, begin.value.as_ref().and_then(VisitValue::to_i64)) {
            (TAG_BEGIN, Some(v)) if v.len() == 2 && v[1] >= 0 => v[1] as usize,
            _ => return Err(SteerError::Transport("expected batch-begin frame".into())),
        };
        let mut commands = Vec::with_capacity(count);
        for _ in 0..count {
            let name_frame = recv(&mut self.server)?;
            let param = match (name_frame.tag, name_frame.value) {
                (TAG_NAME, Some(VisitValue::Str(s))) => s,
                _ => return Err(SteerError::Transport("expected name frame".into())),
            };
            let value_frame = recv(&mut self.server)?;
            let kind = value_frame
                .tag
                .checked_sub(TAG_VALUE_BASE)
                .and_then(|b| u8::try_from(b).ok())
                .and_then(ParamKind::from_byte)
                .ok_or_else(|| SteerError::Transport("bad value tag".into()))?;
            let value = value_frame
                .value
                .as_ref()
                .and_then(|v| ParamValue::from_visit(kind, v))
                .ok_or_else(|| SteerError::Transport("typed payload mismatch".into()))?;
            commands.push(SteerCommand { param, value });
        }
        let end = recv(&mut self.server)?;
        if end.tag != TAG_END {
            return Err(SteerError::Transport("expected batch-end frame".into()));
        }
        Ok(commands)
    }
}

impl SteerEndpoint for VisitEndpoint {
    fn transport(&self) -> &'static str {
        "visit"
    }

    fn negotiate(&mut self, client: &Capabilities) -> Capabilities {
        negotiate_caps(&self.hub, &self.origin, &mut self.caps, client)
    }

    fn describe(&self) -> Vec<ParamSpec> {
        self.hub.describe()
    }

    fn get(&self, name: &str) -> Option<ParamValue> {
        self.hub.get(name)
    }

    fn set_batch(&mut self, commands: Vec<SteerCommand>) -> Result<u64, SteerError> {
        check_batch(&self.caps, &commands)?;
        let send = |client: &mut MemLink, frame: &Frame| -> Result<(), SteerError> {
            client
                .send(&frame.encode())
                .map_err(|e| SteerError::Transport(format!("visit send: {e:?}")))
        };
        send(
            &mut self.client,
            &Frame::with_value(
                MsgKind::Data,
                TAG_BEGIN,
                self.order,
                VisitValue::I64(vec![0, commands.len() as i64]),
            ),
        )?;
        for cmd in &commands {
            send(
                &mut self.client,
                &Frame::with_value(
                    MsgKind::Data,
                    TAG_NAME,
                    self.order,
                    VisitValue::Str(cmd.param.clone()),
                ),
            )?;
            send(
                &mut self.client,
                &Frame::with_value(
                    MsgKind::Data,
                    TAG_VALUE_BASE + cmd.value.kind() as u32,
                    self.order,
                    cmd.value.to_visit(),
                ),
            )?;
        }
        send(&mut self.client, &Frame::bare(MsgKind::Data, TAG_END))?;
        let decoded = self.recv_batch()?;
        self.hub.stage(&self.origin, "visit", decoded)
    }

    fn subscribe(&mut self) -> Subscription {
        self.hub.subscribe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::i64("ranks", 1, 64, 4),
            ParamSpec::flag("paused", false),
            ParamSpec::vec3("beam_dir", -1.0, 1.0, [1.0, 0.0, 0.0]),
            ParamSpec::text("site", "london"),
        ])
    }

    #[test]
    fn every_kind_survives_the_wire() {
        let h = hub();
        let mut ep = VisitEndpoint::attach(&h, "alice");
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.05),
            SteerCommand::new("ranks", ParamValue::I64(16)),
            SteerCommand::new("paused", ParamValue::Bool(true)),
            SteerCommand::new("beam_dir", ParamValue::Vec3([0.0, 1.0, 0.0])),
            SteerCommand::new("site", ParamValue::Str("jülich".into())),
        ])
        .unwrap();
        let out = h.commit();
        assert_eq!(out.applied, 5);
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(0.05)));
        assert_eq!(h.get("ranks"), Some(ParamValue::I64(16)));
        assert_eq!(h.get("paused"), Some(ParamValue::Bool(true)));
        assert_eq!(h.get("beam_dir"), Some(ParamValue::Vec3([0.0, 1.0, 0.0])));
        assert_eq!(h.get("site"), Some(ParamValue::Str("jülich".into())));
    }

    #[test]
    fn big_endian_client_decoded_transparently() {
        // the paper's Cray/SGI case: client encodes big-endian, the
        // receiving side converts (§3.2) — values must be identical.
        let h = hub();
        let mut ep = VisitEndpoint::attach_with_order(&h, "t3e", Endianness::Big);
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.123456789),
            SteerCommand::new("ranks", ParamValue::I64(33)),
        ])
        .unwrap();
        h.commit();
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(0.123456789)));
        assert_eq!(h.get("ranks"), Some(ParamValue::I64(33)));
    }

    #[test]
    fn batch_is_one_staging_unit() {
        let h = hub();
        let mut ep = VisitEndpoint::attach(&h, "a");
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.1),
            SteerCommand::f64("miscibility", 0.2),
        ])
        .unwrap();
        assert_eq!(h.pending(), 1, "one batch, not two");
        h.commit();
        assert_eq!(h.get("miscibility"), Some(ParamValue::F64(0.2)));
    }
}
