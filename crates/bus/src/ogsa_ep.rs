//! The OGSA adapter: batches travel as Grid-service invocations.
//!
//! The endpoint hosts a [`BusSteeringService`] in a real [`HostingEnv`],
//! publishes it in the Figure-2 [`Registry`] under the
//! [`BusSteeringService::PORT_TYPE`] port type, discovers it back (the
//! client "chooses the services it will require and binds them", §2.3),
//! and then every batch is one `setBatch` operation whose arguments are
//! typed [`SdeValue`]s — floats and integers natively, booleans as SDE
//! booleans, vectors as canonical-text component lists (the XML-ish
//! text encoding OGSI services actually used, with shortest-round-trip
//! float formatting so nothing is lost).

use crate::command::{SteerCommand, SteerError};
use crate::endpoint::{check_batch, negotiate_caps, Capabilities, SteerEndpoint, Subscription};
use crate::hub::SteerHub;
use crate::spec::ParamSpec;
use crate::value::{ParamKind, ParamValue};
use ogsa::{GridService, Gsh, HostingEnv, InvokeResult, Registry, SdeValue, ServiceData};
use parking_lot::Mutex;

/// Encode one typed value as service-operation arguments (kind tag +
/// payload).
fn to_sde(value: &ParamValue) -> (SdeValue, SdeValue) {
    let kind = SdeValue::Str(value.kind().name().to_string());
    let payload = match value {
        ParamValue::F64(v) => SdeValue::F64(*v),
        ParamValue::I64(v) => SdeValue::I64(*v),
        ParamValue::Bool(b) => SdeValue::Bool(*b),
        ParamValue::Vec3([x, y, z]) => {
            SdeValue::List(vec![format!("{x:?}"), format!("{y:?}"), format!("{z:?}")])
        }
        ParamValue::Str(s) => SdeValue::Str(s.clone()),
    };
    (kind, payload)
}

/// Decode service-operation arguments back into a typed value. Strict:
/// any shape mismatch is a fault, never a guess.
fn from_sde(kind: &SdeValue, payload: &SdeValue) -> Option<ParamValue> {
    let kind = match kind {
        SdeValue::Str(s) => *ParamKind::ALL.iter().find(|k| k.name() == s)?,
        _ => return None,
    };
    Some(match (kind, payload) {
        (ParamKind::F64, SdeValue::F64(v)) => ParamValue::F64(*v),
        (ParamKind::I64, SdeValue::I64(v)) => ParamValue::I64(*v),
        (ParamKind::Bool, SdeValue::Bool(b)) => ParamValue::Bool(*b),
        (ParamKind::Vec3, SdeValue::List(c)) if c.len() == 3 => {
            ParamValue::Vec3([c[0].parse().ok()?, c[1].parse().ok()?, c[2].parse().ok()?])
        }
        (ParamKind::Str, SdeValue::Str(s)) => ParamValue::Str(s.clone()),
        _ => return None,
    })
}

/// The hosted service half: a [`GridService`] staging decoded batches
/// into the hub.
pub struct BusSteeringService {
    hub: SteerHub,
    origin: String,
    batches_staged: u64,
}

impl BusSteeringService {
    /// The port type published to the registry.
    pub const PORT_TYPE: &'static str = "gridsteer:bus-steering";

    /// A service staging batches for `origin`.
    pub fn new(hub: &SteerHub, origin: &str) -> BusSteeringService {
        BusSteeringService {
            hub: hub.clone(),
            origin: origin.to_string(),
            batches_staged: 0,
        }
    }
}

impl GridService for BusSteeringService {
    fn port_types(&self) -> Vec<String> {
        vec![Self::PORT_TYPE.to_string()]
    }

    fn service_data(&self) -> ServiceData {
        let mut sd = ServiceData::new();
        sd.set("origin", SdeValue::Str(self.origin.clone()));
        sd.set(
            "paramNames",
            SdeValue::List(self.hub.describe().into_iter().map(|s| s.name).collect()),
        );
        sd.set("batchesStaged", SdeValue::I64(self.batches_staged as i64));
        sd
    }

    fn invoke(&mut self, op: &str, args: &[SdeValue]) -> InvokeResult {
        match op {
            "describe" => InvokeResult::Ok(vec![SdeValue::List(
                self.hub.describe().into_iter().map(|s| s.name).collect(),
            )]),
            "getParam" => {
                let Some(name) = args.first().and_then(SdeValue::as_str) else {
                    return InvokeResult::Fault("getParam needs (name)".into());
                };
                match self.hub.get(name) {
                    Some(v) => {
                        let (kind, payload) = to_sde(&v);
                        InvokeResult::Ok(vec![kind, payload])
                    }
                    None => InvokeResult::Fault(format!("unknown parameter: {name}")),
                }
            }
            "setBatch" => {
                if args.is_empty() || !args.len().is_multiple_of(3) {
                    return InvokeResult::Fault("setBatch needs (name, kind, value)+".into());
                }
                let mut commands = Vec::with_capacity(args.len() / 3);
                for triple in args.chunks_exact(3) {
                    let (Some(name), Some(value)) =
                        (triple[0].as_str(), from_sde(&triple[1], &triple[2]))
                    else {
                        return InvokeResult::Fault("setBatch: malformed triple".into());
                    };
                    commands.push(SteerCommand::new(name, value));
                }
                match self.hub.stage(&self.origin, "ogsa", commands) {
                    Ok(seq) => {
                        self.batches_staged += 1;
                        InvokeResult::Ok(vec![SdeValue::I64(seq as i64)])
                    }
                    Err(e) => InvokeResult::Fault(e.to_string()),
                }
            }
            other => ogsa::service::unknown_op(other),
        }
    }
}

/// Steering through the OGSA hosting environment.
pub struct OgsaEndpoint {
    hub: SteerHub,
    origin: String,
    caps: Capabilities,
    /// The hosting environment (locked so reads work through `&self`).
    env: Mutex<HostingEnv>,
    gsh: Gsh,
}

impl OgsaEndpoint {
    /// Attach to a hub as `origin`: host the service, publish it in a
    /// registry, discover it back, and bind to the handle.
    pub fn attach(hub: &SteerHub, origin: &str) -> OgsaEndpoint {
        let mut env = HostingEnv::new();
        let steer_gsh = env.host(
            "bus-steer",
            Box::new(BusSteeringService::new(hub, origin)),
            None,
        );
        let reg_gsh = env.host("registry", Box::new(Registry::new()), None);
        let _ = env.invoke(
            &reg_gsh,
            "publish",
            &[
                SdeValue::Str(steer_gsh.clone()),
                SdeValue::Str(BusSteeringService::PORT_TYPE.into()),
                SdeValue::Str(origin.into()),
            ],
        );
        // the Figure-2 client flow: discover by port type, bind the handle
        let gsh = env
            .invoke(
                &reg_gsh,
                "discover",
                &[SdeValue::Str(BusSteeringService::PORT_TYPE.into())],
            )
            .ok()
            .and_then(|r| {
                r.first()
                    .and_then(|v| v.as_list().and_then(|l| l.first().cloned()))
            })
            .unwrap_or(steer_gsh);
        OgsaEndpoint {
            hub: hub.clone(),
            origin: origin.to_string(),
            caps: Capabilities::full("ogsa", 128),
            env: Mutex::new(env),
            gsh,
        }
    }
}

impl SteerEndpoint for OgsaEndpoint {
    fn transport(&self) -> &'static str {
        "ogsa"
    }

    fn negotiate(&mut self, client: &Capabilities) -> Capabilities {
        negotiate_caps(&self.hub, &self.origin, &mut self.caps, client)
    }

    fn describe(&self) -> Vec<ParamSpec> {
        self.hub.describe()
    }

    fn get(&self, name: &str) -> Option<ParamValue> {
        // a real service round-trip, not a hub read
        match self
            .env
            .lock()
            .invoke(&self.gsh, "getParam", &[SdeValue::Str(name.into())])
        {
            Ok(InvokeResult::Ok(out)) if out.len() == 2 => from_sde(&out[0], &out[1]),
            _ => None,
        }
    }

    fn set_batch(&mut self, commands: Vec<SteerCommand>) -> Result<u64, SteerError> {
        check_batch(&self.caps, &commands)?;
        let mut args = Vec::with_capacity(commands.len() * 3);
        for cmd in &commands {
            let (kind, payload) = to_sde(&cmd.value);
            args.push(SdeValue::Str(cmd.param.clone()));
            args.push(kind);
            args.push(payload);
        }
        match self.env.lock().invoke(&self.gsh, "setBatch", &args) {
            Ok(InvokeResult::Ok(out)) => match out.first().and_then(SdeValue::as_i64) {
                Some(seq) if seq > 0 => Ok(seq as u64),
                _ => Err(SteerError::Transport("setBatch returned no seq".into())),
            },
            Ok(InvokeResult::Fault(f)) => Err(SteerError::Transport(f)),
            Err(e) => Err(SteerError::Transport(format!("{e:?}"))),
        }
    }

    fn subscribe(&mut self) -> Subscription {
        self.hub.subscribe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> SteerHub {
        SteerHub::new(vec![
            ParamSpec::f64("miscibility", 0.0, 1.0, 1.0),
            ParamSpec::i64("ranks", 1, 64, 4),
            ParamSpec::flag("paused", false),
            ParamSpec::vec3("beam_dir", -1.0, 1.0, [1.0, 0.0, 0.0]),
            ParamSpec::text("site", "london"),
        ])
    }

    #[test]
    fn every_kind_survives_the_service_hop() {
        let h = hub();
        let mut ep = OgsaEndpoint::attach(&h, "alice");
        ep.set_batch(vec![
            SteerCommand::f64("miscibility", 0.25),
            SteerCommand::new("ranks", ParamValue::I64(32)),
            SteerCommand::new("paused", ParamValue::Bool(true)),
            SteerCommand::new("beam_dir", ParamValue::Vec3([0.1, -0.9, 1e-12])),
            SteerCommand::new("site", ParamValue::Str("manchester".into())),
        ])
        .unwrap();
        let out = h.commit();
        assert_eq!(out.applied, 5);
        assert_eq!(
            h.get("beam_dir"),
            Some(ParamValue::Vec3([0.1, -0.9, 1e-12])),
            "vec3 text components must round-trip exactly"
        );
    }

    #[test]
    fn get_goes_through_the_service() {
        let h = hub();
        let ep = OgsaEndpoint::attach(&h, "a");
        assert_eq!(ep.get("ranks"), Some(ParamValue::I64(4)));
        assert_eq!(ep.get("ghost"), None);
    }

    #[test]
    fn sde_codec_rejects_shape_mismatch() {
        assert_eq!(
            from_sde(&SdeValue::Str("vec3".into()), &SdeValue::F64(1.0)),
            None
        );
        assert_eq!(
            from_sde(&SdeValue::Str("nope".into()), &SdeValue::F64(1.0)),
            None
        );
    }
}
