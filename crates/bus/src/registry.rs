//! The typed steerable-parameter registry.
//!
//! This replaces the old f64-only registry in `steer_core::params` (which
//! now re-exports these types). Values are [`ParamValue`]s validated
//! against [`ParamSpec`]s. The typed
//! [`get_value`](ParamRegistry::get_value) /
//! [`set_value`](ParamRegistry::set_value) API is the only one: the f64
//! `get`/`set` shims that eased the original migration (they silently
//! lost `Vec3`/`Str` parameters and dropped the applied clamped value)
//! went through a `#[deprecated]` cycle and are now removed.

use crate::spec::ParamSpec;
use crate::value::ParamValue;
use gridsteer_ckpt::{CkptError, SectionReader, SectionWriter};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A typed registry of steerable parameters with change history.
#[derive(Debug, Default)]
pub struct ParamRegistry {
    specs: BTreeMap<String, ParamSpec>,
    values: BTreeMap<String, ParamValue>,
    /// `(sequence, name, applied value)` change log.
    history: Vec<(u64, String, ParamValue)>,
    seq: u64,
}

impl ParamRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a parameter.
    pub fn declare(&mut self, spec: ParamSpec) {
        self.values.insert(spec.name.clone(), spec.initial.clone());
        self.specs.insert(spec.name.clone(), spec);
    }

    /// Parameter names (sorted — `BTreeMap` order).
    pub fn names(&self) -> Vec<String> {
        self.specs.keys().cloned().collect()
    }

    /// The declared spec for a parameter.
    pub fn spec(&self, name: &str) -> Option<&ParamSpec> {
        self.specs.get(name)
    }

    /// All declared specs, in name order.
    pub fn specs(&self) -> Vec<ParamSpec> {
        self.specs.values().cloned().collect()
    }

    /// Current typed value.
    pub fn get_value(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Check a steer without applying it: returns the value that *would*
    /// be applied (after clamp/coercion) or the refusal reason.
    pub fn validate(&self, name: &str, value: &ParamValue) -> Result<ParamValue, String> {
        self.specs
            .get(name)
            .ok_or_else(|| format!("unknown parameter: {name}"))?
            .admit(value)
    }

    /// Apply a typed steer. Returns the value actually applied (possibly
    /// clamped, per the spec's [`crate::BoundsPolicy`]) or the refusal.
    pub fn set_value(&mut self, name: &str, value: &ParamValue) -> Result<ParamValue, String> {
        let applied = self.validate(name, value)?;
        self.values.insert(name.to_string(), applied.clone());
        self.seq += 1;
        self.history
            .push((self.seq, name.to_string(), applied.clone()));
        Ok(applied)
    }

    /// Change log (oldest first).
    pub fn history(&self) -> &[(u64, String, ParamValue)] {
        &self.history
    }

    /// Monotone change counter.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Serialize specs, current values, the change log and the change
    /// counter into a section body (checkpoint path — see
    /// [`SteerHub::save_sections`](crate::SteerHub::save_sections)).
    pub fn save_into(&self, w: &mut SectionWriter) {
        w.put_u32(self.specs.len() as u32);
        for spec in self.specs.values() {
            crate::ckpt::put_spec(w, spec);
        }
        w.put_u32(self.values.len() as u32);
        for (name, v) in &self.values {
            w.put_str(name);
            crate::ckpt::put_value(w, v);
        }
        w.put_u32(self.history.len() as u32);
        for (seq, name, v) in &self.history {
            w.put_u64(*seq);
            w.put_str(name);
            crate::ckpt::put_value(w, v);
        }
        w.put_u64(self.seq);
    }

    /// Decode the [`save_into`](ParamRegistry::save_into) layout back
    /// into a registry. Values and history are restored verbatim —
    /// *not* re-declared through [`declare`](ParamRegistry::declare),
    /// which would reset values to their initials.
    pub fn restore_from(r: &mut SectionReader<'_>) -> Result<ParamRegistry, CkptError> {
        let mut reg = ParamRegistry::new();
        for _ in 0..r.get_u32()? {
            let spec = crate::ckpt::get_spec(r)?;
            reg.specs.insert(spec.name.clone(), spec);
        }
        for _ in 0..r.get_u32()? {
            let name = r.get_str()?;
            let v = crate::ckpt::get_value(r, "registry value")?;
            reg.values.insert(name, v);
        }
        for _ in 0..r.get_u32()? {
            let seq = r.get_u64()?;
            let name = r.get_str()?;
            let v = crate::ckpt::get_value(r, "registry history")?;
            reg.history.push((seq, name, v));
        }
        reg.seq = r.get_u64()?;
        Ok(reg)
    }
}

/// A cloneable, internally-locked handle to one shared [`ParamRegistry`]
/// — the single authority every endpoint, session, and server of a
/// steering bus reads and writes. Method-for-method mirror of the plain
/// registry so call sites are interchangeable.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<ParamRegistry>>,
}

impl SharedRegistry {
    /// Wrap a registry for sharing.
    pub fn new(registry: ParamRegistry) -> Self {
        SharedRegistry {
            inner: Arc::new(Mutex::new(registry)),
        }
    }

    /// Declare a parameter.
    pub fn declare(&self, spec: ParamSpec) {
        self.inner.lock().declare(spec);
    }

    /// Parameter names.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().names()
    }

    /// The declared spec for a parameter.
    pub fn spec(&self, name: &str) -> Option<ParamSpec> {
        self.inner.lock().spec(name).cloned()
    }

    /// All declared specs, in name order.
    pub fn specs(&self) -> Vec<ParamSpec> {
        self.inner.lock().specs()
    }

    /// Current typed value.
    pub fn get_value(&self, name: &str) -> Option<ParamValue> {
        self.inner.lock().get_value(name).cloned()
    }

    /// Check a steer without applying it.
    pub fn validate(&self, name: &str, value: &ParamValue) -> Result<ParamValue, String> {
        self.inner.lock().validate(name, value)
    }

    /// Apply a typed steer.
    pub fn set_value(&self, name: &str, value: &ParamValue) -> Result<ParamValue, String> {
        self.inner.lock().set_value(name, value)
    }

    /// Snapshot of the change log.
    pub fn history(&self) -> Vec<(u64, String, ParamValue)> {
        self.inner.lock().history().to_vec()
    }

    /// Monotone change counter.
    pub fn seq(&self) -> u64 {
        self.inner.lock().seq()
    }

    /// Serialize the registry into a section body (checkpoint path).
    pub fn save_into(&self, w: &mut SectionWriter) {
        self.inner.lock().save_into(w);
    }

    /// Replace the registry contents behind this shared handle (restore
    /// path) — every clone observes the restored state.
    pub fn replace(&self, registry: ParamRegistry) {
        *self.inner.lock() = registry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BoundsPolicy;

    #[test]
    fn registry_declares_gets_sets_typed() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
        r.declare(ParamSpec::text("site", "london"));
        assert_eq!(r.get_value("miscibility"), Some(&ParamValue::F64(1.0)));
        r.set_value("miscibility", &ParamValue::F64(0.25)).unwrap();
        r.set_value("site", &ParamValue::Str("phoenix".into()))
            .unwrap();
        assert_eq!(
            r.get_value("site"),
            Some(&ParamValue::Str("phoenix".into()))
        );
        assert_eq!(r.seq(), 2);
        assert_eq!(r.history().len(), 2);
    }

    #[test]
    fn reject_spec_refuses_and_leaves_value() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64("x", 0.0, 1.0, 0.5));
        assert!(r.set_value("x", &ParamValue::F64(2.0)).is_err());
        assert_eq!(r.get_value("x"), Some(&ParamValue::F64(0.5)));
        assert_eq!(r.seq(), 0, "refusals must not consume sequence numbers");
    }

    #[test]
    fn clamp_spec_applies_pinned_value_and_logs_it() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64_clamped("gain", 0.0, 10.0, 1.0));
        let applied = r.set_value("gain", &ParamValue::F64(25.0)).unwrap();
        assert_eq!(applied, ParamValue::F64(10.0));
        assert_eq!(r.get_value("gain"), Some(&ParamValue::F64(10.0)));
        // history records what was *applied*, not what was asked
        assert_eq!(r.history().last().unwrap().2, ParamValue::F64(10.0));
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut r = ParamRegistry::new();
        assert!(r.set_value("ghost", &ParamValue::F64(1.0)).is_err());
        assert_eq!(r.get_value("ghost"), None);
    }

    #[test]
    fn shared_registry_is_one_authority() {
        let shared = SharedRegistry::new(ParamRegistry::new());
        shared.declare(ParamSpec::f64("x", 0.0, 1.0, 0.0));
        let alias = shared.clone();
        alias.set_value("x", &ParamValue::F64(0.75)).unwrap();
        assert_eq!(shared.get_value("x"), Some(ParamValue::F64(0.75)));
        assert_eq!(shared.seq(), 1);
        assert_eq!(shared.spec("x").unwrap().policy, BoundsPolicy::Reject);
    }

    #[test]
    fn snapshot_roundtrip_preserves_values_history_and_seq() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
        r.declare(ParamSpec::text("site", "london"));
        r.set_value("miscibility", &ParamValue::F64(0.25)).unwrap();
        r.set_value("site", &ParamValue::Str("phoenix".into()))
            .unwrap();
        let mut w = SectionWriter::new();
        r.save_into(&mut w);
        let body = w.finish();
        let mut rd = SectionReader::new(&body, "registry");
        let back = ParamRegistry::restore_from(&mut rd).unwrap();
        rd.expect_end().unwrap();
        assert_eq!(back.specs(), r.specs());
        assert_eq!(back.history(), r.history());
        assert_eq!(back.seq(), r.seq());
        assert_eq!(
            back.get_value("miscibility"),
            Some(&ParamValue::F64(0.25)),
            "restored value is the steered one, not the initial"
        );
        assert_eq!(
            back.get_value("site"),
            Some(&ParamValue::Str("phoenix".into()))
        );
    }

    /// The typed API preserves what the removed f64 shims threw away:
    /// non-numeric parameters stay visible and the applied (possibly
    /// clamped) value comes back to the caller.
    #[test]
    fn typed_api_covers_former_f64_shim_uses() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
        r.declare(ParamSpec::text("site", "london"));
        assert_eq!(
            r.get_value("miscibility").and_then(ParamValue::as_f64),
            Some(1.0)
        );
        assert_eq!(
            r.get_value("site"),
            Some(&ParamValue::Str("london".into())),
            "strings survive the typed view"
        );
        r.set_value("miscibility", &ParamValue::F64(0.25)).unwrap();
        assert!(r.set_value("miscibility", &ParamValue::F64(7.0)).is_err());
        let shared = SharedRegistry::new(r);
        shared
            .set_value("miscibility", &ParamValue::F64(0.5))
            .unwrap();
        assert_eq!(shared.get_value("miscibility"), Some(ParamValue::F64(0.5)));
    }
}
