//! Typed parameter declarations with an explicit bounds policy.
//!
//! The old f64-only registry silently carried one implicit policy
//! (reject). A [`ParamSpec`] makes the choice explicit per parameter:
//! [`BoundsPolicy::Reject`] refuses out-of-range steers outright
//! (collaborators must see exactly what was applied), while
//! [`BoundsPolicy::Clamp`] pins them to the nearest bound (useful for
//! continuous dials where a slightly-out-of-range slider should stick at
//! the end stop, not error).

use crate::value::{ParamKind, ParamValue};

/// What to do with an out-of-range steer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundsPolicy {
    /// Refuse the steer; the current value is untouched.
    #[default]
    Reject,
    /// Pin the steer to the violated bound and apply that.
    Clamp,
}

/// Declaration of one steerable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Declared value kind; steers of other kinds are coerced when exact
    /// (`F64` ↔ `I64`) and rejected otherwise.
    pub kind: ParamKind,
    /// Lower bound (inclusive), applied to numeric kinds and to each
    /// `Vec3` component. `None` = unbounded.
    pub min: Option<f64>,
    /// Upper bound (inclusive), same scope as `min`.
    pub max: Option<f64>,
    /// Initial value.
    pub initial: ParamValue,
    /// Out-of-range handling.
    pub policy: BoundsPolicy,
}

impl ParamSpec {
    /// A bounded f64 parameter with the classic reject-on-out-of-range
    /// behaviour — the mechanical migration target for the old
    /// `ParamSpec { name, min, max, initial }` literals.
    pub fn f64(name: &str, min: f64, max: f64, initial: f64) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            kind: ParamKind::F64,
            min: Some(min),
            max: Some(max),
            initial: ParamValue::F64(initial),
            policy: BoundsPolicy::Reject,
        }
    }

    /// A bounded f64 parameter that clamps instead of rejecting.
    pub fn f64_clamped(name: &str, min: f64, max: f64, initial: f64) -> ParamSpec {
        ParamSpec {
            policy: BoundsPolicy::Clamp,
            ..ParamSpec::f64(name, min, max, initial)
        }
    }

    /// A bounded integer parameter (reject policy).
    pub fn i64(name: &str, min: i64, max: i64, initial: i64) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            kind: ParamKind::I64,
            min: Some(min as f64),
            max: Some(max as f64),
            initial: ParamValue::I64(initial),
            policy: BoundsPolicy::Reject,
        }
    }

    /// An unbounded boolean flag.
    pub fn flag(name: &str, initial: bool) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Bool,
            min: None,
            max: None,
            initial: ParamValue::Bool(initial),
            policy: BoundsPolicy::Reject,
        }
    }

    /// A per-component bounded 3-vector (clamp policy by default: vector
    /// dials are continuous).
    pub fn vec3(name: &str, min: f64, max: f64, initial: [f64; 3]) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Vec3,
            min: Some(min),
            max: Some(max),
            initial: ParamValue::Vec3(initial),
            policy: BoundsPolicy::Clamp,
        }
    }

    /// An unbounded string parameter.
    pub fn text(name: &str, initial: &str) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Str,
            min: None,
            max: None,
            initial: ParamValue::Str(initial.to_string()),
            policy: BoundsPolicy::Reject,
        }
    }

    /// Check a requested steer against this spec. Returns the value to
    /// actually apply (possibly clamped / kind-coerced) or a
    /// human-readable refusal.
    pub fn admit(&self, value: &ParamValue) -> Result<ParamValue, String> {
        let coerced = self.coerce(value)?;
        match coerced {
            ParamValue::F64(v) => self.admit_scalar(v).map(ParamValue::F64),
            // integers stay in the i64 domain when in range — an f64
            // round-trip would lose precision beyond 2^53
            ParamValue::I64(v) => {
                let lo = self.min.unwrap_or(f64::NEG_INFINITY);
                let hi = self.max.unwrap_or(f64::INFINITY);
                if (v as f64) >= lo && (v as f64) <= hi {
                    Ok(ParamValue::I64(v))
                } else {
                    self.admit_scalar(v as f64)
                        .map(|x| ParamValue::I64(x as i64))
                }
            }
            ParamValue::Vec3(c) => {
                let mut out = [0.0; 3];
                for (o, v) in out.iter_mut().zip(c) {
                    *o = self.admit_scalar(v)?;
                }
                Ok(ParamValue::Vec3(out))
            }
            // Bool / Str have no numeric range.
            other => Ok(other),
        }
    }

    /// Kind-check with exact numeric coercion (`F64` holding an integral
    /// value steers an `I64` parameter and vice versa — the f64 shims rely
    /// on this).
    fn coerce(&self, value: &ParamValue) -> Result<ParamValue, String> {
        if value.kind() == self.kind {
            return Ok(value.clone());
        }
        match (self.kind, value) {
            (ParamKind::I64, ParamValue::F64(v)) => {
                if let Some(exact) = ParamValue::from_scalar(ParamKind::I64, *v) {
                    return Ok(exact);
                }
                Err(format!("{}: {v} is not an exact integer", self.name))
            }
            (ParamKind::F64, ParamValue::I64(v)) => Ok(ParamValue::F64(*v as f64)),
            _ => Err(format!(
                "{}: kind mismatch ({} steer against {} parameter)",
                self.name,
                value.kind().name(),
                self.kind.name()
            )),
        }
    }

    fn admit_scalar(&self, v: f64) -> Result<f64, String> {
        let lo = self.min.unwrap_or(f64::NEG_INFINITY);
        let hi = self.max.unwrap_or(f64::INFINITY);
        if v >= lo && v <= hi {
            return Ok(v);
        }
        match self.policy {
            BoundsPolicy::Clamp => Ok(v.clamp(lo, hi)),
            BoundsPolicy::Reject => Err(format!("{}={v} outside [{lo}, {hi}]", self.name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_policy_refuses_out_of_range() {
        let s = ParamSpec::f64("miscibility", 0.0, 1.0, 1.0);
        assert_eq!(
            s.admit(&ParamValue::F64(0.4)),
            Ok(ParamValue::F64(0.4)),
            "in-range passes through"
        );
        let err = s.admit(&ParamValue::F64(2.0)).unwrap_err();
        assert!(err.contains("outside"), "{err}");
        assert!(s.admit(&ParamValue::F64(-0.1)).is_err());
    }

    #[test]
    fn clamp_policy_pins_to_bounds() {
        let s = ParamSpec::f64_clamped("damping", 0.0, 1.0, 0.0);
        assert_eq!(s.admit(&ParamValue::F64(2.0)), Ok(ParamValue::F64(1.0)));
        assert_eq!(s.admit(&ParamValue::F64(-3.0)), Ok(ParamValue::F64(0.0)));
        assert_eq!(s.admit(&ParamValue::F64(0.5)), Ok(ParamValue::F64(0.5)));
    }

    #[test]
    fn i64_bounds_and_coercion() {
        let s = ParamSpec::i64("ranks", 1, 64, 4);
        assert_eq!(s.admit(&ParamValue::I64(8)), Ok(ParamValue::I64(8)));
        assert!(s.admit(&ParamValue::I64(65)).is_err());
        // exact float coerces, fractional does not
        assert_eq!(s.admit(&ParamValue::F64(16.0)), Ok(ParamValue::I64(16)));
        assert!(s.admit(&ParamValue::F64(16.5)).is_err());
    }

    #[test]
    fn vec3_clamps_per_component() {
        let s = ParamSpec::vec3("beam_dir", -1.0, 1.0, [1.0, 0.0, 0.0]);
        assert_eq!(
            s.admit(&ParamValue::Vec3([2.0, 0.5, -9.0])),
            Ok(ParamValue::Vec3([1.0, 0.5, -1.0]))
        );
    }

    #[test]
    fn kind_mismatch_rejected() {
        let s = ParamSpec::f64("x", 0.0, 1.0, 0.0);
        let err = s.admit(&ParamValue::Str("0.5".into())).unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
        let flag = ParamSpec::flag("paused", false);
        assert!(flag.admit(&ParamValue::F64(1.0)).is_err());
        assert_eq!(
            flag.admit(&ParamValue::Bool(true)),
            Ok(ParamValue::Bool(true))
        );
    }

    #[test]
    fn unbounded_kinds_pass_through() {
        let s = ParamSpec::text("label", "a");
        assert_eq!(
            s.admit(&ParamValue::Str("b".into())),
            Ok(ParamValue::Str("b".into()))
        );
    }
}
