//! Steer commands, sequence-numbered batches, and commit outcomes.

use crate::value::ParamValue;
use bytes::{Buf, BufMut, BytesMut};

/// One requested parameter change.
#[derive(Debug, Clone, PartialEq)]
pub struct SteerCommand {
    /// Target parameter name.
    pub param: String,
    /// Requested value (may be clamped/coerced at commit).
    pub value: ParamValue,
}

impl SteerCommand {
    /// Convenience constructor.
    pub fn new(param: &str, value: ParamValue) -> SteerCommand {
        SteerCommand {
            param: param.to_string(),
            value,
        }
    }

    /// f64 shim constructor.
    pub fn f64(param: &str, value: f64) -> SteerCommand {
        SteerCommand::new(param, ParamValue::F64(value))
    }

    /// The shared `(name, value)` wire codec: u16-LE name length + UTF-8
    /// name + tagged [`ParamValue`] bytes. Used by both the core TCP
    /// server's `OP_BATCH` and the UNICORE `steer.cmd` job payload, so
    /// the framing lives in exactly one place.
    pub fn encode_bytes(&self, out: &mut BytesMut) {
        out.put_u16_le(self.param.len() as u16);
        out.put_slice(self.param.as_bytes());
        self.value.encode_bytes(out);
    }

    /// Decode one `(name, value)` pair, advancing `buf` past it.
    pub fn decode_bytes(buf: &mut &[u8]) -> Option<SteerCommand> {
        if buf.len() < 2 {
            return None;
        }
        let len = buf.get_u16_le() as usize;
        if buf.len() < len {
            return None;
        }
        let param = String::from_utf8(buf[..len].to_vec()).ok()?;
        buf.advance(len);
        let value = ParamValue::decode_bytes(buf)?;
        Some(SteerCommand { param, value })
    }
}

/// A staged batch: the unit of atomic application at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandBatch {
    /// Hub-assigned monotone sequence number (global staging order).
    pub seq: u64,
    /// Originating participant (role checks happen at commit).
    pub origin: String,
    /// Transport the batch arrived over (for audit/digest lines).
    pub transport: &'static str,
    /// The commands, in request order.
    pub commands: Vec<SteerCommand>,
}

/// What happened to one staged command at commit.
#[derive(Debug, Clone, PartialEq)]
pub enum SteerNotice {
    /// The command was applied; `value` is the value actually written
    /// (post-clamp/coercion).
    Applied {
        /// Commit sequence number.
        commit: u64,
        /// Batch the command came from.
        batch: u64,
        /// Originating participant.
        origin: String,
        /// Parameter name.
        param: String,
        /// Applied value.
        value: ParamValue,
    },
    /// The command was refused (not master, out of bounds, unknown name,
    /// vanished sender…).
    Refused {
        /// Commit sequence number.
        commit: u64,
        /// Batch the command came from.
        batch: u64,
        /// Originating participant.
        origin: String,
        /// Parameter name.
        param: String,
        /// Human-readable reason.
        reason: String,
    },
}

/// Aggregate result of one hub commit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitOutcome {
    /// Commit sequence number (0 if nothing was staged).
    pub commit: u64,
    /// Commands applied.
    pub applied: u64,
    /// Commands refused.
    pub refused: u64,
}

/// Errors a transport can raise before a command ever reaches the hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SteerError {
    /// The batch was empty.
    EmptyBatch,
    /// The batch exceeds the negotiated maximum size.
    TooLarge {
        /// Requested batch length.
        len: usize,
        /// Negotiated maximum.
        max: usize,
    },
    /// A command's value kind is outside the negotiated capability set.
    UnsupportedKind {
        /// Offending parameter.
        param: String,
        /// The kind the transport cannot carry.
        kind: &'static str,
    },
    /// The transport failed to encode/decode the batch.
    Transport(String),
}

impl std::fmt::Display for SteerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteerError::EmptyBatch => write!(f, "empty batch"),
            SteerError::TooLarge { len, max } => {
                write!(f, "batch of {len} exceeds negotiated max {max}")
            }
            SteerError::UnsupportedKind { param, kind } => {
                write!(f, "{param}: kind {kind} not negotiated on this transport")
            }
            SteerError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}
