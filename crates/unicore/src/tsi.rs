//! Target System Interface.
//!
//! §3.1: "On these systems a Target System Interface (TSI), which is
//! available as a Java application or a set of Perl scripts, performs the
//! communication with the NJS." The real TSI turns incarnated scripts into
//! batch-system submissions; ours executes them against a sandboxed
//! in-process "target system": a per-job in-memory working directory and a
//! registry of *applications* (Rust closures standing in for the installed
//! simulation binaries — PEPC, the LB code, etc.).
//!
//! §3.1 also notes the steering extension touches only this tier: "the only
//! component of the UNICORE system that needs to be modified for this
//! extension is the TSI" — accordingly, the `LaunchProxy` script line is
//! handled here (by recording the proxy endpoint for the
//! [`crate::proxy::VisitProxyServer`] to pick up).

use std::collections::BTreeMap;
use std::sync::Arc;

/// A job's in-memory working directory.
pub type JobDir = BTreeMap<String, Vec<u8>>;

/// An installed application: `(args, working dir) → stdout or error`.
pub type AppFn = Arc<dyn Fn(&[String], &mut JobDir) -> Result<String, String> + Send + Sync>;

/// One line of an incarnated script (the Perl-script analog; see
/// [`crate::njs::IncarnatedScript`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptLine {
    /// Write a staged-in file into the job directory.
    CopyIn {
        /// Destination path.
        path: String,
        /// Contents.
        data: Vec<u8>,
    },
    /// Run an installed application.
    Run {
        /// Application name.
        command: String,
        /// Arguments.
        args: Vec<String>,
    },
    /// Mark a file for spooling back to the client.
    SpoolOut {
        /// Path to spool.
        path: String,
    },
    /// Queue a file for transfer to another Vsite.
    Export {
        /// Source path.
        path: String,
        /// Destination Vsite.
        vsite: String,
    },
    /// Record a VISIT proxy endpoint for this job.
    LaunchProxy {
        /// Steering service name.
        service: String,
    },
}

/// Result of running one incarnated script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TsiOutcome {
    /// True if every line succeeded.
    pub success: bool,
    /// Spooled output files (path → contents).
    pub spooled: BTreeMap<String, Vec<u8>>,
    /// Files queued for cross-Vsite transfer (path, destination, contents).
    pub exports: Vec<(String, String, Vec<u8>)>,
    /// VISIT proxy services launched.
    pub proxies: Vec<String>,
    /// Per-line log (stdout or error text).
    pub log: Vec<String>,
}

/// The sandboxed target system.
#[derive(Default)]
pub struct Tsi {
    apps: BTreeMap<String, AppFn>,
}

impl Tsi {
    /// Empty target system (no applications installed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an application under `name`.
    pub fn install_app(&mut self, name: &str, f: AppFn) {
        self.apps.insert(name.to_string(), f);
    }

    /// A target system with the standard built-ins installed:
    /// `echo` (joins args into stdout) and `write` (args: path, text —
    /// creates a file). Used by tests and examples.
    pub fn with_builtins() -> Self {
        let mut t = Tsi::new();
        t.install_app("echo", Arc::new(|args, _dir| Ok(args.join(" "))));
        t.install_app(
            "write",
            Arc::new(|args, dir| {
                if args.len() != 2 {
                    return Err("write needs 2 args".into());
                }
                dir.insert(args[0].clone(), args[1].clone().into_bytes());
                Ok(String::new())
            }),
        );
        t
    }

    /// Installed application names (sorted — `BTreeMap` key order).
    pub fn app_names(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }

    /// Execute a script in a fresh job directory. Execution stops at the
    /// first failing line (matching batch-script semantics under `set -e`).
    pub fn run(&self, lines: &[ScriptLine]) -> TsiOutcome {
        let mut dir: JobDir = BTreeMap::new();
        let mut out = TsiOutcome {
            success: true,
            ..Default::default()
        };
        for line in lines {
            match line {
                ScriptLine::CopyIn { path, data } => {
                    dir.insert(path.clone(), data.clone());
                    out.log
                        .push(format!("copyin {path} ({} bytes)", data.len()));
                }
                ScriptLine::Run { command, args } => match self.apps.get(command) {
                    Some(app) => match app(args, &mut dir) {
                        Ok(stdout) => out.log.push(format!("run {command}: {stdout}")),
                        Err(e) => {
                            out.log.push(format!("run {command}: FAILED: {e}"));
                            out.success = false;
                            break;
                        }
                    },
                    None => {
                        out.log.push(format!("run {command}: not installed"));
                        out.success = false;
                        break;
                    }
                },
                ScriptLine::SpoolOut { path } => match dir.get(path) {
                    Some(data) => {
                        out.spooled.insert(path.clone(), data.clone());
                        out.log.push(format!("spool {path}"));
                    }
                    None => {
                        out.log.push(format!("spool {path}: missing"));
                        out.success = false;
                        break;
                    }
                },
                ScriptLine::Export { path, vsite } => match dir.get(path) {
                    Some(data) => {
                        out.exports
                            .push((path.clone(), vsite.clone(), data.clone()));
                        out.log.push(format!("export {path} -> {vsite}"));
                    }
                    None => {
                        out.log.push(format!("export {path}: missing"));
                        out.success = false;
                        break;
                    }
                },
                ScriptLine::LaunchProxy { service } => {
                    out.proxies.push(service.clone());
                    out.log.push(format!("visit-proxy {service} up"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copyin_then_spool_roundtrips() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[
            ScriptLine::CopyIn {
                path: "input.cfg".into(),
                data: b"misc=0.06".to_vec(),
            },
            ScriptLine::SpoolOut {
                path: "input.cfg".into(),
            },
        ]);
        assert!(out.success);
        assert_eq!(out.spooled["input.cfg"], b"misc=0.06");
    }

    #[test]
    fn app_writes_file_visible_to_spool() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[
            ScriptLine::Run {
                command: "write".into(),
                args: vec!["output.dat".into(), "result".into()],
            },
            ScriptLine::SpoolOut {
                path: "output.dat".into(),
            },
        ]);
        assert!(out.success);
        assert_eq!(out.spooled["output.dat"], b"result");
    }

    #[test]
    fn unknown_command_fails_and_stops() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[
            ScriptLine::Run {
                command: "no-such-binary".into(),
                args: vec![],
            },
            ScriptLine::SpoolOut {
                path: "never".into(),
            },
        ]);
        assert!(!out.success);
        assert!(out.spooled.is_empty());
        assert_eq!(out.log.len(), 1);
    }

    #[test]
    fn app_error_propagates() {
        let mut tsi = Tsi::new();
        tsi.install_app("bad", Arc::new(|_, _| Err("segfault".into())));
        let out = tsi.run(&[ScriptLine::Run {
            command: "bad".into(),
            args: vec![],
        }]);
        assert!(!out.success);
        assert!(out.log[0].contains("segfault"));
    }

    #[test]
    fn missing_spool_fails() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[ScriptLine::SpoolOut {
            path: "ghost".into(),
        }]);
        assert!(!out.success);
    }

    #[test]
    fn export_records_destination() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[
            ScriptLine::CopyIn {
                path: "sample.raw".into(),
                data: vec![1, 2, 3],
            },
            ScriptLine::Export {
                path: "sample.raw".into(),
                vsite: "manchester-viz".into(),
            },
        ]);
        assert!(out.success);
        assert_eq!(
            out.exports,
            vec![("sample.raw".into(), "manchester-viz".into(), vec![1, 2, 3])]
        );
    }

    #[test]
    fn launch_proxy_recorded() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[ScriptLine::LaunchProxy {
            service: "pepc-steer".into(),
        }]);
        assert!(out.success);
        assert_eq!(out.proxies, vec!["pepc-steer".to_string()]);
    }

    #[test]
    fn builtin_echo_logs_stdout() {
        let tsi = Tsi::with_builtins();
        let out = tsi.run(&[ScriptLine::Run {
            command: "echo".into(),
            args: vec!["hello".into(), "grid".into()],
        }]);
        assert!(out.log[0].contains("hello grid"));
    }
}
