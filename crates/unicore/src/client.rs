//! The user-side UNICORE client.
//!
//! §3.1: the client provides "functions to construct, submit and control
//! the execution of computational jobs" with "single sign-on with strong
//! authentication": the user holds one certificate and every request to any
//! gateway is signed with it. The steering plugin of §3.3 lives here too:
//! [`UnicoreClient::proxy_attach`] / [`UnicoreClient::proxy_poll`] drive a
//! [`crate::proxy::VisitProxyClient`] through gateway
//! transactions.

use crate::ajo::Ajo;
use crate::cert::{Certificate, PrivateKey, SignedRequest};
use crate::gateway::{Gateway, GatewayError, GatewayMsg, GatewayReply};
use crate::njs::{JobId, JobStatus};
use crate::proxy::{ProxySessionId, VisitProxyClient};

/// Client-side failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The gateway refused the request.
    Denied(GatewayError),
    /// The gateway replied with something unexpected for this request.
    Protocol,
}

/// A user with a certificate, talking to gateways.
pub struct UnicoreClient {
    /// The user's certificate (single sign-on identity).
    pub cert: Certificate,
    key: PrivateKey,
}

impl UnicoreClient {
    /// A client for the given identity.
    pub fn new(cert: Certificate, key: PrivateKey) -> Self {
        UnicoreClient { cert, key }
    }

    /// The identity string gateways see.
    pub fn subject(&self) -> &str {
        &self.cert.subject
    }

    fn send(&self, gw: &mut Gateway, msg: GatewayMsg) -> GatewayReply {
        gw.transact(&SignedRequest::new(self.cert.clone(), &self.key, msg))
    }

    /// Submit an AJO.
    pub fn consign(&self, gw: &mut Gateway, ajo: Ajo) -> Result<JobId, ClientError> {
        match self.send(gw, GatewayMsg::Consign(ajo)) {
            GatewayReply::Accepted(id) => Ok(id),
            GatewayReply::Denied(e) => Err(ClientError::Denied(e)),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Tick a Vsite's queue (synchronous target-system model).
    pub fn run_queued(&self, gw: &mut Gateway, vsite: &str) -> Result<usize, ClientError> {
        match self.send(
            gw,
            GatewayMsg::RunQueued {
                vsite: vsite.into(),
            },
        ) {
            GatewayReply::Ran(n) => Ok(n),
            GatewayReply::Denied(e) => Err(ClientError::Denied(e)),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Poll a job's status.
    pub fn status(
        &self,
        gw: &mut Gateway,
        vsite: &str,
        job: JobId,
    ) -> Result<JobStatus, ClientError> {
        match self.send(
            gw,
            GatewayMsg::Status {
                vsite: vsite.into(),
                job: job.0,
            },
        ) {
            GatewayReply::Status(s) => Ok(s),
            GatewayReply::Denied(e) => Err(ClientError::Denied(e)),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetch spooled outcome files.
    pub fn fetch(
        &self,
        gw: &mut Gateway,
        vsite: &str,
        job: JobId,
    ) -> Result<Vec<(String, Vec<u8>)>, ClientError> {
        match self.send(
            gw,
            GatewayMsg::Fetch {
                vsite: vsite.into(),
                job: job.0,
            },
        ) {
            GatewayReply::Outcome(files) => Ok(files),
            GatewayReply::Denied(e) => Err(ClientError::Denied(e)),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Attach to a job's steering proxy, returning a plugin bound to the
    /// new session.
    pub fn proxy_attach(
        &self,
        gw: &mut Gateway,
        vsite: &str,
        service: &str,
    ) -> Result<VisitProxyClient, ClientError> {
        match self.send(
            gw,
            GatewayMsg::ProxyAttach {
                vsite: vsite.into(),
                service: service.into(),
            },
        ) {
            GatewayReply::ProxySession(id) => Ok(VisitProxyClient::new(id)),
            GatewayReply::Denied(e) => Err(ClientError::Denied(e)),
            _ => Err(ClientError::Protocol),
        }
    }

    /// One steering poll for an attached plugin: ships its queued params,
    /// ingests fresh frames. Returns the number of new data frames.
    pub fn proxy_poll(
        &self,
        gw: &mut Gateway,
        vsite: &str,
        service: &str,
        plugin: &mut VisitProxyClient,
    ) -> Result<usize, ClientError> {
        let mut denied = None;
        let n = plugin.poll_with(|session, params| {
            match self.send(
                gw,
                GatewayMsg::ProxyExchange {
                    vsite: vsite.into(),
                    service: service.into(),
                    session,
                    params,
                },
            ) {
                GatewayReply::ProxyFrames(frames) => Some(frames),
                GatewayReply::Denied(e) => {
                    denied = Some(e);
                    None
                }
                _ => None,
            }
        });
        match denied {
            Some(e) => Err(ClientError::Denied(e)),
            None => Ok(n),
        }
    }

    /// Move the steering master role to another session.
    pub fn proxy_pass_master(
        &self,
        gw: &mut Gateway,
        vsite: &str,
        service: &str,
        to: ProxySessionId,
    ) -> Result<bool, ClientError> {
        match self.send(
            gw,
            GatewayMsg::ProxyPassMaster {
                vsite: vsite.into(),
                service: service.into(),
                to,
            },
        ) {
            GatewayReply::MasterPassed(ok) => Ok(ok),
            GatewayReply::Denied(e) => Err(ClientError::Denied(e)),
            _ => Err(ClientError::Protocol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ajo::Task;
    use crate::cert::{CertAuthority, TrustStore};
    use crate::njs::Njs;
    use crate::tsi::Tsi;

    fn rig() -> (UnicoreClient, Gateway) {
        let ca = CertAuthority::new("CA", 1);
        let mut trust = TrustStore::new();
        trust.trust(&ca);
        let (cert, key) = ca.issue("CN=porter");
        let mut gw = Gateway::new("gw", trust);
        gw.add_vsite(Njs::new("csar", Tsi::with_builtins()));
        (UnicoreClient::new(cert, key), gw)
    }

    fn job() -> Ajo {
        let mut ajo = Ajo::new("j", "csar");
        let w = ajo.add_task(
            Task::Execute {
                command: "write".into(),
                args: vec!["result.txt".into(), "ok".into()],
            },
            &[],
        );
        ajo.add_task(
            Task::StageOut {
                path: "result.txt".into(),
            },
            &[w],
        );
        ajo
    }

    #[test]
    fn submit_run_fetch_happy_path() {
        let (client, mut gw) = rig();
        let id = client.consign(&mut gw, job()).unwrap();
        assert_eq!(
            client.status(&mut gw, "csar", id).unwrap(),
            JobStatus::Queued
        );
        assert_eq!(client.run_queued(&mut gw, "csar").unwrap(), 1);
        assert_eq!(client.status(&mut gw, "csar", id).unwrap(), JobStatus::Done);
        let files = client.fetch(&mut gw, "csar", id).unwrap();
        assert_eq!(files, vec![("result.txt".to_string(), b"ok".to_vec())]);
    }

    #[test]
    fn status_of_unknown_job_denied() {
        let (client, mut gw) = rig();
        let r = client.status(&mut gw, "csar", JobId(777));
        assert_eq!(r, Err(ClientError::Denied(GatewayError::UnknownJob)));
    }

    #[test]
    fn proxy_attach_to_missing_service_denied() {
        let (client, mut gw) = rig();
        let r = client.proxy_attach(&mut gw, "csar", "no-service");
        assert!(matches!(
            r,
            Err(ClientError::Denied(GatewayError::UnknownService(_)))
        ));
    }
}
