//! Abstract Job Objects.
//!
//! §2.2: "The workflows being instantiated are known in UNICORE as Abstract
//! Job Objects (AJOs) and are sent via ssl as serialised Java objects."
//! An [`Ajo`] is a named task DAG destined for one Vsite; tasks cover
//! execution, file staging, cross-Vsite transfer, and — for the steering
//! extension — starting a VISIT proxy next to the job. The NJS *incarnates*
//! the abstract tasks into target-system scripts (see [`crate::njs`]).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// One abstract task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Task {
    /// Run a registered application on the target system.
    Execute {
        /// Application name looked up in the TSI's application registry.
        command: String,
        /// Arguments.
        args: Vec<String>,
    },
    /// Materialize a file in the job's working directory before execution.
    StageIn {
        /// Path within the job directory.
        path: String,
        /// File contents.
        data: Vec<u8>,
    },
    /// Spool a produced file back to the client after execution.
    StageOut {
        /// Path within the job directory.
        path: String,
    },
    /// Transfer a produced file to another Vsite's job directory — the
    /// "grid middleware is responsible for the transfer of data between
    /// components" of the RealityGrid scenario (§2.1), e.g. samples moving
    /// from the compute Vsite to the visualization Vsite.
    TransferToVsite {
        /// Source path in this job's directory.
        path: String,
        /// Destination Vsite name.
        vsite: String,
    },
    /// Start a VISIT proxy-server next to the job (the steering extension,
    /// §3.3). `service` names the steering endpoint.
    StartVisitProxy {
        /// Steering service name published to the client plugin.
        service: String,
    },
}

/// A task plus its DAG position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AjoTask {
    /// Task id, unique within the AJO.
    pub id: u32,
    /// The abstract task.
    pub task: Task,
    /// Ids of tasks that must complete first.
    pub after: Vec<u32>,
}

/// Validation errors for an AJO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AjoError {
    /// Two tasks share an id.
    DuplicateId(u32),
    /// A dependency references a missing id.
    UnknownDependency { task: u32, missing: u32 },
    /// The dependency graph has a cycle.
    Cycle,
    /// The AJO has no tasks.
    Empty,
}

/// An Abstract Job Object: a named task DAG for one Vsite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ajo {
    /// Human-readable job name.
    pub name: String,
    /// Destination virtual site.
    pub vsite: String,
    /// Task DAG.
    pub tasks: Vec<AjoTask>,
}

impl Ajo {
    /// New empty AJO for a Vsite.
    pub fn new(name: &str, vsite: &str) -> Self {
        Ajo {
            name: name.to_string(),
            vsite: vsite.to_string(),
            tasks: Vec::new(),
        }
    }

    /// Append a task depending on `after`, returning its id.
    pub fn add_task(&mut self, task: Task, after: &[u32]) -> u32 {
        let id = self.tasks.iter().map(|t| t.id + 1).max().unwrap_or(0);
        self.tasks.push(AjoTask {
            id,
            task,
            after: after.to_vec(),
        });
        id
    }

    /// Validate and produce a topological execution order (stable: ready
    /// tasks run in id order, so incarnation is deterministic).
    pub fn topo_order(&self) -> Result<Vec<u32>, AjoError> {
        if self.tasks.is_empty() {
            return Err(AjoError::Empty);
        }
        let mut seen = HashSet::new();
        for t in &self.tasks {
            if !seen.insert(t.id) {
                return Err(AjoError::DuplicateId(t.id));
            }
        }
        let ids: HashSet<u32> = self.tasks.iter().map(|t| t.id).collect();
        let mut indegree: BTreeMap<u32, usize> = BTreeMap::new();
        let mut dependents: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for t in &self.tasks {
            indegree.entry(t.id).or_insert(0);
            for &d in &t.after {
                if !ids.contains(&d) {
                    return Err(AjoError::UnknownDependency {
                        task: t.id,
                        missing: d,
                    });
                }
                *indegree.entry(t.id).or_insert(0) += 1;
                dependents.entry(d).or_default().push(t.id);
            }
        }
        // Kahn's algorithm; the ready set starts id-sorted because the
        // indegree map iterates in `BTreeMap` key order
        let mut ready: VecDeque<u32> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(id) = ready.pop_front() {
            order.push(id);
            if let Some(deps) = dependents.get(&id) {
                let mut newly: Vec<u32> = Vec::new();
                for &d in deps {
                    let e = indegree.get_mut(&d).unwrap();
                    *e -= 1;
                    if *e == 0 {
                        newly.push(d);
                    }
                }
                newly.sort_unstable();
                ready.extend(newly);
            }
        }
        if order.len() != self.tasks.len() {
            return Err(AjoError::Cycle);
        }
        Ok(order)
    }

    /// Task lookup by id.
    pub fn task(&self, id: u32) -> Option<&AjoTask> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Serialize ("serialised Java objects" analog).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("AJO serializes")
    }

    /// Deserialize.
    pub fn from_bytes(data: &[u8]) -> Option<Ajo> {
        serde_json::from_slice(data).ok()
    }

    /// Convenience: the standard steered-simulation job shape used by the
    /// demos — stage in a config, start a VISIT proxy, run the simulation,
    /// spool results.
    pub fn steered_simulation(
        name: &str,
        vsite: &str,
        command: &str,
        args: &[&str],
        config: &[u8],
    ) -> Ajo {
        let mut ajo = Ajo::new(name, vsite);
        let stage = ajo.add_task(
            Task::StageIn {
                path: "input.cfg".into(),
                data: config.to_vec(),
            },
            &[],
        );
        let proxy = ajo.add_task(
            Task::StartVisitProxy {
                service: format!("{name}-steer"),
            },
            &[],
        );
        let run = ajo.add_task(
            Task::Execute {
                command: command.to_string(),
                args: args.iter().map(|s| s.to_string()).collect(),
            },
            &[stage, proxy],
        );
        ajo.add_task(
            Task::StageOut {
                path: "output.dat".into(),
            },
            &[run],
        );
        ajo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_orders_correctly() {
        let mut ajo = Ajo::new("j", "vsite");
        let a = ajo.add_task(
            Task::StageIn {
                path: "f".into(),
                data: vec![],
            },
            &[],
        );
        let b = ajo.add_task(
            Task::Execute {
                command: "sim".into(),
                args: vec![],
            },
            &[a],
        );
        let c = ajo.add_task(Task::StageOut { path: "o".into() }, &[b]);
        assert_eq!(ajo.topo_order().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn diamond_orders_deterministically() {
        let mut ajo = Ajo::new("j", "v");
        let root = ajo.add_task(
            Task::StageIn {
                path: "f".into(),
                data: vec![],
            },
            &[],
        );
        let l = ajo.add_task(
            Task::Execute {
                command: "a".into(),
                args: vec![],
            },
            &[root],
        );
        let r = ajo.add_task(
            Task::Execute {
                command: "b".into(),
                args: vec![],
            },
            &[root],
        );
        let sink = ajo.add_task(Task::StageOut { path: "o".into() }, &[l, r]);
        let order = ajo.topo_order().unwrap();
        assert_eq!(order, vec![root, l, r, sink]);
    }

    #[test]
    fn cycle_detected() {
        let mut ajo = Ajo::new("j", "v");
        ajo.tasks.push(AjoTask {
            id: 0,
            task: Task::StageOut { path: "x".into() },
            after: vec![1],
        });
        ajo.tasks.push(AjoTask {
            id: 1,
            task: Task::StageOut { path: "y".into() },
            after: vec![0],
        });
        assert_eq!(ajo.topo_order(), Err(AjoError::Cycle));
    }

    #[test]
    fn unknown_dependency_detected() {
        let mut ajo = Ajo::new("j", "v");
        ajo.tasks.push(AjoTask {
            id: 0,
            task: Task::StageOut { path: "x".into() },
            after: vec![9],
        });
        assert_eq!(
            ajo.topo_order(),
            Err(AjoError::UnknownDependency {
                task: 0,
                missing: 9
            })
        );
    }

    #[test]
    fn duplicate_id_detected() {
        let mut ajo = Ajo::new("j", "v");
        for _ in 0..2 {
            ajo.tasks.push(AjoTask {
                id: 3,
                task: Task::StageOut { path: "x".into() },
                after: vec![],
            });
        }
        assert_eq!(ajo.topo_order(), Err(AjoError::DuplicateId(3)));
    }

    #[test]
    fn empty_ajo_rejected() {
        assert_eq!(Ajo::new("j", "v").topo_order(), Err(AjoError::Empty));
    }

    #[test]
    fn serialization_roundtrip() {
        let ajo = Ajo::steered_simulation(
            "lbm-run",
            "manchester-csar",
            "lbm",
            &["--nx", "64"],
            b"misc=0.05",
        );
        let back = Ajo::from_bytes(&ajo.to_bytes()).unwrap();
        assert_eq!(back, ajo);
    }

    #[test]
    fn steered_simulation_shape() {
        let ajo = Ajo::steered_simulation("j", "v", "pepc", &[], b"");
        let order = ajo.topo_order().unwrap();
        // execute must come after both stage-in and proxy start
        let pos = |id: u32| order.iter().position(|&x| x == id).unwrap();
        let exec_id = ajo
            .tasks
            .iter()
            .find(|t| matches!(t.task, Task::Execute { .. }))
            .unwrap()
            .id;
        for t in &ajo.tasks {
            if matches!(t.task, Task::StageIn { .. } | Task::StartVisitProxy { .. }) {
                assert!(pos(t.id) < pos(exec_id));
            }
        }
    }
}
