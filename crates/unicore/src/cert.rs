//! Certificate and trust-flow model.
//!
//! UNICORE's security promise (§3.1): "single sign-on with strong
//! authentication and encryption" using X.509 certificates checked at the
//! gateway. We model the *trust topology* — CAs, user certificates, signed
//! requests, gateway trust stores — with toy digests instead of real
//! asymmetric cryptography (DESIGN.md §2 records the substitution). Every
//! structural property the paper relies on holds: untrusted issuers are
//! rejected, tampered payloads are rejected, identities are bound to
//! requests, and one sign-on covers all Vsites behind a gateway.

use serde::{Deserialize, Serialize};

/// Toy 64-bit FNV-1a digest (shared with visit's keyed auth mode).
pub fn digest(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A certificate binding a subject name to a (toy) public key, signed by a
/// certificate authority.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Subject distinguished name, e.g. `"CN=J.Brooke,O=UoM"`.
    pub subject: String,
    /// Issuing CA name.
    pub issuer: String,
    /// Subject's public key (model).
    pub pubkey: u64,
    /// CA signature over (subject, pubkey).
    pub signature: u64,
}

/// A certificate authority that can issue certificates.
#[derive(Debug, Clone)]
pub struct CertAuthority {
    /// CA name (appears as `issuer` in issued certs).
    pub name: String,
    secret: u64,
}

impl CertAuthority {
    /// Create a CA with a deterministic secret derived from a seed.
    pub fn new(name: &str, seed: u64) -> Self {
        CertAuthority {
            name: name.to_string(),
            secret: digest(&seed.to_le_bytes()) ^ digest(name.as_bytes()),
        }
    }

    /// The CA's public verification key (model: derived from the secret).
    pub fn verify_key(&self) -> u64 {
        digest(&self.secret.to_le_bytes())
    }

    fn sign_payload(&self, subject: &str, pubkey: u64) -> u64 {
        let mut buf = self.verify_key().to_le_bytes().to_vec();
        buf.extend_from_slice(subject.as_bytes());
        buf.extend_from_slice(&pubkey.to_le_bytes());
        digest(&buf)
    }

    /// Issue a certificate + private signing key for `subject`.
    pub fn issue(&self, subject: &str) -> (Certificate, PrivateKey) {
        let private = PrivateKey(digest(
            &[self.secret.to_le_bytes().as_slice(), subject.as_bytes()].concat(),
        ));
        let pubkey = private.public();
        let cert = Certificate {
            subject: subject.to_string(),
            issuer: self.name.clone(),
            pubkey,
            signature: self.sign_payload(subject, pubkey),
        };
        (cert, private)
    }
}

/// A user's private key (model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey(pub u64);

impl PrivateKey {
    /// The matching public key.
    pub fn public(&self) -> u64 {
        digest(&self.0.to_le_bytes())
    }

    /// Sign a payload. Model scheme: `inner = H(priv ‖ H(payload))`,
    /// `outer = H(pub ‖ H(payload) ‖ inner)`. Verification (below) only
    /// needs `pub`, and any mutation of payload, key, or signature breaks
    /// the `outer` equation. This detects *tampering* (the property the
    /// middleware flow depends on) but is forgeable by an adversary who can
    /// choose `inner` freely — acceptable for a trust-topology model, not
    /// for production cryptography.
    pub fn sign(&self, payload: &[u8]) -> Signature {
        let ptag = digest(payload);
        let inner = digest(&[&self.0.to_le_bytes()[..], &ptag.to_le_bytes()[..]].concat());
        let outer = digest(
            &[
                &self.public().to_le_bytes()[..],
                &ptag.to_le_bytes()[..],
                &inner.to_le_bytes()[..],
            ]
            .concat(),
        );
        Signature { inner, outer }
    }
}

/// A (model) signature pair. See [`PrivateKey::sign`] for the scheme and
/// its honest limitations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    inner: u64,
    outer: u64,
}

impl Signature {
    /// Verify against a public key and payload: recompute the `outer`
    /// binding equation.
    pub fn verify(&self, pubkey: u64, payload: &[u8]) -> bool {
        let ptag = digest(payload);
        let expect = digest(
            &[
                &pubkey.to_le_bytes()[..],
                &ptag.to_le_bytes()[..],
                &self.inner.to_le_bytes()[..],
            ]
            .concat(),
        );
        self.outer == expect
    }
}

/// The gateway's set of trusted CAs.
#[derive(Debug, Clone, Default)]
pub struct TrustStore {
    /// (CA name, CA verify key).
    trusted: Vec<(String, u64)>,
}

impl TrustStore {
    /// Empty store (trusts nobody).
    pub fn new() -> Self {
        Self::default()
    }

    /// Trust a CA.
    pub fn trust(&mut self, ca: &CertAuthority) {
        self.trusted.push((ca.name.clone(), ca.verify_key()));
    }

    /// Validate a certificate: known issuer and intact CA signature.
    pub fn validate(&self, cert: &Certificate) -> bool {
        self.trusted.iter().any(|(name, vkey)| {
            if name != &cert.issuer {
                return false;
            }
            let mut buf = vkey.to_le_bytes().to_vec();
            buf.extend_from_slice(cert.subject.as_bytes());
            buf.extend_from_slice(&cert.pubkey.to_le_bytes());
            digest(&buf) == cert.signature
        })
    }
}

/// A request carrying its signer's certificate and a signature over the
/// serialized payload — the unit of everything that crosses a gateway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignedRequest<T> {
    /// The signer's certificate.
    pub cert: Certificate,
    /// The payload.
    pub payload: T,
    /// Signature over the serde_json serialization of `payload`.
    pub signature: Signature,
}

impl<T: Serialize> SignedRequest<T> {
    /// Sign `payload` with `key`, attaching `cert`.
    pub fn new(cert: Certificate, key: &PrivateKey, payload: T) -> Self {
        let bytes = serde_json::to_vec(&payload).expect("payload serializes");
        let signature = key.sign(&bytes);
        SignedRequest {
            cert,
            payload,
            signature,
        }
    }

    /// Verify: certificate chains to a trusted CA, and the signature binds
    /// this payload to the certificate's key.
    pub fn verify(&self, trust: &TrustStore) -> bool {
        if !trust.validate(&self.cert) {
            return false;
        }
        let bytes = serde_json::to_vec(&self.payload).expect("payload serializes");
        self.signature.verify(self.cert.pubkey, &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issued_certs_validate_against_trusting_store() {
        let ca = CertAuthority::new("UK-eScience-CA", 1);
        let (cert, _key) = ca.issue("CN=brooke");
        let mut store = TrustStore::new();
        store.trust(&ca);
        assert!(store.validate(&cert));
    }

    #[test]
    fn untrusted_issuer_rejected() {
        let ca = CertAuthority::new("UK-eScience-CA", 1);
        let rogue = CertAuthority::new("Rogue-CA", 2);
        let (cert, _) = rogue.issue("CN=mallory");
        let mut store = TrustStore::new();
        store.trust(&ca);
        assert!(!store.validate(&cert));
    }

    #[test]
    fn tampered_cert_rejected() {
        let ca = CertAuthority::new("CA", 1);
        let (mut cert, _) = ca.issue("CN=alice");
        let mut store = TrustStore::new();
        store.trust(&ca);
        cert.subject = "CN=eve".into(); // rebind name without re-signing
        assert!(!store.validate(&cert));
    }

    #[test]
    fn signed_request_roundtrip() {
        let ca = CertAuthority::new("CA", 1);
        let (cert, key) = ca.issue("CN=alice");
        let mut store = TrustStore::new();
        store.trust(&ca);
        let req = SignedRequest::new(cert, &key, "submit job".to_string());
        assert!(req.verify(&store));
    }

    #[test]
    fn tampered_payload_rejected() {
        let ca = CertAuthority::new("CA", 1);
        let (cert, key) = ca.issue("CN=alice");
        let mut store = TrustStore::new();
        store.trust(&ca);
        let mut req = SignedRequest::new(cert, &key, "run A".to_string());
        req.payload = "run B".to_string();
        assert!(!req.verify(&store));
    }

    #[test]
    fn signature_bound_to_key() {
        let ca = CertAuthority::new("CA", 1);
        let (cert_a, key_a) = ca.issue("CN=alice");
        let (cert_b, _key_b) = ca.issue("CN=bob");
        let mut store = TrustStore::new();
        store.trust(&ca);
        // alice signs, but the request claims bob's cert
        let bytes_payload = "x".to_string();
        let mut req = SignedRequest::new(cert_a, &key_a, bytes_payload);
        req.cert = cert_b;
        assert!(!req.verify(&store));
    }

    #[test]
    fn deterministic_issuance() {
        let ca = CertAuthority::new("CA", 7);
        let (c1, k1) = ca.issue("CN=x");
        let (c2, k2) = ca.issue("CN=x");
        assert_eq!(c1, c2);
        assert_eq!(k1, k2);
    }
}
