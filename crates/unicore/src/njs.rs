//! Network Job Supervisor: job store + incarnation.
//!
//! §2.2: "They are received by a Network Job Supervisor … and the AJOs are
//! translated into Perl scripts for a target machine. This process is known
//! as incarnation in the UNICORE model; it allows the details of the
//! scripts used to run the workflow to be hidden from the application.
//! This is a very important part of the process of abstraction necessary
//! for the creation of Grid services."
//!
//! [`Njs::incarnate`] is that translation: an [`Ajo`] in, an
//! [`IncarnatedScript`] (ordered [`ScriptLine`]s) out. The NJS also owns
//! the per-Vsite job store: statuses, outcomes, spooled files.

use crate::ajo::{Ajo, AjoError, Task};
use crate::tsi::{ScriptLine, Tsi, TsiOutcome};
use std::collections::BTreeMap;

/// Identifies a job within one NJS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Lifecycle of a consigned job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet run.
    Queued,
    /// Currently executing on the TSI.
    Running,
    /// Completed successfully; outcome available.
    Done,
    /// Failed (with the first error from the log).
    Failed(String),
}

/// The incarnated form of an AJO — the "Perl script" analog. Kept as data
/// so tests and the experiment harness can inspect exactly what the
/// abstraction layer produced.
#[derive(Debug, Clone, PartialEq)]
pub struct IncarnatedScript {
    /// The job this script realizes.
    pub job_name: String,
    /// Ordered script lines.
    pub lines: Vec<ScriptLine>,
}

/// A record in the NJS job store.
struct JobRecord {
    ajo: Ajo,
    owner: String,
    status: JobStatus,
    outcome: Option<TsiOutcome>,
}

/// The Network Job Supervisor for one Vsite.
pub struct Njs {
    /// Vsite name this NJS fronts.
    pub vsite: String,
    tsi: Tsi,
    jobs: BTreeMap<JobId, JobRecord>,
    next_id: u64,
}

impl Njs {
    /// An NJS driving the given target system.
    pub fn new(vsite: &str, tsi: Tsi) -> Self {
        Njs {
            vsite: vsite.to_string(),
            tsi,
            jobs: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Translate an AJO into a target-system script (incarnation).
    pub fn incarnate(&self, ajo: &Ajo) -> Result<IncarnatedScript, AjoError> {
        let order = ajo.topo_order()?;
        let mut lines = Vec::with_capacity(order.len());
        for id in order {
            let t = ajo.task(id).expect("topo order yields known ids");
            lines.push(match &t.task {
                Task::StageIn { path, data } => ScriptLine::CopyIn {
                    path: path.clone(),
                    data: data.clone(),
                },
                Task::Execute { command, args } => ScriptLine::Run {
                    command: command.clone(),
                    args: args.clone(),
                },
                Task::StageOut { path } => ScriptLine::SpoolOut { path: path.clone() },
                Task::TransferToVsite { path, vsite } => ScriptLine::Export {
                    path: path.clone(),
                    vsite: vsite.clone(),
                },
                Task::StartVisitProxy { service } => ScriptLine::LaunchProxy {
                    service: service.clone(),
                },
            });
        }
        Ok(IncarnatedScript {
            job_name: ajo.name.clone(),
            lines,
        })
    }

    /// Accept a job into the store (status `Queued`).
    pub fn consign(&mut self, ajo: Ajo, owner: &str) -> Result<JobId, AjoError> {
        ajo.topo_order()?; // validate up-front; reject broken DAGs at consign time
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobRecord {
                ajo,
                owner: owner.to_string(),
                status: JobStatus::Queued,
                outcome: None,
            },
        );
        Ok(id)
    }

    /// Run one queued job to completion on the TSI. (The real NJS submits
    /// to a batch queue; our target system is synchronous.)
    pub fn run_job(&mut self, id: JobId) -> Option<&JobStatus> {
        // Incarnate first (immutable borrow), then mutate the record.
        let script = {
            let rec = self.jobs.get(&id)?;
            if rec.status != JobStatus::Queued {
                return Some(&self.jobs.get(&id).unwrap().status);
            }
            self.incarnate(&rec.ajo).ok()?
        };
        {
            let rec = self.jobs.get_mut(&id)?;
            rec.status = JobStatus::Running;
        }
        let outcome = self.tsi.run(&script.lines);
        let rec = self.jobs.get_mut(&id)?;
        rec.status = if outcome.success {
            JobStatus::Done
        } else {
            let err = outcome
                .log
                .iter()
                .find(|l| {
                    l.contains("FAILED") || l.contains("not installed") || l.contains("missing")
                })
                .cloned()
                .unwrap_or_else(|| "unknown failure".into());
            JobStatus::Failed(err)
        };
        rec.outcome = Some(outcome);
        Some(&rec.status)
    }

    /// Run every queued job (submission-order). Returns how many ran.
    pub fn run_all_queued(&mut self) -> usize {
        let ids: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, r)| r.status == JobStatus::Queued)
            .map(|(&id, _)| id)
            .collect();
        let n = ids.len();
        for id in ids {
            self.run_job(id);
        }
        n
    }

    /// Job status (authorization: only the owner may query).
    pub fn status(&self, id: JobId, owner: &str) -> Option<&JobStatus> {
        let rec = self.jobs.get(&id)?;
        (rec.owner == owner).then_some(&rec.status)
    }

    /// Fetch the outcome of a finished job (owner only).
    pub fn fetch(&self, id: JobId, owner: &str) -> Option<&TsiOutcome> {
        let rec = self.jobs.get(&id)?;
        if rec.owner != owner {
            return None;
        }
        rec.outcome.as_ref()
    }

    /// Number of stored jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Access the underlying target system (to install applications).
    pub fn tsi_mut(&mut self) -> &mut Tsi {
        &mut self.tsi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ajo::Ajo;

    fn simple_ajo() -> Ajo {
        Ajo::steered_simulation("demo", "v", "echo", &["running"], b"cfg")
    }

    #[test]
    fn incarnation_preserves_order_and_hides_tasks() {
        let njs = Njs::new("v", Tsi::with_builtins());
        let ajo = simple_ajo();
        let script = njs.incarnate(&ajo).unwrap();
        assert_eq!(script.lines.len(), ajo.tasks.len());
        // CopyIn and LaunchProxy both precede Run
        let run_pos = script
            .lines
            .iter()
            .position(|l| matches!(l, ScriptLine::Run { .. }))
            .unwrap();
        assert!(script.lines[..run_pos]
            .iter()
            .any(|l| matches!(l, ScriptLine::CopyIn { .. })));
        assert!(script.lines[..run_pos]
            .iter()
            .any(|l| matches!(l, ScriptLine::LaunchProxy { .. })));
    }

    #[test]
    fn job_lifecycle_queued_to_failed_on_missing_output() {
        // steered_simulation spools output.dat which `echo` never creates
        let mut njs = Njs::new("v", Tsi::with_builtins());
        let id = njs.consign(simple_ajo(), "alice").unwrap();
        assert_eq!(njs.status(id, "alice"), Some(&JobStatus::Queued));
        njs.run_job(id);
        assert!(matches!(
            njs.status(id, "alice"),
            Some(JobStatus::Failed(_))
        ));
    }

    #[test]
    fn job_succeeds_when_app_produces_output() {
        let mut njs = Njs::new("v", Tsi::with_builtins());
        let mut ajo = Ajo::new("writer", "v");
        let w = ajo.add_task(
            Task::Execute {
                command: "write".into(),
                args: vec!["output.dat".into(), "42".into()],
            },
            &[],
        );
        ajo.add_task(
            Task::StageOut {
                path: "output.dat".into(),
            },
            &[w],
        );
        let id = njs.consign(ajo, "alice").unwrap();
        njs.run_job(id);
        assert_eq!(njs.status(id, "alice"), Some(&JobStatus::Done));
        let outcome = njs.fetch(id, "alice").unwrap();
        assert_eq!(outcome.spooled["output.dat"], b"42");
    }

    #[test]
    fn non_owner_cannot_query_or_fetch() {
        let mut njs = Njs::new("v", Tsi::with_builtins());
        let id = njs.consign(simple_ajo(), "alice").unwrap();
        assert!(njs.status(id, "eve").is_none());
        njs.run_job(id);
        assert!(njs.fetch(id, "eve").is_none());
    }

    #[test]
    fn broken_dag_rejected_at_consign() {
        let mut njs = Njs::new("v", Tsi::with_builtins());
        let mut ajo = Ajo::new("bad", "v");
        ajo.tasks.push(crate::ajo::AjoTask {
            id: 0,
            task: Task::StageOut { path: "x".into() },
            after: vec![0],
        });
        assert!(njs.consign(ajo, "alice").is_err());
        assert_eq!(njs.job_count(), 0);
    }

    #[test]
    fn rerunning_finished_job_is_noop() {
        let mut njs = Njs::new("v", Tsi::with_builtins());
        let id = njs.consign(simple_ajo(), "alice").unwrap();
        njs.run_job(id);
        let first = njs.status(id, "alice").cloned();
        njs.run_job(id);
        assert_eq!(njs.status(id, "alice").cloned(), first);
    }

    #[test]
    fn run_all_queued_runs_everything() {
        let mut njs = Njs::new("v", Tsi::with_builtins());
        for _ in 0..3 {
            njs.consign(simple_ajo(), "alice").unwrap();
        }
        assert_eq!(njs.run_all_queued(), 3);
        assert_eq!(njs.run_all_queued(), 0);
    }
}
