//! # unicore — UNICORE-style grid middleware
//!
//! §3.1 of the paper: "The UNICORE Grid system consists of three distinct
//! software tiers: \[the\] UNICORE client …, UNICORE servers that are divided
//! into gateways acting as point-of-entry into the protected domains of the
//! HPC centres and Network Job Supervisors (NJSs) that adapt the abstract
//! UNICORE job for the specific HPC system, \[and\] UNICORE target systems …
//! \[where\] a Target System Interface (TSI) … performs the communication
//! with the NJS."
//!
//! This crate rebuilds that stack:
//!
//! * [`cert`] — the X.509/SSO *trust-flow model*: certificate authorities,
//!   user certificates, signed requests (toy digests, real trust topology —
//!   see DESIGN.md §2 on substitutions).
//! * [`ajo`] — Abstract Job Objects: serialized task DAGs, "sent via ssl as
//!   serialised Java objects" (§2.2) — here serialized with serde.
//! * [`njs`] — the NJS with *incarnation*: "the AJOs are translated into
//!   Perl scripts for a target machine. This process is known as
//!   incarnation … it allows the details of the scripts used to run the
//!   workflow to be hidden from the application" (§2.2).
//! * [`tsi`] — the Target System Interface: executes incarnated scripts in
//!   a sandboxed in-process target system (spool directories, registered
//!   applications).
//! * [`gateway`] — the single-port security gateway: "handling of all
//!   communication over a single fixed TCP server-port" (§3.1); every
//!   operation is one [`gateway::GatewayMsg`] transaction.
//! * [`client`] — the user-side client: build, consign, poll, fetch.
//! * [`proxy`] — the paper's contribution (§3.3): the VISIT proxy-server /
//!   proxy-client pair that emulates VISIT's connection-oriented protocol
//!   by *polling* over UNICORE's transactional protocol, including the
//!   collaborative fan-out with master-only steering folded into the
//!   proxy-server "so that all users participating in the collaboration
//!   have to authenticate to the UNICORE system".

pub mod ajo;
pub mod cert;
pub mod client;
pub mod gateway;
pub mod njs;
pub mod proxy;
pub mod tsi;

pub use ajo::{Ajo, AjoTask, Task};
pub use cert::{CertAuthority, Certificate, SignedRequest, TrustStore};
pub use client::UnicoreClient;
pub use gateway::{Gateway, GatewayError, GatewayMsg, GatewayReply};
pub use njs::{JobId, JobStatus, Njs};
pub use proxy::{ProxySessionId, VisitProxyClient, VisitProxyServer};
pub use tsi::{Tsi, TsiOutcome};
