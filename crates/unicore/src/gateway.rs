//! The UNICORE Gateway: authenticated single-port entry.
//!
//! §3.1: gateways act "as point-of-entry into the protected domains of the
//! HPC centres", and UNICORE's firewall-friendliness comes from "handling
//! of all communication over a single fixed TCP server-port". We model that
//! by funnelling *every* operation — job consignment, status polls, outcome
//! fetches, and the VISIT proxy transactions of §3.3 — through one
//! [`Gateway::transact`] entry point taking a [`SignedRequest`] and
//! returning a [`GatewayReply`]. §2.2: "the application could traverse
//! firewalls since the UNICORE architecture places security Gateways at the
//! firewall boundary."

use crate::ajo::Ajo;
use crate::cert::{digest, SignedRequest, TrustStore};
use crate::njs::{JobId, JobStatus, Njs};
use crate::proxy::{ProxySessionId, VisitProxyServer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use visit::link::FrameLink;

/// All operations that can cross the gateway's single port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayMsg {
    /// Submit an AJO to its Vsite.
    Consign(Ajo),
    /// Drive queued jobs at a Vsite (operator tick; the real NJS runs its
    /// batch queue asynchronously — our target system is synchronous).
    RunQueued {
        /// Vsite to tick.
        vsite: String,
    },
    /// Query job status.
    Status {
        /// Vsite owning the job.
        vsite: String,
        /// The job.
        job: u64,
    },
    /// Fetch spooled outcome files of a finished job.
    Fetch {
        /// Vsite owning the job.
        vsite: String,
        /// The job.
        job: u64,
    },
    /// Attach a steering session to a job's VISIT proxy (§3.3: every
    /// collaborator authenticates to UNICORE — this is where).
    ProxyAttach {
        /// Vsite hosting the proxy.
        vsite: String,
        /// Steering service name.
        service: String,
    },
    /// One steering poll transaction: deliver params, collect fresh frames.
    ProxyExchange {
        /// Vsite hosting the proxy.
        vsite: String,
        /// Steering service name.
        service: String,
        /// The caller's session.
        session: ProxySessionId,
        /// Raw steering parameter frames (accepted from the master only).
        params: Vec<Vec<u8>>,
    },
    /// Move the master role to another session.
    ProxyPassMaster {
        /// Vsite hosting the proxy.
        vsite: String,
        /// Steering service name.
        service: String,
        /// Session to promote.
        to: ProxySessionId,
    },
}

/// Replies from the gateway.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayReply {
    /// Job accepted with this id.
    Accepted(JobId),
    /// Number of queued jobs run.
    Ran(usize),
    /// Current job status.
    Status(JobStatus),
    /// Spooled outcome files.
    Outcome(Vec<(String, Vec<u8>)>),
    /// New proxy session (plus the per-job challenge the simulation side
    /// authenticated with).
    ProxySession(ProxySessionId),
    /// Fresh data frames from a proxy exchange.
    ProxyFrames(Vec<Vec<u8>>),
    /// Master role moved (or not).
    MasterPassed(bool),
    /// Request refused.
    Denied(GatewayError),
}

/// Refusal reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// Certificate/signature failed verification.
    AuthFailed,
    /// No such Vsite behind this gateway.
    UnknownVsite(String),
    /// No such job / not the owner.
    UnknownJob,
    /// No such steering service.
    UnknownService(String),
    /// The AJO failed validation.
    BadAjo,
    /// No such proxy session.
    UnknownSession,
}

/// Gateway traffic counters (experiment EU1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GatewayStats {
    /// Transactions processed (= connections on the single port).
    pub transactions: u64,
    /// Transactions rejected at authentication.
    pub auth_rejected: u64,
    /// Proxy exchanges served.
    pub proxy_exchanges: u64,
}

/// The gateway plus the protected domain behind it (its Vsites and any
/// live VISIT proxies).
pub struct Gateway {
    /// Gateway name (e.g. `"fzj-gateway"`).
    pub name: String,
    trust: TrustStore,
    vsites: BTreeMap<String, Njs>,
    proxies: HashMap<(String, String), VisitProxyServer<Box<dyn FrameLink>>>,
    stats: GatewayStats,
}

impl Gateway {
    /// A gateway trusting the given store.
    pub fn new(name: &str, trust: TrustStore) -> Self {
        Gateway {
            name: name.to_string(),
            trust,
            vsites: BTreeMap::new(),
            proxies: HashMap::new(),
            stats: GatewayStats::default(),
        }
    }

    /// Put a Vsite (NJS + target system) behind this gateway.
    pub fn add_vsite(&mut self, njs: Njs) {
        self.vsites.insert(njs.vsite.clone(), njs);
    }

    /// Vsite names behind this gateway (sorted — `BTreeMap` key order).
    pub fn vsite_names(&self) -> Vec<String> {
        self.vsites.keys().cloned().collect()
    }

    /// Mutable access to a Vsite's NJS (operator-side, inside the
    /// protected domain — not reachable through the port).
    pub fn njs_mut(&mut self, vsite: &str) -> Option<&mut Njs> {
        self.vsites.get_mut(vsite)
    }

    /// Register a live VISIT proxy for `(vsite, service)`. Called by the
    /// session orchestration when a job with a `StartVisitProxy` task
    /// starts (the TSI records the service name; the simulation's link is
    /// handed in here).
    pub fn register_proxy(&mut self, vsite: &str, proxy: VisitProxyServer<Box<dyn FrameLink>>) {
        self.proxies
            .insert((vsite.to_string(), proxy.service.clone()), proxy);
    }

    /// Access a registered proxy (to pump its simulation link).
    pub fn proxy_mut(
        &mut self,
        vsite: &str,
        service: &str,
    ) -> Option<&mut VisitProxyServer<Box<dyn FrameLink>>> {
        self.proxies
            .get_mut(&(vsite.to_string(), service.to_string()))
    }

    /// The per-job challenge for a service behind this gateway: both the
    /// simulation (via its job environment) and the gateway derive it from
    /// the same job token.
    pub fn challenge(&self, vsite: &str, service: &str) -> u64 {
        digest(format!("{}/{}/{}", self.name, vsite, service).as_bytes())
    }

    /// Counters so far.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// The single entry point: verify the signed request, dispatch.
    pub fn transact(&mut self, req: &SignedRequest<GatewayMsg>) -> GatewayReply {
        self.stats.transactions += 1;
        if !req.verify(&self.trust) {
            self.stats.auth_rejected += 1;
            return GatewayReply::Denied(GatewayError::AuthFailed);
        }
        let owner = req.cert.subject.clone();
        match &req.payload {
            GatewayMsg::Consign(ajo) => {
                let Some(njs) = self.vsites.get_mut(&ajo.vsite) else {
                    return GatewayReply::Denied(GatewayError::UnknownVsite(ajo.vsite.clone()));
                };
                match njs.consign(ajo.clone(), &owner) {
                    Ok(id) => GatewayReply::Accepted(id),
                    Err(_) => GatewayReply::Denied(GatewayError::BadAjo),
                }
            }
            GatewayMsg::RunQueued { vsite } => {
                let Some(njs) = self.vsites.get_mut(vsite) else {
                    return GatewayReply::Denied(GatewayError::UnknownVsite(vsite.clone()));
                };
                GatewayReply::Ran(njs.run_all_queued())
            }
            GatewayMsg::Status { vsite, job } => {
                let Some(njs) = self.vsites.get(vsite) else {
                    return GatewayReply::Denied(GatewayError::UnknownVsite(vsite.clone()));
                };
                match njs.status(JobId(*job), &owner) {
                    Some(s) => GatewayReply::Status(s.clone()),
                    None => GatewayReply::Denied(GatewayError::UnknownJob),
                }
            }
            GatewayMsg::Fetch { vsite, job } => {
                let Some(njs) = self.vsites.get(vsite) else {
                    return GatewayReply::Denied(GatewayError::UnknownVsite(vsite.clone()));
                };
                match njs.fetch(JobId(*job), &owner) {
                    Some(outcome) => {
                        // spooled is a BTreeMap: path-sorted already
                        let files: Vec<(String, Vec<u8>)> = outcome
                            .spooled
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        GatewayReply::Outcome(files)
                    }
                    None => GatewayReply::Denied(GatewayError::UnknownJob),
                }
            }
            GatewayMsg::ProxyAttach { vsite, service } => {
                let key = (vsite.clone(), service.clone());
                match self.proxies.get_mut(&key) {
                    Some(p) => GatewayReply::ProxySession(p.attach()),
                    None => GatewayReply::Denied(GatewayError::UnknownService(service.clone())),
                }
            }
            GatewayMsg::ProxyExchange {
                vsite,
                service,
                session,
                params,
            } => {
                self.stats.proxy_exchanges += 1;
                let key = (vsite.clone(), service.clone());
                match self.proxies.get_mut(&key) {
                    Some(p) => match p.exchange(*session, params.clone()) {
                        Some(frames) => GatewayReply::ProxyFrames(frames),
                        None => GatewayReply::Denied(GatewayError::UnknownSession),
                    },
                    None => GatewayReply::Denied(GatewayError::UnknownService(service.clone())),
                }
            }
            GatewayMsg::ProxyPassMaster { vsite, service, to } => {
                let key = (vsite.clone(), service.clone());
                match self.proxies.get_mut(&key) {
                    Some(p) => GatewayReply::MasterPassed(p.pass_master(*to)),
                    None => GatewayReply::Denied(GatewayError::UnknownService(service.clone())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ajo::Task;
    use crate::cert::CertAuthority;
    use crate::tsi::Tsi;

    fn rig() -> (Gateway, crate::cert::Certificate, crate::cert::PrivateKey) {
        let ca = CertAuthority::new("UK-eScience-CA", 1);
        let mut trust = TrustStore::new();
        trust.trust(&ca);
        let (cert, key) = ca.issue("CN=brooke");
        let mut gw = Gateway::new("man-gateway", trust);
        gw.add_vsite(Njs::new("csar", Tsi::with_builtins()));
        (gw, cert, key)
    }

    fn good_ajo() -> Ajo {
        let mut ajo = Ajo::new("writer", "csar");
        let w = ajo.add_task(
            Task::Execute {
                command: "write".into(),
                args: vec!["out".into(), "data".into()],
            },
            &[],
        );
        ajo.add_task(Task::StageOut { path: "out".into() }, &[w]);
        ajo
    }

    #[test]
    fn full_job_path_through_single_port() {
        let (mut gw, cert, key) = rig();
        let consign = SignedRequest::new(cert.clone(), &key, GatewayMsg::Consign(good_ajo()));
        let GatewayReply::Accepted(id) = gw.transact(&consign) else {
            panic!("consign refused");
        };
        let run = SignedRequest::new(
            cert.clone(),
            &key,
            GatewayMsg::RunQueued {
                vsite: "csar".into(),
            },
        );
        assert_eq!(gw.transact(&run), GatewayReply::Ran(1));
        let status = SignedRequest::new(
            cert.clone(),
            &key,
            GatewayMsg::Status {
                vsite: "csar".into(),
                job: id.0,
            },
        );
        assert_eq!(gw.transact(&status), GatewayReply::Status(JobStatus::Done));
        let fetch = SignedRequest::new(
            cert,
            &key,
            GatewayMsg::Fetch {
                vsite: "csar".into(),
                job: id.0,
            },
        );
        let GatewayReply::Outcome(files) = gw.transact(&fetch) else {
            panic!("fetch refused");
        };
        assert_eq!(files, vec![("out".to_string(), b"data".to_vec())]);
        assert_eq!(gw.stats().transactions, 4);
    }

    #[test]
    fn untrusted_cert_rejected_at_the_port() {
        let (mut gw, _cert, _key) = rig();
        let rogue = CertAuthority::new("Rogue", 9);
        let (rcert, rkey) = rogue.issue("CN=mallory");
        let req = SignedRequest::new(rcert, &rkey, GatewayMsg::Consign(good_ajo()));
        assert_eq!(
            gw.transact(&req),
            GatewayReply::Denied(GatewayError::AuthFailed)
        );
        assert_eq!(gw.stats().auth_rejected, 1);
    }

    #[test]
    fn cross_user_job_access_denied() {
        let ca = CertAuthority::new("CA", 1);
        let mut trust = TrustStore::new();
        trust.trust(&ca);
        let (alice, akey) = ca.issue("CN=alice");
        let (eve, ekey) = ca.issue("CN=eve");
        let mut gw = Gateway::new("gw", trust);
        gw.add_vsite(Njs::new("v", Tsi::with_builtins()));
        let mut ajo = good_ajo();
        ajo.vsite = "v".into();
        let GatewayReply::Accepted(id) =
            gw.transact(&SignedRequest::new(alice, &akey, GatewayMsg::Consign(ajo)))
        else {
            panic!()
        };
        // eve is authenticated but not the owner
        let probe = SignedRequest::new(
            eve,
            &ekey,
            GatewayMsg::Status {
                vsite: "v".into(),
                job: id.0,
            },
        );
        assert_eq!(
            gw.transact(&probe),
            GatewayReply::Denied(GatewayError::UnknownJob)
        );
    }

    #[test]
    fn unknown_vsite_and_service_denied() {
        let (mut gw, cert, key) = rig();
        let mut ajo = good_ajo();
        ajo.vsite = "nowhere".into();
        assert_eq!(
            gw.transact(&SignedRequest::new(
                cert.clone(),
                &key,
                GatewayMsg::Consign(ajo)
            )),
            GatewayReply::Denied(GatewayError::UnknownVsite("nowhere".into()))
        );
        assert_eq!(
            gw.transact(&SignedRequest::new(
                cert,
                &key,
                GatewayMsg::ProxyAttach {
                    vsite: "csar".into(),
                    service: "ghost".into()
                },
            )),
            GatewayReply::Denied(GatewayError::UnknownService("ghost".into()))
        );
    }

    #[test]
    fn challenge_is_deterministic_per_service() {
        let (gw, _, _) = rig();
        assert_eq!(gw.challenge("csar", "s"), gw.challenge("csar", "s"));
        assert_ne!(gw.challenge("csar", "s"), gw.challenge("csar", "t"));
    }
}
