//! The VISIT–UNICORE steering extension: proxy-server and proxy-client.
//!
//! §3.3 is the paper's central technical contribution: UNICORE's protocol
//! is transactional ("separate transactions that do not require a stateful
//! connection"), VISIT's is connection-oriented with the simulation as
//! client. The bridge: "we have designed and implemented a
//! connection-oriented protocol on top of the UNICORE protocol. The
//! simulation-end of that connection is formed by VISIT proxy-servers which
//! are separate processes running on each target system. The other end …
//! is located at the UNICORE client, implemented as a client-plugin and
//! acting as a VISIT proxy-client. By polling the target system for new
//! data, that plugin is able to emulate the server capabilities that are
//! required for the VISIT connection."
//!
//! Collaboration (also §3.3): "For the VISIT-UNICORE extension this
//! \[vbroker\] functionality has been moved into the VISIT proxy-server
//! running on the UNICORE target system. This has the advantage that all
//! users participating in the collaboration have to authenticate to the
//! UNICORE system." Hence [`VisitProxyServer`] keeps a broadcast log that
//! *every* attached session reads, while steering parameters are accepted
//! from the *master* session only.

use crate::cert::digest;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;
use visit::link::{FrameLink, LinkError};
use visit::value::VisitValue;
use visit::wire::{Frame, MsgKind};
use visit::Password;

/// Identifies one attached proxy-client (steering plugin) session.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ProxySessionId(pub u64);

/// Counters for the proxy pair experiment (EV3).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProxyStats {
    /// Data frames logged from the simulation.
    pub sim_frames: u64,
    /// Frames handed to polling sessions (fan-out).
    pub frames_delivered: u64,
    /// Steering parameters accepted from the master.
    pub params_accepted: u64,
    /// Steering parameters rejected (non-master senders).
    pub params_rejected: u64,
    /// Requests from the simulation answered from the param queue.
    pub requests_served: u64,
    /// Requests answered NoData.
    pub requests_empty: u64,
}

/// The proxy-server: runs "on the target system" beside the TSI, speaks
/// VISIT to the simulation and exposes poll-transactions to plugins.
pub struct VisitProxyServer<L: FrameLink> {
    /// Steering service name (published via the job's AJO).
    pub service: String,
    sim: L,
    password: Password,
    challenge: u64,
    authed: bool,
    /// Broadcast history of raw Data frames.
    log: Vec<Vec<u8>>,
    /// Session cursors into `log`.
    sessions: BTreeMap<ProxySessionId, usize>,
    master: Option<ProxySessionId>,
    /// Queued steering parameter frames (raw Reply frames) per tag.
    params: HashMap<u32, VecDeque<Vec<u8>>>,
    next_session: u64,
    stats: ProxyStats,
}

impl<L: FrameLink> VisitProxyServer<L> {
    /// Wrap the server end of the simulation's link. The `challenge` is the
    /// per-job token UNICORE issued at submission (this is what upgrades
    /// VISIT's clear-text password into gateway-backed auth).
    pub fn new(service: &str, sim: L, password: Password, challenge: u64) -> Self {
        VisitProxyServer {
            service: service.to_string(),
            sim,
            password,
            challenge,
            authed: false,
            log: Vec::new(),
            sessions: BTreeMap::new(),
            master: None,
            params: HashMap::new(),
            next_session: 1,
            stats: ProxyStats::default(),
        }
    }

    /// Derive the per-job challenge from a job identifier the way the
    /// gateway does (deterministic, shared by both ends).
    pub fn challenge_for(job_token: &str) -> u64 {
        digest(job_token.as_bytes())
    }

    /// Handle at most one frame from the simulation, waiting up to `poll`.
    /// Returns `Ok(false)` when the simulation said Bye.
    pub fn pump(&mut self, poll: Duration) -> Result<bool, LinkError> {
        let raw = match self.sim.recv_timeout(poll) {
            Ok(r) => r,
            Err(LinkError::Timeout) => return Ok(true),
            Err(e) => return Err(e),
        };
        let frame = Frame::decode(&raw).ok_or(LinkError::Io("bad frame".into()))?;
        match frame.kind {
            MsgKind::Hello => {
                let ok = matches!(&frame.value, Some(VisitValue::Bytes(t)) if self.password.verify(t, self.challenge));
                let reply = if ok {
                    self.authed = true;
                    MsgKind::HelloAck
                } else {
                    MsgKind::HelloReject
                };
                self.sim.send(&Frame::bare(reply, 0).encode())?;
                Ok(true)
            }
            MsgKind::Data if self.authed => {
                self.stats.sim_frames += 1;
                self.log.push(raw);
                Ok(true)
            }
            MsgKind::Request if self.authed => {
                let tag = frame.tag;
                match self.params.get_mut(&tag).and_then(|q| q.pop_front()) {
                    Some(reply) => {
                        self.stats.requests_served += 1;
                        self.sim.send(&reply)?;
                    }
                    None => {
                        self.stats.requests_empty += 1;
                        self.sim.send(&Frame::bare(MsgKind::NoData, tag).encode())?;
                    }
                }
                Ok(true)
            }
            MsgKind::Bye => Ok(false),
            // unauthenticated data/requests are dropped silently
            _ => Ok(true),
        }
    }

    /// Attach a steering plugin session; the first one becomes master.
    pub fn attach(&mut self) -> ProxySessionId {
        let id = ProxySessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(id, 0);
        if self.master.is_none() {
            self.master = Some(id);
        }
        id
    }

    /// Detach a session; mastership passes to the lowest remaining id.
    pub fn detach(&mut self, id: ProxySessionId) {
        self.sessions.remove(&id);
        if self.master == Some(id) {
            self.master = self.sessions.keys().min().copied();
        }
    }

    /// Current master session.
    pub fn master(&self) -> Option<ProxySessionId> {
        self.master
    }

    /// Move the master role (must name an attached session).
    pub fn pass_master(&mut self, to: ProxySessionId) -> bool {
        if self.sessions.contains_key(&to) {
            self.master = Some(to);
            true
        } else {
            false
        }
    }

    /// One poll transaction from a plugin: deliver queued steering `params`
    /// (accepted only from the master) and return all log entries the
    /// session has not seen yet. This single call is the "emulation by
    /// polling" of §3.3.
    pub fn exchange(
        &mut self,
        session: ProxySessionId,
        incoming: Vec<Vec<u8>>,
    ) -> Option<Vec<Vec<u8>>> {
        let cursor = *self.sessions.get(&session)?;
        let is_master = self.master == Some(session);
        for p in incoming {
            if !is_master {
                self.stats.params_rejected += 1;
                continue;
            }
            if let Some(frame) = Frame::decode(&p) {
                if frame.kind == MsgKind::Reply {
                    self.stats.params_accepted += 1;
                    self.params.entry(frame.tag).or_default().push_back(p);
                }
            }
        }
        let fresh: Vec<Vec<u8>> = self.log[cursor..].to_vec();
        self.stats.frames_delivered += fresh.len() as u64;
        self.sessions.insert(session, self.log.len());
        Some(fresh)
    }

    /// Counters so far.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// Attached session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Drop log entries already delivered to every session (memory bound
    /// for long-running jobs).
    pub fn compact(&mut self) {
        let min = self
            .sessions
            .values()
            .copied()
            .min()
            .unwrap_or(self.log.len());
        if min > 0 {
            self.log.drain(..min);
            for c in self.sessions.values_mut() {
                *c -= min;
            }
        }
    }

    /// Current log length (for tests / diagnostics).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

/// The client-plugin end: maintains the latest data per tag for local
/// visualization tools and queues steering parameters for the next poll.
/// Transport-agnostic: `poll_with` takes the exchange function so the same
/// plugin runs over a direct call, a gateway transaction, or a network hop.
pub struct VisitProxyClient {
    /// This plugin's session at the proxy-server.
    pub session: ProxySessionId,
    latest: HashMap<u32, VisitValue>,
    pending: Vec<Vec<u8>>,
    /// Data frames received over the lifetime of the plugin.
    pub frames_received: u64,
}

impl VisitProxyClient {
    /// Plugin bound to an attached session id.
    pub fn new(session: ProxySessionId) -> Self {
        VisitProxyClient {
            session,
            latest: HashMap::new(),
            pending: Vec::new(),
            frames_received: 0,
        }
    }

    /// Queue a steering parameter for the simulation (sent on next poll).
    pub fn queue_param(&mut self, tag: u32, value: VisitValue) {
        let frame = Frame::with_value(MsgKind::Reply, tag, visit::Endianness::native(), value);
        self.pending.push(frame.encode());
    }

    /// Number of parameters waiting to be sent.
    pub fn pending_params(&self) -> usize {
        self.pending.len()
    }

    /// Perform one poll: ship pending params, ingest returned data frames.
    /// Returns the number of fresh frames ingested.
    pub fn poll_with(
        &mut self,
        exchange: impl FnOnce(ProxySessionId, Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>>,
    ) -> usize {
        let params = std::mem::take(&mut self.pending);
        let Some(fresh) = exchange(self.session, params) else {
            return 0;
        };
        let mut n = 0;
        for raw in fresh {
            if let Some(frame) = Frame::decode(&raw) {
                if frame.kind == MsgKind::Data {
                    if let Some(v) = frame.value {
                        self.latest.insert(frame.tag, v);
                        n += 1;
                    }
                }
            }
        }
        self.frames_received += n as u64;
        n
    }

    /// Latest sample per tag (what the local AVS/Express module renders).
    pub fn latest(&self, tag: u32) -> Option<&VisitValue> {
        self.latest.get(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use visit::client::SteeringClient;
    use visit::link::MemLink;

    const TAG_DATA: u32 = 1;
    const TAG_PARAM: u32 = 2;

    fn rig() -> (SteeringClient<MemLink>, VisitProxyServer<MemLink>) {
        let (sim_side, proxy_side) = MemLink::pair();
        let pw = Password::Keyed("job-secret".into());
        let challenge = VisitProxyServer::<MemLink>::challenge_for("job-17");
        let mut proxy = VisitProxyServer::new("demo-steer", proxy_side, pw.clone(), challenge);
        let t = thread::spawn(move || {
            // pump until the Hello is answered
            for _ in 0..10 {
                proxy.pump(Duration::from_millis(50)).unwrap();
                if proxy.authed {
                    break;
                }
            }
            proxy
        });
        let client =
            SteeringClient::connect(sim_side, &pw, challenge, Duration::from_secs(1)).unwrap();
        (client, t.join().unwrap())
    }

    #[test]
    fn simulation_authenticates_through_job_challenge() {
        let (_c, proxy) = rig();
        assert!(proxy.authed);
    }

    #[test]
    fn wrong_challenge_rejected() {
        let (sim_side, proxy_side) = MemLink::pair();
        let pw = Password::Keyed("s".into());
        let mut proxy = VisitProxyServer::new("x", proxy_side, pw.clone(), 1);
        let t = thread::spawn(move || {
            proxy.pump(Duration::from_millis(200)).unwrap();
            proxy
        });
        // client uses challenge 2 — token won't verify
        let r = SteeringClient::connect(sim_side, &pw, 2, Duration::from_secs(1));
        assert!(r.is_err());
        assert!(!t.join().unwrap().authed);
    }

    #[test]
    fn data_flows_sim_to_plugin_via_polling() {
        let (mut c, mut proxy) = rig();
        c.send(TAG_DATA, VisitValue::F32(vec![1.0, 2.0, 3.0]))
            .unwrap();
        c.send(TAG_DATA, VisitValue::F32(vec![4.0])).unwrap();
        proxy.pump(Duration::from_millis(100)).unwrap();
        proxy.pump(Duration::from_millis(100)).unwrap();
        let s = proxy.attach();
        let mut plugin = VisitProxyClient::new(s);
        let n = plugin.poll_with(|sess, p| proxy.exchange(sess, p));
        assert_eq!(n, 2);
        assert_eq!(plugin.latest(TAG_DATA), Some(&VisitValue::F32(vec![4.0])));
        // second poll: nothing new
        assert_eq!(plugin.poll_with(|sess, p| proxy.exchange(sess, p)), 0);
    }

    #[test]
    fn steering_param_reaches_simulation() {
        let (c, mut proxy) = rig();
        let s = proxy.attach();
        let mut plugin = VisitProxyClient::new(s);
        plugin.queue_param(TAG_PARAM, VisitValue::scalar_f64(0.07));
        plugin.poll_with(|sess, p| proxy.exchange(sess, p));
        // simulation requests; pump serves from param queue
        let sim = thread::spawn(move || {
            let mut c = c;
            let got = c.request(TAG_PARAM).unwrap();
            assert_eq!(got, Some(VisitValue::scalar_f64(0.07)));
            c
        });
        // pump until request served
        for _ in 0..20 {
            proxy.pump(Duration::from_millis(20)).unwrap();
            if proxy.stats().requests_served == 1 {
                break;
            }
        }
        sim.join().unwrap();
        assert_eq!(proxy.stats().params_accepted, 1);
    }

    #[test]
    fn non_master_params_rejected() {
        let (_c, mut proxy) = rig();
        let master = proxy.attach();
        let passive = proxy.attach();
        assert_eq!(proxy.master(), Some(master));
        let mut plugin = VisitProxyClient::new(passive);
        plugin.queue_param(TAG_PARAM, VisitValue::scalar_f64(9.9));
        plugin.poll_with(|sess, p| proxy.exchange(sess, p));
        assert_eq!(proxy.stats().params_rejected, 1);
        assert_eq!(proxy.stats().params_accepted, 0);
    }

    #[test]
    fn every_session_sees_every_frame() {
        let (mut c, mut proxy) = rig();
        let s1 = proxy.attach();
        let s2 = proxy.attach();
        c.send(TAG_DATA, VisitValue::scalar_i32(5)).unwrap();
        proxy.pump(Duration::from_millis(100)).unwrap();
        let mut p1 = VisitProxyClient::new(s1);
        let mut p2 = VisitProxyClient::new(s2);
        assert_eq!(p1.poll_with(|s, p| proxy.exchange(s, p)), 1);
        assert_eq!(p2.poll_with(|s, p| proxy.exchange(s, p)), 1);
        assert_eq!(p1.latest(TAG_DATA), p2.latest(TAG_DATA));
    }

    #[test]
    fn master_passes_on_detach_and_explicitly() {
        let (_c, mut proxy) = rig();
        let a = proxy.attach();
        let b = proxy.attach();
        proxy.detach(a);
        assert_eq!(proxy.master(), Some(b));
        let c2 = proxy.attach();
        assert!(proxy.pass_master(c2));
        assert_eq!(proxy.master(), Some(c2));
        assert!(!proxy.pass_master(ProxySessionId(999)));
    }

    #[test]
    fn compact_bounds_log_growth() {
        let (mut c, mut proxy) = rig();
        let s = proxy.attach();
        for i in 0..10 {
            c.send(TAG_DATA, VisitValue::scalar_i32(i)).unwrap();
        }
        for _ in 0..10 {
            proxy.pump(Duration::from_millis(50)).unwrap();
        }
        assert_eq!(proxy.log_len(), 10);
        let mut plugin = VisitProxyClient::new(s);
        plugin.poll_with(|sess, p| proxy.exchange(sess, p));
        proxy.compact();
        assert_eq!(proxy.log_len(), 0);
        // new data still delivered after compaction
        c.send(TAG_DATA, VisitValue::scalar_i32(99)).unwrap();
        proxy.pump(Duration::from_millis(50)).unwrap();
        assert_eq!(plugin.poll_with(|sess, p| proxy.exchange(sess, p)), 1);
        assert_eq!(plugin.latest(TAG_DATA), Some(&VisitValue::scalar_i32(99)));
    }

    #[test]
    fn unknown_session_exchange_fails() {
        let (_c, mut proxy) = rig();
        assert!(proxy.exchange(ProxySessionId(404), vec![]).is_none());
    }
}
