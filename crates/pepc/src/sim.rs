//! The steered PEPC simulation.
//!
//! §3.4's demo scenario: "a parallel simulation of a laser-plasma
//! interaction … for example, a particle beam striking a spherical plasma
//! target", with interactively steerable beam parameters
//! ("charge/intensity, direction"), laser parameters, and the ability to
//! "'assist' an initially random plasma system towards a cold, ordered
//! state suitable for use as quiescent initial conditions" (we expose that
//! assist as a velocity-damping steering parameter).
//!
//! Integration: velocity-Verlet leapfrog with cached forces; forces come
//! from the Barnes–Hut tree ([`crate::tree`]) plus the external beam/laser
//! fields.

// Component loops over `[f64; 3]` are written indexed (`for a in 0..3`);
// that is the clearest spelling for coupled kinematics updates.
#![allow(clippy::needless_range_loop)]

use crate::morton::{decompose, Domain};
use crate::tree::{Octree, TreeConfig};
use crate::Particle;
use gridsteer_ckpt::{CkptError, SectionWriter, Snapshot as CkptSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct PepcConfig {
    /// Number of plasma particles in the spherical target.
    pub n_target: usize,
    /// Target sphere radius.
    pub target_radius: f64,
    /// Time step.
    pub dt: f64,
    /// Tree parameters.
    pub tree: TreeConfig,
    /// Worker ranks for the domain decomposition (the "processor domains"
    /// shipped to the visualization).
    pub ranks: u16,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PepcConfig {
    fn default() -> Self {
        PepcConfig {
            n_target: 1000,
            target_radius: 1.0,
            dt: 0.005,
            tree: TreeConfig::default(),
            ranks: 4,
            seed: 7,
        }
    }
}

impl PepcConfig {
    /// A small fast configuration for tests.
    pub fn small() -> Self {
        PepcConfig {
            n_target: 200,
            ranks: 2,
            ..Default::default()
        }
    }
}

/// Steerable parameters (§3.4: alterable "while the application is
/// running").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteerParams {
    /// Beam field strength (accelerates beam-labelled particles).
    pub beam_intensity: f64,
    /// Beam direction (unit vector; renormalized on set).
    pub beam_dir: [f64; 3],
    /// Charge given to newly injected beam particles.
    pub beam_charge: f64,
    /// Laser field amplitude (oscillating E-field on every particle).
    pub laser_amplitude: f64,
    /// Laser angular frequency.
    pub laser_omega: f64,
    /// Per-step velocity damping ∈ \[0,1\] (0 = none; the "assist to cold
    /// ordered state" knob).
    pub damping: f64,
}

impl Default for SteerParams {
    fn default() -> Self {
        SteerParams {
            beam_intensity: 0.0,
            beam_dir: [1.0, 0.0, 0.0],
            beam_charge: -1.0,
            laser_amplitude: 0.0,
            laser_omega: 2.0,
            damping: 0.0,
        }
    }
}

/// A renderable snapshot — the "particle data-space comprising coordinates,
/// velocities, charge, processor number and tracking-label plus information
/// on the tree structure" that PEPC ships via VISIT every few steps (§3.4).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Positions as f32 triples (what goes on the wire).
    pub positions: Vec<[f32; 3]>,
    /// Velocities as f32 triples.
    pub velocities: Vec<[f32; 3]>,
    /// Charges.
    pub charges: Vec<f32>,
    /// Owning ranks.
    pub ranks: Vec<u16>,
    /// Tracking labels.
    pub labels: Vec<u32>,
    /// Per-rank domain boxes.
    pub domains: Vec<Domain>,
    /// Simulation step of this snapshot.
    pub step: u64,
}

impl Snapshot {
    /// Wire size in bytes if shipped raw (positions+velocities+charges+
    /// ranks+labels + domain boxes).
    pub fn byte_size(&self) -> usize {
        self.positions.len() * 12
            + self.velocities.len() * 12
            + self.charges.len() * 4
            + self.ranks.len() * 2
            + self.labels.len() * 4
            + self.domains.len() * 48
    }
}

/// The steered plasma simulation.
pub struct PepcSim {
    cfg: PepcConfig,
    /// Executor pool the per-step force evaluation dispatches onto.
    pool: std::sync::Arc<gridsteer_exec::ExecPool>,
    particles: Vec<Particle>,
    forces: Vec<[f64; 3]>,
    params: SteerParams,
    time: f64,
    step: u64,
    next_label: u32,
    /// Labels ≥ this are beam particles (feel the beam field).
    beam_label_start: u32,
    last_interactions: u64,
}

impl PepcSim {
    /// Build the §3.4 scenario: a cold spherical quasi-neutral plasma
    /// target centred at the origin.
    pub fn new(cfg: PepcConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut particles = Vec::with_capacity(cfg.n_target);
        for i in 0..cfg.n_target {
            let pos = loop {
                let p = [
                    rng.gen_range(-1.0..1.0) * cfg.target_radius,
                    rng.gen_range(-1.0..1.0) * cfg.target_radius,
                    rng.gen_range(-1.0..1.0) * cfg.target_radius,
                ];
                if p[0] * p[0] + p[1] * p[1] + p[2] * p[2] <= cfg.target_radius * cfg.target_radius
                {
                    break p;
                }
            };
            // weak-coupling normalization: |q| = 0.1 keeps the random
            // plasma near-collisionless so steering effects (laser heating,
            // assist damping) dominate numerical two-body heating
            let q = if i % 2 == 0 { 0.1 } else { -0.1 };
            let mut part = Particle::at(pos, q, i as u32);
            // small thermal velocities
            part.vel = [
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
            ];
            particles.push(part);
        }
        let next_label = particles.len() as u32;
        let mut sim = PepcSim {
            pool: gridsteer_exec::shared(cfg.tree.threads),
            forces: vec![[0.0; 3]; particles.len()],
            particles,
            params: SteerParams::default(),
            time: 0.0,
            step: 0,
            next_label,
            beam_label_start: u32::MAX,
            cfg,
            last_interactions: 0,
        };
        sim.recompute_forces();
        sim
    }

    /// Replace the executor pool the force evaluation dispatches onto
    /// (results are unaffected: the chunk grain is fixed).
    pub fn set_pool(&mut self, pool: std::sync::Arc<gridsteer_exec::ExecPool>) {
        self.pool = pool;
    }

    /// The executor pool this simulation dispatches onto.
    pub fn pool(&self) -> &std::sync::Arc<gridsteer_exec::ExecPool> {
        &self.pool
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True if the simulation holds no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Current steering parameters.
    pub fn params(&self) -> SteerParams {
        self.params
    }

    /// Steer: replace the parameter set (direction is renormalized;
    /// damping clamped to \[0,1\]).
    pub fn set_params(&mut self, mut p: SteerParams) {
        let norm = (p.beam_dir[0] * p.beam_dir[0]
            + p.beam_dir[1] * p.beam_dir[1]
            + p.beam_dir[2] * p.beam_dir[2])
            .sqrt();
        if norm > 1e-12 {
            for c in &mut p.beam_dir {
                *c /= norm;
            }
        } else {
            p.beam_dir = [1.0, 0.0, 0.0];
        }
        p.damping = p.damping.clamp(0.0, 1.0);
        self.params = p;
    }

    /// Inject `n` beam particles upstream of the target, moving along the
    /// current beam direction at `speed` (the "particle beam striking a
    /// spherical plasma target").
    pub fn inject_beam(&mut self, n: usize, speed: f64) {
        if self.beam_label_start == u32::MAX {
            self.beam_label_start = self.next_label;
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ self.next_label as u64);
        let d = self.params.beam_dir;
        let start = -2.5 * self.cfg.target_radius;
        for _ in 0..n {
            let jitter = [
                rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
            ];
            let pos = [
                start * d[0] + jitter[0],
                start * d[1] + jitter[1],
                start * d[2] + jitter[2],
            ];
            let mut p = Particle::at(pos, self.params.beam_charge, self.next_label);
            p.vel = [speed * d[0], speed * d[1], speed * d[2]];
            self.next_label += 1;
            self.particles.push(p);
        }
        self.forces = vec![[0.0; 3]; self.particles.len()];
        self.recompute_forces();
    }

    /// Number of injected beam particles.
    pub fn beam_count(&self) -> usize {
        if self.beam_label_start == u32::MAX {
            return 0;
        }
        self.particles
            .iter()
            .filter(|p| p.label >= self.beam_label_start)
            .count()
    }

    fn external_force(&self, p: &Particle) -> [f64; 3] {
        let mut f = [0.0f64; 3];
        // laser: linearly polarized along y, uniform envelope
        let e = self.params.laser_amplitude * (self.params.laser_omega * self.time).sin();
        f[1] += p.charge * e;
        // beam field: accelerates only beam particles along beam_dir
        if self.beam_label_start != u32::MAX && p.label >= self.beam_label_start {
            for a in 0..3 {
                f[a] += self.params.beam_intensity * self.params.beam_dir[a];
            }
        }
        f
    }

    fn recompute_forces(&mut self) {
        let tree = Octree::build(&self.particles, self.cfg.tree);
        let mut forces = tree.forces_with(&self.pool, &self.particles);
        self.last_interactions = tree.last_interactions();
        for (f, p) in forces.iter_mut().zip(&self.particles) {
            let ext = self.external_force(p);
            for a in 0..3 {
                f[a] += ext[a];
            }
        }
        self.forces = forces;
    }

    /// Advance one leapfrog step.
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        // kick + drift
        for (p, f) in self.particles.iter_mut().zip(&self.forces) {
            for a in 0..3 {
                p.vel[a] += 0.5 * dt * f[a] / p.mass;
                p.pos[a] += dt * p.vel[a];
            }
        }
        self.time += dt;
        // new forces at new positions
        self.recompute_forces();
        // kick + assist damping
        let keep = 1.0 - self.params.damping;
        for (p, f) in self.particles.iter_mut().zip(&self.forces) {
            for a in 0..3 {
                p.vel[a] += 0.5 * dt * f[a] / p.mass;
                p.vel[a] *= keep;
            }
        }
        self.step += 1;
    }

    /// Advance `n` steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Total kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        self.particles.iter().map(Particle::kinetic).sum()
    }

    /// Softened potential energy — O(N²); diagnostics and tests only.
    pub fn potential_energy(&self) -> f64 {
        crate::direct::potential_energy(&self.particles, self.cfg.tree.eps)
    }

    /// Total energy (kinetic + softened potential) — O(N²); diagnostics
    /// and tests only.
    pub fn total_energy(&self) -> f64 {
        self.kinetic_energy() + self.potential_energy()
    }

    /// Interactions performed in the last force evaluation.
    pub fn last_interactions(&self) -> u64 {
        self.last_interactions
    }

    /// Centre of mass of the beam particles (`None` if no beam).
    pub fn beam_centroid(&self) -> Option<[f64; 3]> {
        if self.beam_label_start == u32::MAX {
            return None;
        }
        let mut c = [0.0f64; 3];
        let mut n = 0usize;
        for p in &self.particles {
            if p.label >= self.beam_label_start {
                for a in 0..3 {
                    c[a] += p.pos[a];
                }
                n += 1;
            }
        }
        (n > 0).then(|| {
            for v in &mut c {
                *v /= n as f64;
            }
            c
        })
    }

    /// Produce the renderable snapshot: decompose domains, stamp ranks,
    /// and flatten the particle data-space to wire types.
    pub fn snapshot(&mut self) -> Snapshot {
        let domains = decompose(&mut self.particles, self.cfg.ranks);
        Snapshot {
            positions: self
                .particles
                .iter()
                .map(|p| [p.pos[0] as f32, p.pos[1] as f32, p.pos[2] as f32])
                .collect(),
            velocities: self
                .particles
                .iter()
                .map(|p| [p.vel[0] as f32, p.vel[1] as f32, p.vel[2] as f32])
                .collect(),
            charges: self.particles.iter().map(|p| p.charge as f32).collect(),
            ranks: self.particles.iter().map(|p| p.rank).collect(),
            labels: self.particles.iter().map(|p| p.label).collect(),
            domains,
            step: self.step,
        }
    }

    /// Direct access to the particles (diagnostics/tests).
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Lay the full simulation state into `snap` as the sections
    /// `pepc/meta` + `pepc/particles` + `pepc/forces`. Particles are
    /// serialized in their *current* array order — [`PepcSim::snapshot`]
    /// Morton-sorts them, so order is part of the observable state — and
    /// cached forces ride along because they feed the next half-kick.
    pub fn save_sections(&self, snap: &mut CkptSnapshot) {
        let mut w = SectionWriter::with_capacity(160);
        w.put_u64(self.cfg.n_target as u64);
        w.put_f64(self.cfg.target_radius);
        w.put_f64(self.cfg.dt);
        w.put_f64(self.cfg.tree.theta);
        w.put_f64(self.cfg.tree.eps);
        w.put_u64(self.cfg.tree.leaf_cap as u64);
        w.put_u64(self.cfg.tree.threads as u64);
        w.put_u16(self.cfg.ranks);
        w.put_u64(self.cfg.seed);
        w.put_f64(self.params.beam_intensity);
        for c in self.params.beam_dir {
            w.put_f64(c);
        }
        w.put_f64(self.params.beam_charge);
        w.put_f64(self.params.laser_amplitude);
        w.put_f64(self.params.laser_omega);
        w.put_f64(self.params.damping);
        w.put_f64(self.time);
        w.put_u64(self.step);
        w.put_u32(self.next_label);
        w.put_u32(self.beam_label_start);
        w.put_u64(self.last_interactions);
        snap.push(SEC_PEPC_META, 0, w.finish());
        let mut w = SectionWriter::with_capacity(self.particles.len() * PARTICLE_REC + 8);
        w.put_u64(self.particles.len() as u64);
        for p in &self.particles {
            for c in p.pos {
                w.put_f64(c);
            }
            for c in p.vel {
                w.put_f64(c);
            }
            w.put_f64(p.charge);
            w.put_f64(p.mass);
            w.put_u32(p.label);
            w.put_u16(p.rank);
        }
        snap.push(SEC_PEPC_PARTICLES, PARTICLE_CHUNK, w.finish());
        let mut w = SectionWriter::with_capacity(self.forces.len() * 24 + 8);
        w.put_u64(self.forces.len() as u64);
        for f in &self.forces {
            for c in f {
                w.put_f64(*c);
            }
        }
        snap.push(SEC_PEPC_FORCES, FORCE_CHUNK, w.finish());
    }

    /// Rebuild a simulation from the `pepc/*` sections of `snap` — the
    /// fresh-process restore path. Makes no RNG draws and no force
    /// evaluation: the cached forces come from the snapshot.
    pub fn from_snapshot(snap: &CkptSnapshot) -> Result<PepcSim, CkptError> {
        let mut r = snap.reader(SEC_PEPC_META)?;
        let cfg = PepcConfig {
            n_target: r.get_u64()? as usize,
            target_radius: r.get_f64()?,
            dt: r.get_f64()?,
            tree: TreeConfig {
                theta: r.get_f64()?,
                eps: r.get_f64()?,
                leaf_cap: r.get_u64()? as usize,
                threads: r.get_u64()? as usize,
            },
            ranks: r.get_u16()?,
            seed: r.get_u64()?,
        };
        let params = SteerParams {
            beam_intensity: r.get_f64()?,
            beam_dir: [r.get_f64()?, r.get_f64()?, r.get_f64()?],
            beam_charge: r.get_f64()?,
            laser_amplitude: r.get_f64()?,
            laser_omega: r.get_f64()?,
            damping: r.get_f64()?,
        };
        let time = r.get_f64()?;
        let step = r.get_u64()?;
        let next_label = r.get_u32()?;
        let beam_label_start = r.get_u32()?;
        let last_interactions = r.get_u64()?;
        r.expect_end()?;
        let mut r = snap.reader(SEC_PEPC_PARTICLES)?;
        let count = r.get_u64()? as usize;
        let mut particles = Vec::with_capacity(count);
        for _ in 0..count {
            particles.push(Particle {
                pos: [r.get_f64()?, r.get_f64()?, r.get_f64()?],
                vel: [r.get_f64()?, r.get_f64()?, r.get_f64()?],
                charge: r.get_f64()?,
                mass: r.get_f64()?,
                label: r.get_u32()?,
                rank: r.get_u16()?,
            });
        }
        r.expect_end()?;
        let mut r = snap.reader(SEC_PEPC_FORCES)?;
        let fcount = r.get_u64()? as usize;
        if fcount != count {
            return Err(CkptError::Corrupt {
                context: format!("{SEC_PEPC_FORCES}: {fcount} forces for {count} particles"),
            });
        }
        let mut forces = Vec::with_capacity(fcount);
        for _ in 0..fcount {
            forces.push([r.get_f64()?, r.get_f64()?, r.get_f64()?]);
        }
        r.expect_end()?;
        Ok(PepcSim {
            pool: gridsteer_exec::shared(cfg.tree.threads),
            particles,
            forces,
            params,
            time,
            step,
            next_label,
            beam_label_start,
            cfg,
            last_interactions,
        })
    }

    /// Replace this simulation's state from the `pepc/*` sections of
    /// `snap`, keeping the current pool — the in-process restore path.
    pub fn restore_sections(&mut self, snap: &CkptSnapshot) -> Result<(), CkptError> {
        let mut fresh = PepcSim::from_snapshot(snap)?;
        fresh.pool = std::sync::Arc::clone(&self.pool);
        *self = fresh;
        Ok(())
    }
}

/// Snapshot section names for the plasma simulation.
pub const SEC_PEPC_META: &str = "pepc/meta";
/// In-order particle records (pos+vel+charge+mass as raw f64 bits,
/// label, rank).
pub const SEC_PEPC_PARTICLES: &str = "pepc/particles";
/// Cached forces from the last evaluation (feed the next half-kick).
pub const SEC_PEPC_FORCES: &str = "pepc/forces";

/// Serialized particle record size: 8 f64 + label u32 + rank u16.
const PARTICLE_REC: usize = 8 * 8 + 4 + 2;
/// Delta grain: 64 particle records per dirty chunk.
const PARTICLE_CHUNK: u32 = (PARTICLE_REC * 64) as u32;
/// Delta grain for the force cache: 64 triples per dirty chunk.
const FORCE_CHUNK: u32 = 24 * 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_roughly_conserved_without_steering() {
        let mut sim = PepcSim::new(PepcConfig::small());
        let e0 = sim.total_energy();
        sim.step_n(40);
        let e1 = sim.total_energy();
        let drift = ((e1 - e0) / e0.abs()).abs();
        assert!(drift < 0.05, "energy drift {drift} (e0={e0}, e1={e1})");
    }

    #[test]
    fn damping_cools_the_plasma() {
        let mut sim = PepcSim::new(PepcConfig::small());
        let k0 = sim.kinetic_energy();
        let mut p = sim.params();
        p.damping = 0.2;
        sim.set_params(p);
        sim.step_n(40);
        let k1 = sim.kinetic_energy();
        assert!(
            k1 < k0 * 0.2,
            "assist-to-cold-state failed: K {k0:.4} → {k1:.4}"
        );
    }

    #[test]
    fn laser_heats_the_plasma() {
        let mut cold = PepcSim::new(PepcConfig::small());
        let mut hot = PepcSim::new(PepcConfig::small());
        let mut p = hot.params();
        // run long enough to cover a good part of the ω=2 oscillation
        // (100 steps × dt 0.005 = t 0.5, i.e. ωt = 1 rad)
        p.laser_amplitude = 10.0;
        hot.set_params(p);
        cold.step_n(100);
        hot.step_n(100);
        assert!(
            hot.kinetic_energy() > cold.kinetic_energy() * 1.5,
            "laser had no effect: {} vs {}",
            hot.kinetic_energy(),
            cold.kinetic_energy()
        );
    }

    #[test]
    fn beam_advances_towards_target_and_steers() {
        let mut sim = PepcSim::new(PepcConfig::small());
        let mut p = sim.params();
        p.beam_intensity = 1.0;
        sim.set_params(p);
        sim.inject_beam(20, 2.0);
        assert_eq!(sim.beam_count(), 20);
        let c0 = sim.beam_centroid().unwrap();
        sim.step_n(20);
        let c1 = sim.beam_centroid().unwrap();
        assert!(c1[0] > c0[0] + 0.1, "beam did not advance: {c0:?} → {c1:?}");
        // steer the beam direction mid-run (the §3.4 capability)
        let mut p = sim.params();
        p.beam_dir = [0.0, 0.0, 1.0];
        sim.set_params(p);
        let z0 = sim.beam_centroid().unwrap()[2];
        sim.step_n(30);
        let z1 = sim.beam_centroid().unwrap()[2];
        assert!(z1 > z0, "redirected beam did not respond");
    }

    #[test]
    fn beam_dir_renormalized_and_damping_clamped() {
        let mut sim = PepcSim::new(PepcConfig::small());
        let mut p = sim.params();
        p.beam_dir = [3.0, 0.0, 4.0];
        p.damping = 9.0;
        sim.set_params(p);
        let q = sim.params();
        let norm: f64 = q.beam_dir.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        assert_eq!(q.damping, 1.0);
        // zero direction falls back to +x
        p.beam_dir = [0.0; 3];
        sim.set_params(p);
        assert_eq!(sim.params().beam_dir, [1.0, 0.0, 0.0]);
    }

    #[test]
    fn snapshot_carries_the_full_data_space() {
        let mut sim = PepcSim::new(PepcConfig::small());
        sim.step_n(2);
        let snap = sim.snapshot();
        let n = sim.len();
        assert_eq!(snap.positions.len(), n);
        assert_eq!(snap.velocities.len(), n);
        assert_eq!(snap.charges.len(), n);
        assert_eq!(snap.ranks.len(), n);
        assert_eq!(snap.labels.len(), n);
        assert_eq!(snap.domains.len(), 2);
        assert_eq!(snap.step, 2);
        assert!(snap.byte_size() > n * 30);
        // every rank value has a domain
        for &r in &snap.ranks {
            assert!((r as usize) < snap.domains.len());
        }
    }

    #[test]
    fn labels_are_stable_tracking_ids() {
        let mut sim = PepcSim::new(PepcConfig::small());
        let labels0: Vec<u32> = sim.particles().iter().map(|p| p.label).collect();
        sim.step_n(5);
        let labels1: Vec<u32> = sim.particles().iter().map(|p| p.label).collect();
        assert_eq!(labels0, labels1);
    }

    #[test]
    fn ckpt_sections_roundtrip_bit_identical() {
        let mut a = PepcSim::new(PepcConfig::small());
        let mut p = a.params();
        p.beam_intensity = 1.0;
        a.set_params(p);
        a.inject_beam(10, 2.0);
        a.step_n(5);
        let mut snap = CkptSnapshot::new(1, 0);
        a.save_sections(&mut snap);
        let decoded = CkptSnapshot::decode(&snap.encode()).unwrap();
        let mut b = PepcSim::from_snapshot(&decoded).unwrap();
        assert_eq!(b.step_count(), 5);
        assert_eq!(b.params(), a.params());
        assert_eq!(b.beam_count(), 10);
        a.step_n(5);
        b.step_n(5);
        let bits = |s: &PepcSim| {
            s.particles()
                .iter()
                .flat_map(|p| p.pos.iter().chain(&p.vel).map(|v| v.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a), bits(&b), "restored run diverged");
    }

    #[test]
    fn ckpt_preserves_particle_order_after_morton_sort() {
        let mut a = PepcSim::new(PepcConfig::small());
        a.step_n(2);
        let _ = a.snapshot(); // Morton-sorts and restamps ranks
        let order: Vec<u32> = a.particles().iter().map(|p| p.label).collect();
        let mut snap = CkptSnapshot::new(1, 0);
        a.save_sections(&mut snap);
        let b = PepcSim::from_snapshot(&snap).unwrap();
        let restored: Vec<u32> = b.particles().iter().map(|p| p.label).collect();
        assert_eq!(order, restored);
    }

    #[test]
    fn ckpt_force_particle_count_mismatch_is_corrupt() {
        let sim = PepcSim::new(PepcConfig::small());
        let mut snap = CkptSnapshot::new(1, 0);
        sim.save_sections(&mut snap);
        // drop one force triple: count prefix now disagrees with particles
        let forces = snap
            .sections
            .iter_mut()
            .find(|s| s.name == SEC_PEPC_FORCES)
            .unwrap();
        let n = u64::from_le_bytes(forces.bytes[..8].try_into().unwrap());
        forces.bytes[..8].copy_from_slice(&(n - 1).to_le_bytes());
        forces.bytes.truncate(forces.bytes.len() - 24);
        assert!(matches!(
            PepcSim::from_snapshot(&snap),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn interactions_counter_populated() {
        let mut sim = PepcSim::new(PepcConfig::small());
        sim.step();
        assert!(sim.last_interactions() > 0);
    }
}
