//! Direct O(N²) Coulomb summation — the accuracy reference and the
//! baseline the tree code's O(N log N) is measured against (§3.4 claims
//! the tree makes mesh-free simulation feasible at scales where this
//! brute-force path is hopeless; experiment EP1 reproduces the crossover).

use crate::Particle;

/// Plummer-softened Coulomb force on each particle:
/// `F_i = q_i Σ_j q_j r_ij / (|r_ij|² + ε²)^{3/2}`.
///
/// Softening keeps close encounters integrable — standard practice in
/// collisionless plasma tree codes, PEPC included.
pub fn direct_forces(particles: &[Particle], eps: f64) -> Vec<[f64; 3]> {
    let n = particles.len();
    let eps2 = eps * eps;
    let mut forces = vec![[0.0f64; 3]; n];
    for i in 0..n {
        let pi = &particles[i];
        let mut f = [0.0f64; 3];
        for (j, pj) in particles.iter().enumerate() {
            if i == j {
                continue;
            }
            let dx = pi.pos[0] - pj.pos[0];
            let dy = pi.pos[1] - pj.pos[1];
            let dz = pi.pos[2] - pj.pos[2];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            let s = pi.charge * pj.charge * inv_r3;
            f[0] += s * dx;
            f[1] += s * dy;
            f[2] += s * dz;
        }
        forces[i] = f;
    }
    forces
}

/// Total electrostatic potential energy (softened):
/// `U = Σ_{i<j} q_i q_j / sqrt(|r_ij|² + ε²)`.
pub fn potential_energy(particles: &[Particle], eps: f64) -> f64 {
    let eps2 = eps * eps;
    let mut u = 0.0;
    for i in 0..particles.len() {
        for j in (i + 1)..particles.len() {
            let a = &particles[i];
            let b = &particles[j];
            let dx = a.pos[0] - b.pos[0];
            let dy = a.pos[1] - b.pos[1];
            let dz = a.pos[2] - b.pos[2];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            u += a.charge * b.charge / r2.sqrt();
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_like_charges_repel() {
        let p = vec![
            Particle::at([0.0, 0.0, 0.0], 1.0, 0),
            Particle::at([1.0, 0.0, 0.0], 1.0, 1),
        ];
        let f = direct_forces(&p, 0.0);
        assert!(f[0][0] < 0.0, "left particle pushed left");
        assert!(f[1][0] > 0.0, "right particle pushed right");
        assert!((f[1][0] - 1.0).abs() < 1e-12, "unit coulomb at r=1");
    }

    #[test]
    fn opposite_charges_attract() {
        let p = vec![
            Particle::at([0.0, 0.0, 0.0], 1.0, 0),
            Particle::at([2.0, 0.0, 0.0], -1.0, 1),
        ];
        let f = direct_forces(&p, 0.0);
        assert!(f[0][0] > 0.0);
        assert!(f[1][0] < 0.0);
        assert!((f[0][0] - 0.25).abs() < 1e-12, "1/r² at r=2");
    }

    #[test]
    fn newtons_third_law() {
        let p = vec![
            Particle::at([0.1, 0.2, 0.3], 2.0, 0),
            Particle::at([-0.4, 0.5, 0.6], -1.5, 1),
            Particle::at([0.7, -0.8, 0.9], 0.5, 2),
        ];
        let f = direct_forces(&p, 0.01);
        for a in 0..3 {
            let total: f64 = f.iter().map(|fi| fi[a]).sum();
            assert!(total.abs() < 1e-12, "net force component {total}");
        }
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let p = vec![
            Particle::at([0.0; 3], 1.0, 0),
            Particle::at([1e-9, 0.0, 0.0], 1.0, 1),
        ];
        let f = direct_forces(&p, 0.05);
        // |F| ≤ q²·r/ε³ is tiny for r→0 with softening
        assert!(f[0][0].abs() < 1.0);
    }

    #[test]
    fn potential_energy_pairwise() {
        let p = vec![
            Particle::at([0.0; 3], 1.0, 0),
            Particle::at([1.0, 0.0, 0.0], 1.0, 1),
            Particle::at([0.0, 1.0, 0.0], 1.0, 2),
        ];
        let u = potential_energy(&p, 0.0);
        let expect = 1.0 + 1.0 + 1.0 / std::f64::consts::SQRT_2;
        assert!((u - expect).abs() < 1e-12);
    }
}
