//! The Barnes–Hut octree.
//!
//! "The code uses a hierarchical tree algorithm to perform potential and
//! force summation for charged particles in a time O(N log N)" (§3.4).
//! Build: recursive octant subdivision down to small leaves; each node
//! carries its monopole (total charge + centre of charge). Evaluation:
//! depth-first traversal accepting a node when `size / distance < θ`
//! (the multipole acceptance criterion), falling back to direct summation
//! in leaves. Force evaluation is parallel over fixed-size particle chunks
//! dispatched onto a persistent [`gridsteer_exec::ExecPool`] — the tree is
//! immutable during traversal, so this is race-free, and the fixed
//! chunk→particle mapping makes the forces bit-identical for any thread
//! count.

// Component loops over `[f64; 3]` are written indexed (`for a in 0..3`);
// that is the clearest spelling for moment accumulation.
#![allow(clippy::needless_range_loop)]

use crate::morton::bounding_cube;
use crate::Particle;

/// Tree-build and evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Multipole acceptance parameter θ (smaller = more accurate, slower).
    pub theta: f64,
    /// Plummer softening length ε.
    pub eps: f64,
    /// Maximum particles per leaf.
    pub leaf_cap: usize,
    /// Worker threads for force evaluation. Defaults to the detected
    /// parallelism (clamped; see [`gridsteer_exec::default_threads`]); an
    /// explicitly set value wins. The thread count never changes results —
    /// particles are chunked at a fixed grain regardless.
    pub threads: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            theta: 0.5,
            eps: 0.05,
            leaf_cap: 8,
            threads: gridsteer_exec::default_threads(),
        }
    }
}

/// One octree node.
#[derive(Debug, Clone)]
struct Node {
    /// Geometric centre of the octant.
    center: [f64; 3],
    /// Half edge length of the octant.
    half: f64,
    /// Total charge below this node.
    charge: f64,
    /// Absolute-charge-weighted centre (monopole expansion point; using
    /// |q| keeps the expansion point inside the mass of particles even for
    /// neutral mixtures).
    cocharge: [f64; 3],
    /// Sum of |q| below this node.
    abs_charge: f64,
    /// Children indices (internal node) — 0 means "no child" (index 0 is
    /// the root, never a child).
    children: [u32; 8],
    /// Particle indices (leaf node).
    members: Vec<u32>,
    /// Number of particles below this node.
    count: u32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c == 0)
    }
}

/// An immutable Barnes–Hut octree over a particle snapshot.
pub struct Octree {
    nodes: Vec<Node>,
    cfg: TreeConfig,
    /// Kernel backend for the leaf direct sum (scalar reference or
    /// lane-blocked; bit-identical by construction). Defaults to the
    /// process-wide [`lanes::backend`] switch.
    backend: lanes::Backend,
    /// Interaction counter from the last `forces` call (Σ node/particle
    /// acceptances) — the work metric for the O(N log N) experiment.
    pub interactions: std::sync::atomic::AtomicU64,
}

impl Octree {
    /// Build a tree over the particles.
    pub fn build(particles: &[Particle], cfg: TreeConfig) -> Octree {
        let (lo, extent) = bounding_cube(particles);
        let half = extent * 0.5;
        let root = Node {
            center: [lo[0] + half, lo[1] + half, lo[2] + half],
            half,
            charge: 0.0,
            cocharge: [0.0; 3],
            abs_charge: 0.0,
            children: [0; 8],
            members: (0..particles.len() as u32).collect(),
            count: particles.len() as u32,
        };
        let mut tree = Octree {
            nodes: vec![root],
            cfg,
            backend: lanes::backend(),
            interactions: std::sync::atomic::AtomicU64::new(0),
        };
        tree.split(0, particles, 0);
        tree.compute_moments(0, particles);
        tree
    }

    /// Recursively split node `idx` until leaves are small.
    fn split(&mut self, idx: usize, particles: &[Particle], depth: usize) {
        const MAX_DEPTH: usize = 32;
        if self.nodes[idx].members.len() <= self.cfg.leaf_cap || depth >= MAX_DEPTH {
            return;
        }
        let members = std::mem::take(&mut self.nodes[idx].members);
        let center = self.nodes[idx].center;
        let quarter = self.nodes[idx].half * 0.5;
        let mut buckets: [Vec<u32>; 8] = Default::default();
        for &m in &members {
            let p = &particles[m as usize].pos;
            let oct = (usize::from(p[0] >= center[0]))
                | (usize::from(p[1] >= center[1]) << 1)
                | (usize::from(p[2] >= center[2]) << 2);
            buckets[oct].push(m);
        }
        for (oct, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let dx = if oct & 1 != 0 { quarter } else { -quarter };
            let dy = if oct & 2 != 0 { quarter } else { -quarter };
            let dz = if oct & 4 != 0 { quarter } else { -quarter };
            let count = bucket.len() as u32;
            let child = Node {
                center: [center[0] + dx, center[1] + dy, center[2] + dz],
                half: quarter,
                charge: 0.0,
                cocharge: [0.0; 3],
                abs_charge: 0.0,
                children: [0; 8],
                members: bucket,
                count,
            };
            let child_idx = self.nodes.len();
            self.nodes.push(child);
            self.nodes[idx].children[oct] = child_idx as u32;
            self.split(child_idx, particles, depth + 1);
        }
    }

    /// Bottom-up monopole computation.
    fn compute_moments(&mut self, idx: usize, particles: &[Particle]) {
        if self.nodes[idx].is_leaf() {
            let mut q = 0.0;
            let mut aq = 0.0;
            let mut c = [0.0f64; 3];
            for &m in &self.nodes[idx].members {
                let p = &particles[m as usize];
                q += p.charge;
                aq += p.charge.abs();
                for a in 0..3 {
                    c[a] += p.charge.abs() * p.pos[a];
                }
            }
            if aq > 0.0 {
                for v in &mut c {
                    *v /= aq;
                }
            } else {
                c = self.nodes[idx].center;
            }
            self.nodes[idx].charge = q;
            self.nodes[idx].abs_charge = aq;
            self.nodes[idx].cocharge = c;
            return;
        }
        let children = self.nodes[idx].children;
        let mut q = 0.0;
        let mut aq = 0.0;
        let mut c = [0.0f64; 3];
        for &ch in &children {
            if ch == 0 {
                continue;
            }
            self.compute_moments(ch as usize, particles);
            let n = &self.nodes[ch as usize];
            q += n.charge;
            aq += n.abs_charge;
            for a in 0..3 {
                c[a] += n.abs_charge * n.cocharge[a];
            }
        }
        if aq > 0.0 {
            for v in &mut c {
                *v /= aq;
            }
        } else {
            c = self.nodes[idx].center;
        }
        self.nodes[idx].charge = q;
        self.nodes[idx].abs_charge = aq;
        self.nodes[idx].cocharge = c;
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum leaf depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize, d: usize) -> usize {
            let n = &nodes[idx];
            if n.is_leaf() {
                return d;
            }
            n.children
                .iter()
                .filter(|&&c| c != 0)
                .map(|&c| walk(nodes, c as usize, d + 1))
                .max()
                .unwrap_or(d)
        }
        walk(&self.nodes, 0, 0)
    }

    /// Backend used for the leaf direct sum.
    pub fn backend(&self) -> lanes::Backend {
        self.backend
    }

    /// Override the leaf-kernel backend (benches and bit-identity tests
    /// compare both in one process).
    pub fn set_backend(&mut self, backend: lanes::Backend) {
        self.backend = backend;
    }

    /// One pairwise contribution of the leaf direct sum — the scalar
    /// reference both backends must match bit for bit.
    #[inline(always)]
    fn accumulate_pair(pi: &Particle, pj: &Particle, eps2: f64, f: &mut [f64; 3]) {
        let dx = pi.pos[0] - pj.pos[0];
        let dy = pi.pos[1] - pj.pos[1];
        let dz = pi.pos[2] - pj.pos[2];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let inv_r3 = 1.0 / (r2 * r2.sqrt());
        let s = pi.charge * pj.charge * inv_r3;
        f[0] += s * dx;
        f[1] += s * dy;
        f[2] += s * dz;
    }

    /// Leaf direct sum over four members at once: every lane performs the
    /// exact [`Octree::accumulate_pair`] operation sequence (same
    /// association, no FMA), and the four contributions are folded into
    /// `f` lane by lane in member order — so the result is bit-identical
    /// to four scalar `accumulate_pair` calls.
    #[inline(always)]
    fn accumulate_quad(pi: &Particle, quad: [&Particle; 4], eps2: f64, f: &mut [f64; 3]) {
        use lanes::F64x4;
        let px = F64x4([
            quad[0].pos[0],
            quad[1].pos[0],
            quad[2].pos[0],
            quad[3].pos[0],
        ]);
        let py = F64x4([
            quad[0].pos[1],
            quad[1].pos[1],
            quad[2].pos[1],
            quad[3].pos[1],
        ]);
        let pz = F64x4([
            quad[0].pos[2],
            quad[1].pos[2],
            quad[2].pos[2],
            quad[3].pos[2],
        ]);
        let qj = F64x4([
            quad[0].charge,
            quad[1].charge,
            quad[2].charge,
            quad[3].charge,
        ]);
        let dx = F64x4::splat(pi.pos[0]) - px;
        let dy = F64x4::splat(pi.pos[1]) - py;
        let dz = F64x4::splat(pi.pos[2]) - pz;
        let r2 = dx * dx + dy * dy + dz * dz + F64x4::splat(eps2);
        let inv_r3 = F64x4::splat(1.0) / (r2 * r2.sqrt());
        let s = F64x4::splat(pi.charge) * qj * inv_r3;
        let fx = s * dx;
        let fy = s * dy;
        let fz = s * dz;
        // Sequential per-member fold: preserves the scalar loop's
        // accumulation order exactly (NOT an hsum — no reassociation).
        for l in 0..lanes::F64_LANES {
            f[0] += fx.0[l];
            f[1] += fy.0[l];
            f[2] += fz.0[l];
        }
    }

    /// Force on one particle via MAC traversal.
    fn force_on(&self, particles: &[Particle], i: usize) -> ([f64; 3], u64) {
        let pi = &particles[i];
        let theta = self.cfg.theta;
        let eps2 = self.cfg.eps * self.cfg.eps;
        let simd = self.backend == lanes::Backend::Simd;
        let mut f = [0.0f64; 3];
        let mut work = 0u64;
        let mut stack: Vec<u32> = vec![0];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if node.count == 0 {
                continue;
            }
            let dx = pi.pos[0] - node.cocharge[0];
            let dy = pi.pos[1] - node.cocharge[1];
            let dz = pi.pos[2] - node.cocharge[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            let size = node.half * 2.0;
            if node.is_leaf() {
                let members = &node.members;
                let mut k = 0;
                if simd {
                    // Lane-blocked direct sum; a block containing the
                    // target particle itself falls back to the scalar
                    // reference so the self-skip stays exact.
                    while k + lanes::F64_LANES <= members.len() {
                        let blk = &members[k..k + lanes::F64_LANES];
                        if blk.iter().any(|&m| m as usize == i) {
                            for &m in blk {
                                if m as usize != i {
                                    Self::accumulate_pair(pi, &particles[m as usize], eps2, &mut f);
                                    work += 1;
                                }
                            }
                        } else {
                            Self::accumulate_quad(
                                pi,
                                [
                                    &particles[blk[0] as usize],
                                    &particles[blk[1] as usize],
                                    &particles[blk[2] as usize],
                                    &particles[blk[3] as usize],
                                ],
                                eps2,
                                &mut f,
                            );
                            work += lanes::F64_LANES as u64;
                        }
                        k += lanes::F64_LANES;
                    }
                }
                for &m in &members[k..] {
                    if m as usize == i {
                        continue;
                    }
                    Self::accumulate_pair(pi, &particles[m as usize], eps2, &mut f);
                    work += 1;
                }
            } else if size * size < theta * theta * r2 {
                // accepted: monopole interaction
                let r2s = r2 + eps2;
                let inv_r3 = 1.0 / (r2s * r2s.sqrt());
                let s = pi.charge * node.charge * inv_r3;
                f[0] += s * dx;
                f[1] += s * dy;
                f[2] += s * dz;
                work += 1;
            } else {
                for &ch in &node.children {
                    if ch != 0 {
                        stack.push(ch);
                    }
                }
            }
        }
        (f, work)
    }

    /// Particles per force-evaluation chunk. Fixed (never derived from the
    /// thread count) so the chunk→particle mapping, and with it the
    /// interaction accounting, is identical at any parallelism.
    const FORCE_GRAIN: usize = 64;

    /// Forces on all particles, parallel over fixed-size particle chunks
    /// on the shared pool for `cfg.threads`.
    pub fn forces(&self, particles: &[Particle]) -> Vec<[f64; 3]> {
        self.forces_with(&gridsteer_exec::shared(self.cfg.threads), particles)
    }

    /// Forces on all particles, dispatched onto an explicit executor pool.
    pub fn forces_with(
        &self,
        pool: &gridsteer_exec::ExecPool,
        particles: &[Particle],
    ) -> Vec<[f64; 3]> {
        use std::sync::atomic::Ordering;
        let n = particles.len();
        let mut out = vec![[0.0f64; 3]; n];
        let total_work = std::sync::atomic::AtomicU64::new(0);
        pool.parallel_chunks(&mut out, Self::FORCE_GRAIN, |ci, slot| {
            let base = ci * Self::FORCE_GRAIN;
            let mut local_work = 0u64;
            for (k, f) in slot.iter_mut().enumerate() {
                let (fi, w) = self.force_on(particles, base + k);
                *f = fi;
                local_work += w;
            }
            // u64 sum: order-independent, so the counter is deterministic
            total_work.fetch_add(local_work, Ordering::Relaxed);
        });
        self.interactions
            .store(total_work.load(Ordering::Relaxed), Ordering::Relaxed);
        out
    }

    /// Interactions counted in the last [`Octree::forces`] call.
    pub fn last_interactions(&self) -> u64 {
        self.interactions.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::direct_forces;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn plasma_ball(n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                // alternate charges: a quasi-neutral plasma
                let q = if i % 2 == 0 { 1.0 } else { -1.0 };
                loop {
                    let p = [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ];
                    if p[0] * p[0] + p[1] * p[1] + p[2] * p[2] <= 1.0 {
                        return Particle::at(p, q, i as u32);
                    }
                }
            })
            .collect()
    }

    #[test]
    fn tree_contains_all_particles() {
        let p = plasma_ball(500, 1);
        let t = Octree::build(&p, TreeConfig::default());
        assert_eq!(t.nodes[0].count, 500);
        // leaf membership partitions the set
        let mut seen = vec![false; 500];
        for node in &t.nodes {
            if node.is_leaf() {
                for &m in &node.members {
                    assert!(!seen[m as usize], "particle {m} in two leaves");
                    seen[m as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaves_respect_capacity() {
        let p = plasma_ball(800, 2);
        let cfg = TreeConfig {
            leaf_cap: 4,
            ..Default::default()
        };
        let t = Octree::build(&p, cfg);
        for node in &t.nodes {
            if node.is_leaf() {
                assert!(node.members.len() <= 4);
            }
        }
    }

    #[test]
    fn root_monopole_matches_total_charge() {
        let p = plasma_ball(301, 3); // odd count → net charge 1
        let t = Octree::build(&p, TreeConfig::default());
        let total: f64 = p.iter().map(|q| q.charge).sum();
        assert!((t.nodes[0].charge - total).abs() < 1e-9);
    }

    #[test]
    fn tree_forces_match_direct_within_tolerance() {
        let p = plasma_ball(400, 4);
        let cfg = TreeConfig {
            theta: 0.4,
            eps: 0.05,
            ..Default::default()
        };
        let t = Octree::build(&p, cfg);
        let tf = t.forces(&p);
        let df = direct_forces(&p, 0.05);
        // RMS relative error
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, b) in tf.iter().zip(df.iter()) {
            for c in 0..3 {
                num += (a[c] - b[c]).powi(2);
                den += b[c].powi(2);
            }
        }
        let rms = (num / den.max(1e-30)).sqrt();
        assert!(rms < 0.05, "tree vs direct RMS error {rms}");
    }

    #[test]
    fn theta_zero_equals_direct_exactly() {
        // θ=0 never accepts a multipole: traversal degenerates to direct
        let p = plasma_ball(100, 5);
        let cfg = TreeConfig {
            theta: 0.0,
            eps: 0.05,
            ..Default::default()
        };
        let t = Octree::build(&p, cfg);
        let tf = t.forces(&p);
        let df = direct_forces(&p, 0.05);
        for (a, b) in tf.iter().zip(df.iter()) {
            for c in 0..3 {
                assert!((a[c] - b[c]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scalar_and_simd_leaf_kernels_are_bit_identical() {
        // Same tree, both backends, two thread counts: force vectors must
        // match bit for bit (the SIMD quad kernel replicates the scalar
        // operation sequence exactly, including the self-skip fallback).
        let p = plasma_ball(700, 11);
        let cfg = TreeConfig {
            leaf_cap: 11, // odd cap: exercises quad blocks AND scalar tails
            ..Default::default()
        };
        let mut t = Octree::build(&p, cfg);
        let mut runs: Vec<(String, Vec<[f64; 3]>, u64)> = Vec::new();
        for backend in [lanes::Backend::Scalar, lanes::Backend::Simd] {
            t.set_backend(backend);
            for threads in [1usize, 4] {
                let pool = gridsteer_exec::shared(threads);
                let f = t.forces_with(&pool, &p);
                runs.push((
                    format!("{}-t{threads}", backend.label()),
                    f,
                    t.last_interactions(),
                ));
            }
        }
        let (ref name0, ref f0, w0) = runs[0];
        for (name, f, w) in &runs[1..] {
            assert_eq!(w0, *w, "{name0} vs {name}: interaction counts differ");
            for (a, b) in f0.iter().zip(f.iter()) {
                for c in 0..3 {
                    assert_eq!(
                        a[c].to_bits(),
                        b[c].to_bits(),
                        "{name0} vs {name}: component {c} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn larger_theta_does_less_work() {
        let p = plasma_ball(1000, 6);
        let loose = Octree::build(
            &p,
            TreeConfig {
                theta: 0.9,
                ..Default::default()
            },
        );
        let tight = Octree::build(
            &p,
            TreeConfig {
                theta: 0.2,
                ..Default::default()
            },
        );
        loose.forces(&p);
        tight.forces(&p);
        assert!(
            loose.last_interactions() < tight.last_interactions() / 2,
            "loose {} vs tight {}",
            loose.last_interactions(),
            tight.last_interactions()
        );
    }

    #[test]
    fn work_scales_sub_quadratically() {
        let count_work = |n: usize| {
            let p = plasma_ball(n, 7);
            let t = Octree::build(&p, TreeConfig::default());
            t.forces(&p);
            t.last_interactions() as f64
        };
        let w1 = count_work(500);
        let w2 = count_work(2000);
        // Direct summation would grow 16×. Tree-code growth measures 9.11×
        // for this seed (pure N·logN would be ~4.9×, but the constant-radius
        // near-field term hasn't saturated at these N; 8.7–9.9 across other
        // seeds). The run is fully deterministic (fixed seed, deterministic
        // vendored RNG, order-independent interaction sum), so gate just
        // above the measured value — far below the quadratic signature.
        let growth = w2 / w1;
        assert!(growth < 10.0, "work grew {growth}× for 4× particles");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let p = plasma_ball(300, 8);
        let f1 = Octree::build(
            &p,
            TreeConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .forces(&p);
        let f4 = Octree::build(
            &p,
            TreeConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .forces(&p);
        assert_eq!(f1, f4);
    }

    #[test]
    fn coincident_particles_do_not_blow_the_stack() {
        // 20 particles at the same point: depth cap must stop subdivision
        let p: Vec<Particle> = (0..20)
            .map(|i| Particle::at([0.5, 0.5, 0.5], 1.0, i))
            .collect();
        let t = Octree::build(
            &p,
            TreeConfig {
                leaf_cap: 2,
                ..Default::default()
            },
        );
        assert!(t.depth() <= 32);
        let f = t.forces(&p);
        assert!(f.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_and_single_particle_edge_cases() {
        let none: Vec<Particle> = vec![];
        let t = Octree::build(&none, TreeConfig::default());
        assert!(t.forces(&none).is_empty());
        let one = vec![Particle::at([0.0; 3], 1.0, 0)];
        let t = Octree::build(&one, TreeConfig::default());
        assert_eq!(t.forces(&one), vec![[0.0; 3]]);
    }
}
