//! # pepc — a PEPC-style mesh-free plasma Coulomb solver
//!
//! §3.4 of the paper: "PEPC (Parallel Electrostatic Plasma Coulomb-solver),
//! a new plasma simulation code … uses a hierarchical tree algorithm to
//! perform potential and force summation for charged particles in a time
//! O(N log N), allowing mesh-free particle simulation on length- and
//! time-scales normally possible only with particle-in-cell or hydrodynamic
//! techniques."
//!
//! This crate rebuilds that solver:
//!
//! * [`morton`] — Morton (Z-order) keys and the space-filling-curve domain
//!   decomposition whose per-worker boxes the demo ships to the
//!   visualization ("tree domains as transparent or solid boxes, providing
//!   immediate insight into … the algorithmic workings of the parallel
//!   tree code").
//! * [`tree`] — the Barnes–Hut octree: build, monopole moments, multipole
//!   acceptance criterion θ, force evaluation with Plummer softening,
//!   parallel over particle chunks.
//! * [`direct`] — the O(N²) direct-summation baseline (accuracy reference
//!   and the scaling comparison of experiment EP1).
//! * [`sim`] — the steered simulation: leapfrog integration, the §3.4
//!   demo scenario ("a particle beam striking a spherical plasma target"),
//!   and the interactively steerable parameters: beam charge/intensity and
//!   direction, laser amplitude, and the velocity damping used to "'assist'
//!   an initially random plasma system towards a cold, ordered state".

pub mod direct;
pub mod morton;
pub mod sim;
pub mod tree;

pub use direct::direct_forces;
pub use morton::{decompose, morton_key, morton_unkey, Domain};
pub use sim::{PepcConfig, PepcSim, SEC_PEPC_FORCES, SEC_PEPC_META, SEC_PEPC_PARTICLES};
pub use tree::{Octree, TreeConfig};

/// A charged particle. The paper ships "particle data-space comprising
/// coordinates, velocities, charge, processor number and tracking-label"
/// to the visualization — exactly these fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Charge.
    pub charge: f64,
    /// Mass.
    pub mass: f64,
    /// Tracking label (stable across the run).
    pub label: u32,
    /// Owning worker rank from the last domain decomposition.
    pub rank: u16,
}

impl Particle {
    /// A unit-mass particle at rest.
    pub fn at(pos: [f64; 3], charge: f64, label: u32) -> Particle {
        Particle {
            pos,
            vel: [0.0; 3],
            charge,
            mass: 1.0,
            label,
            rank: 0,
        }
    }

    /// Kinetic energy.
    pub fn kinetic(&self) -> f64 {
        0.5 * self.mass
            * (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_kinetic_energy() {
        let mut p = Particle::at([0.0; 3], 1.0, 0);
        p.vel = [3.0, 0.0, 4.0];
        assert!((p.kinetic() - 12.5).abs() < 1e-12);
    }
}
