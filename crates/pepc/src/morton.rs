//! Morton keys and space-filling-curve domain decomposition.
//!
//! PEPC (like the Warren–Salmon hashed octrees it descends from) assigns
//! particles to processors by sorting on Morton/Z-order keys and cutting
//! the sorted list into equal contiguous ranges: nearby particles get
//! nearby keys, so each range is spatially compact. The resulting
//! per-worker bounding boxes are the "processor domains" the SC2003 demo
//! renders as boxes around the particle cloud (§3.4).

use crate::Particle;

/// Bits per axis in a Morton key (3 × 21 = 63 bits total).
pub const BITS: u32 = 21;

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn spread(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x1F00000000FFFF;
    x = (x | (x << 16)) & 0x1F0000FF0000FF;
    x = (x | (x << 8)) & 0x100F00F00F00F00F;
    x = (x | (x << 4)) & 0x10C30C30C30C30C3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread`].
#[inline]
fn compact(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10C30C30C30C30C3;
    x = (x | (x >> 4)) & 0x100F00F00F00F00F;
    x = (x | (x >> 8)) & 0x1F0000FF0000FF;
    x = (x | (x >> 16)) & 0x1F00000000FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x
}

/// Interleave three 21-bit integer coordinates into a Morton key.
pub fn morton_key(ix: u64, iy: u64, iz: u64) -> u64 {
    spread(ix) | (spread(iy) << 1) | (spread(iz) << 2)
}

/// Recover the three coordinates from a key.
pub fn morton_unkey(key: u64) -> (u64, u64, u64) {
    (compact(key), compact(key >> 1), compact(key >> 2))
}

/// Quantize a position inside `(min, extent)` to 21-bit grid coordinates.
pub fn quantize(pos: [f64; 3], min: [f64; 3], extent: f64) -> (u64, u64, u64) {
    let max_coord = ((1u64 << BITS) - 1) as f64;
    let q = |p: f64, lo: f64| -> u64 {
        let t = ((p - lo) / extent).clamp(0.0, 1.0);
        (t * max_coord) as u64
    };
    (q(pos[0], min[0]), q(pos[1], min[1]), q(pos[2], min[2]))
}

/// One worker's domain after decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    /// Worker rank.
    pub rank: u16,
    /// Indices (into the particle slice) owned by this worker.
    pub members: Vec<usize>,
    /// Axis-aligned bounds of the owned particles (`None` if empty).
    pub bounds: Option<([f64; 3], [f64; 3])>,
}

/// The bounding cube of a particle set: `(min_corner, edge_length)`.
pub fn bounding_cube(particles: &[Particle]) -> ([f64; 3], f64) {
    if particles.is_empty() {
        return ([0.0; 3], 1.0);
    }
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in particles {
        for a in 0..3 {
            lo[a] = lo[a].min(p.pos[a]);
            hi[a] = hi[a].max(p.pos[a]);
        }
    }
    let extent = (hi[0] - lo[0])
        .max(hi[1] - lo[1])
        .max(hi[2] - lo[2])
        .max(1e-9);
    (lo, extent)
}

/// Decompose particles over `ranks` workers by Morton-sorted equal chunks.
/// Mutates each particle's `rank` and returns the per-rank domains
/// (including their bounding boxes for the visualization).
pub fn decompose(particles: &mut [Particle], ranks: u16) -> Vec<Domain> {
    assert!(ranks > 0, "need at least one rank");
    let (lo, extent) = bounding_cube(particles);
    let mut keyed: Vec<(u64, usize)> = particles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (ix, iy, iz) = quantize(p.pos, lo, extent);
            (morton_key(ix, iy, iz), i)
        })
        .collect();
    keyed.sort_unstable();
    let n = keyed.len();
    let r = ranks as usize;
    let mut domains: Vec<Domain> = (0..ranks)
        .map(|rank| Domain {
            rank,
            members: Vec::new(),
            bounds: None,
        })
        .collect();
    for (pos_in_order, &(_, idx)) in keyed.iter().enumerate() {
        // equal contiguous chunks of the sorted order
        let rank = ((pos_in_order * r) / n.max(1)).min(r - 1) as u16;
        particles[idx].rank = rank;
        domains[rank as usize].members.push(idx);
    }
    for d in &mut domains {
        let mut blo = [f64::INFINITY; 3];
        let mut bhi = [f64::NEG_INFINITY; 3];
        for &i in &d.members {
            for a in 0..3 {
                blo[a] = blo[a].min(particles[i].pos[a]);
                bhi[a] = bhi[a].max(particles[i].pos[a]);
            }
        }
        d.bounds = (!d.members.is_empty()).then_some((blo, bhi));
    }
    domains
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn spread_compact_roundtrip() {
        for v in [0u64, 1, 7, 0xABCDE, 0x1F_FFFF] {
            assert_eq!(compact(spread(v)), v);
        }
    }

    #[test]
    fn morton_key_bijective_on_random_coords() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let (x, y, z) = (
                rng.gen_range(0..1u64 << BITS),
                rng.gen_range(0..1u64 << BITS),
                rng.gen_range(0..1u64 << BITS),
            );
            assert_eq!(morton_unkey(morton_key(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn morton_key_orders_octants() {
        // the key's top bits are the octant: all of octant 0 sorts before 7
        let half = 1u64 << (BITS - 1);
        let low = morton_key(half - 1, half - 1, half - 1);
        let high = morton_key(half, half, half);
        assert!(low < high);
    }

    fn cloud(n: usize, seed: u64) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Particle::at(
                    [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    1.0,
                    i as u32,
                )
            })
            .collect()
    }

    #[test]
    fn decomposition_partitions_all_particles() {
        let mut p = cloud(1000, 2);
        let domains = decompose(&mut p, 7);
        let total: usize = domains.iter().map(|d| d.members.len()).sum();
        assert_eq!(total, 1000);
        // every particle's rank matches its domain
        for d in &domains {
            for &i in &d.members {
                assert_eq!(p[i].rank, d.rank);
            }
        }
    }

    #[test]
    fn decomposition_is_balanced() {
        let mut p = cloud(1000, 3);
        let domains = decompose(&mut p, 8);
        for d in &domains {
            assert!(
                (124..=126).contains(&d.members.len()),
                "rank {} has {}",
                d.rank,
                d.members.len()
            );
        }
    }

    #[test]
    fn domain_bounds_contain_members() {
        let mut p = cloud(500, 4);
        let domains = decompose(&mut p, 4);
        for d in &domains {
            let (lo, hi) = d.bounds.unwrap();
            for &i in &d.members {
                for a in 0..3 {
                    assert!(p[i].pos[a] >= lo[a] && p[i].pos[a] <= hi[a]);
                }
            }
        }
    }

    #[test]
    fn domains_are_spatially_compact() {
        // SFC decomposition: average domain volume should be a small
        // fraction of the global volume (8 ranks in a [-1,1]³ cube)
        let mut p = cloud(4000, 5);
        let domains = decompose(&mut p, 8);
        let mean_vol: f64 = domains
            .iter()
            .filter_map(|d| d.bounds)
            .map(|(lo, hi)| (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]))
            .sum::<f64>()
            / 8.0;
        assert!(
            mean_vol < 8.0 * 0.6,
            "domains not compact: mean vol {mean_vol}"
        );
    }

    #[test]
    fn single_rank_owns_everything() {
        let mut p = cloud(100, 6);
        let domains = decompose(&mut p, 1);
        assert_eq!(domains.len(), 1);
        assert_eq!(domains[0].members.len(), 100);
        assert!(p.iter().all(|q| q.rank == 0));
    }

    #[test]
    fn empty_particle_set() {
        let mut p: Vec<Particle> = Vec::new();
        let domains = decompose(&mut p, 3);
        assert_eq!(domains.len(), 3);
        assert!(domains.iter().all(|d| d.bounds.is_none()));
    }
}
