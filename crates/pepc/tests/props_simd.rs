//! Property: the vectorized leaf force kernel is **bit-identical** to the
//! scalar reference over arbitrary particle clouds — counts that exercise
//! every lane-remainder path, clustered positions that stress deep leaves,
//! and mixed-sign charges. Equality is of `f64` bits; interaction-count
//! equality pins that both backends walked the same tree.

use pepc::tree::{Octree, TreeConfig};
use pepc::Particle;
use proptest::prelude::*;

/// Deterministic particle cloud from a seed (splitmix64 positions in a
/// unit box, alternating charges).
fn cloud(n: usize, seed: u64) -> Vec<Particle> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    (0..n)
        .map(|i| Particle {
            pos: [next(), next(), next()],
            vel: [0.0; 3],
            charge: if i % 2 == 0 { 1.0 } else { -1.0 },
            mass: 1.0,
            label: i as u32,
            rank: 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn leaf_forces_are_bit_identical_across_backends(
        n in 2usize..80,
        seed in 0u64..10_000,
        leaf_cap in 2usize..16,
        theta in 0.3f64..0.9,
    ) {
        let particles = cloud(n, seed);
        let cfg = TreeConfig {
            theta,
            leaf_cap,
            threads: 1,
            ..Default::default()
        };
        let mut tree = Octree::build(&particles, cfg);

        tree.set_backend(lanes::Backend::Scalar);
        let scalar = tree.forces(&particles);
        let work_scalar = tree.last_interactions();

        tree.set_backend(lanes::Backend::Simd);
        let simd = tree.forces(&particles);
        let work_simd = tree.last_interactions();

        prop_assert_eq!(work_scalar, work_simd, "backends walked different trees");
        for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
            for c in 0..3 {
                prop_assert_eq!(
                    a[c].to_bits(),
                    b[c].to_bits(),
                    "particle {} component {} diverged",
                    i,
                    c
                );
            }
        }
    }
}
