//! The D3Q19 velocity set.
//!
//! Nineteen discrete velocities: the rest vector, six axis neighbours and
//! twelve edge diagonals, with the standard lattice weights (1/3, 1/18,
//! 1/36) and sound speed c_s² = 1/3.

/// Number of discrete velocities.
pub const Q: usize = 19;

/// Lattice sound speed squared.
pub const CS2: f64 = 1.0 / 3.0;

/// x-components of the velocity set.
pub const CX: [i32; Q] = [0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0];
/// y-components of the velocity set.
pub const CY: [i32; Q] = [0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1];
/// z-components of the velocity set.
pub const CZ: [i32; Q] = [0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1];

/// Quadrature weights.
pub const WEIGHTS: [f64; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the opposite velocity (−c_i), used for bounce-back and tests.
pub const OPPOSITE: [usize; Q] = {
    let mut opp = [0usize; Q];
    let mut i = 0;
    while i < Q {
        let mut j = 0;
        while j < Q {
            if CX[i] == -CX[j] && CY[i] == -CY[j] && CZ[i] == -CZ[j] {
                opp[i] = j;
            }
            j += 1;
        }
        i += 1;
    }
    opp
};

/// Discrete equilibrium distribution for direction `i` at density `rho`
/// and velocity `u` (second-order expansion).
#[inline]
pub fn equilibrium(i: usize, rho: f64, ux: f64, uy: f64, uz: f64) -> f64 {
    let cu = CX[i] as f64 * ux + CY[i] as f64 * uy + CZ[i] as f64 * uz;
    let uu = ux * ux + uy * uy + uz * uz;
    WEIGHTS[i] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * uu)
}

/// Four-lane [`equilibrium`]: one lane per lattice node, every lane
/// performing *exactly* the scalar expression's operation sequence (same
/// association, no FMA), so a lane-blocked kernel is bit-identical to the
/// scalar reference node for node.
#[inline(always)]
pub fn equilibrium_x4(
    i: usize,
    rho: lanes::F64x4,
    ux: lanes::F64x4,
    uy: lanes::F64x4,
    uz: lanes::F64x4,
) -> lanes::F64x4 {
    use lanes::F64x4;
    let cu = F64x4::splat(CX[i] as f64) * ux
        + F64x4::splat(CY[i] as f64) * uy
        + F64x4::splat(CZ[i] as f64) * uz;
    let uu = ux * ux + uy * uy + uz * uz;
    F64x4::splat(WEIGHTS[i])
        * rho
        * (F64x4::splat(1.0) + F64x4::splat(3.0) * cu + F64x4::splat(4.5) * cu * cu
            - F64x4::splat(1.5) * uu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = WEIGHTS.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn velocity_set_sums_to_zero() {
        assert_eq!(CX.iter().sum::<i32>(), 0);
        assert_eq!(CY.iter().sum::<i32>(), 0);
        assert_eq!(CZ.iter().sum::<i32>(), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // tensor components read best indexed
    fn second_moment_is_isotropic() {
        // Σ w_i c_iα c_iβ = c_s² δ_αβ
        let mut m = [[0.0f64; 3]; 3];
        for i in 0..Q {
            let c = [CX[i] as f64, CY[i] as f64, CZ[i] as f64];
            for a in 0..3 {
                for b in 0..3 {
                    m[a][b] += WEIGHTS[i] * c[a] * c[b];
                }
            }
        }
        for a in 0..3 {
            for b in 0..3 {
                let expect = if a == b { CS2 } else { 0.0 };
                assert!((m[a][b] - expect).abs() < 1e-15, "m[{a}][{b}]={}", m[a][b]);
            }
        }
    }

    #[test]
    fn opposites_are_involutive_and_correct() {
        for i in 0..Q {
            let j = OPPOSITE[i];
            assert_eq!(OPPOSITE[j], i);
            assert_eq!(CX[i], -CX[j]);
            assert_eq!(CY[i], -CY[j]);
            assert_eq!(CZ[i], -CZ[j]);
        }
        assert_eq!(OPPOSITE[0], 0);
    }

    #[test]
    fn velocities_are_distinct() {
        for i in 0..Q {
            for j in (i + 1)..Q {
                assert!(
                    CX[i] != CX[j] || CY[i] != CY[j] || CZ[i] != CZ[j],
                    "duplicate velocity {i},{j}"
                );
            }
        }
    }

    #[test]
    fn equilibrium_moments_at_rest() {
        // Σ f_eq = ρ, Σ f_eq c = 0 at u=0
        let rho = 0.8;
        let sum: f64 = (0..Q).map(|i| equilibrium(i, rho, 0.0, 0.0, 0.0)).sum();
        assert!((sum - rho).abs() < 1e-14);
        let px: f64 = (0..Q)
            .map(|i| equilibrium(i, rho, 0.0, 0.0, 0.0) * CX[i] as f64)
            .sum();
        assert!(px.abs() < 1e-15);
    }

    #[test]
    fn lane_equilibrium_matches_scalar_bit_for_bit() {
        use lanes::F64x4;
        let rho = F64x4([0.93, 0.51, 1.7, 1e-9]);
        let ux = F64x4([0.01, -0.07, 0.002, 0.11]);
        let uy = F64x4([-0.03, 0.0, 0.04, -0.09]);
        let uz = F64x4([0.05, 0.021, -0.008, 0.0]);
        for i in 0..Q {
            let v = equilibrium_x4(i, rho, ux, uy, uz).to_array();
            for (l, lane) in v.iter().enumerate() {
                let s = equilibrium(i, rho.0[l], ux.0[l], uy.0[l], uz.0[l]);
                assert_eq!(lane.to_bits(), s.to_bits(), "i={i} lane={l}");
            }
        }
    }

    #[test]
    fn equilibrium_first_moment_matches_velocity() {
        let (rho, ux, uy, uz) = (1.0, 0.05, -0.02, 0.01);
        let mut p = [0.0f64; 3];
        for i in 0..Q {
            let f = equilibrium(i, rho, ux, uy, uz);
            p[0] += f * CX[i] as f64;
            p[1] += f * CY[i] as f64;
            p[2] += f * CZ[i] as f64;
        }
        assert!((p[0] - rho * ux).abs() < 1e-14);
        assert!((p[1] - rho * uy).abs() < 1e-14);
        assert!((p[2] - rho * uz).abs() < 1e-14);
    }
}
