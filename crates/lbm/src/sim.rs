//! The two-component solver.
//!
//! Physics: two BGK components A and B on D3Q19, coupled by the Shan–Chen
//! pseudopotential force with ψ = ρ:
//!
//! ```text
//! F_A(x) = −g ρ_A(x) Σ_i w_i ρ_B(x + c_i) c_i      (and symmetrically F_B)
//! ```
//!
//! `g` is the inter-component coupling. The *steering parameter* exposed to
//! users is the paper's **miscibility** m ∈ \[0, 1\], mapped as
//! `g = g_max · (1 − m)`: fully miscible fluids feel no coupling; as the
//! steerer lowers m the mixture crosses the spinodal and domains form —
//! the structures the SC2003 demo rendered as isosurfaces live.
//!
//! Each step runs three parallel passes (density → force/velocity → pull
//! stream-collide), all race-free and deterministic for any thread count.
//!
//! # Layout and backends
//!
//! State is structure-of-arrays: distributions live as `f[i*n + node]`
//! (direction-major, nodes contiguous within a direction row) and the
//! equilibrium velocities as six flat component arrays. Every pass exists
//! twice behind [`lanes::Backend`]:
//!
//! * **scalar** — the readable per-node reference kernels, neighbour
//!   indexing through `Geom::neighbor`'s `rem_euclid` wraps; this is the
//!   executable spec.
//! * **simd** (the default) — row-blocked kernels over [`lanes::F64x4`],
//!   one lane per node. Periodic wraps are resolved once per lattice row
//!   (19 neighbour row bases instead of three `rem_euclid`s per node per
//!   direction), interior runs load contiguously, and the boundary nodes
//!   of each row fall back to the scalar helpers.
//!
//! Both backends execute the *identical* floating-point operation
//! sequence for every node — same association, no FMA, accumulations in
//! ascending direction order — so their results are bit-identical, and CI
//! proves it across the {1, 8} threads × {scalar, simd} matrix.
//!
//! Parallelism: the passes dispatch onto a persistent
//! [`gridsteer_exec::ExecPool`] in whole-z-plane chunks — a fixed
//! chunk→node mapping independent of the pool's thread count, so the
//! physics is bit-identical at any parallelism and no OS threads are
//! spawned on the per-step hot path.

use crate::lattice::{equilibrium, equilibrium_x4, CX, CY, CZ, OPPOSITE, Q, WEIGHTS};
use gridsteer_ckpt::{CkptError, SectionWriter, Snapshot};
use gridsteer_exec::{DisjointChunks, ExecPool};
use lanes::F64x4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use viz::Field3;

/// Lanes per SIMD block (one node per lane).
const L: usize = F64x4::LANES;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct LbmConfig {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// BGK relaxation time (both components).
    pub tau: f64,
    /// Coupling at miscibility 0 (full demixing).
    pub g_max: f64,
    /// Mean density per component.
    pub rho0: f64,
    /// Initial density perturbation amplitude (seeds spinodal noise).
    pub noise: f64,
    /// RNG seed for the initial perturbation.
    pub seed: u64,
    /// Worker threads for the parallel passes. Defaults to the detected
    /// parallelism (clamped; see [`gridsteer_exec::default_threads`]); an
    /// explicitly set value wins. The thread count never changes results —
    /// chunking is per z-plane regardless.
    pub threads: usize,
}

impl Default for LbmConfig {
    fn default() -> Self {
        LbmConfig {
            nx: 32,
            ny: 32,
            nz: 32,
            tau: 1.0,
            g_max: 2.5,
            rho0: 0.5,
            noise: 0.01,
            seed: 42,
            threads: gridsteer_exec::default_threads(),
        }
    }
}

impl LbmConfig {
    /// A small fast configuration for tests.
    pub fn small() -> Self {
        LbmConfig {
            nx: 12,
            ny: 12,
            nz: 12,
            ..Default::default()
        }
    }
}

/// Spatial variance of an order-parameter field — the demixing metric of
/// [`TwoFluidLbm::demix_metric`], exposed over a precomputed field so
/// callers that already hold φ (the monitor adapter publishes the full
/// lattice anyway) never pay a second distribution pass, and the metric
/// has exactly one definition.
pub fn demix_of(phi: &Field3) -> f64 {
    demix_of_slice(phi.data())
}

/// [`demix_of`] over the raw row-major field data — the borrowed-payload
/// monitor path holds φ as a reused `Vec<f32>` scratch buffer, never as a
/// [`Field3`]. Replicates `Field3::mean`'s rounding exactly (f64 sum
/// narrowed to f32, then widened), so both entry points produce the same
/// bits for the same field.
pub fn demix_of_slice(phi: &[f32]) -> f64 {
    let mean = if phi.is_empty() {
        0.0f32
    } else {
        phi.iter().map(|&v| v as f64).sum::<f64>() as f32 / phi.len() as f32
    } as f64;
    phi.iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / phi.len() as f64
}

/// Copyable grid geometry shared by the parallel passes (avoids borrowing
/// `self` inside scoped threads).
#[derive(Debug, Clone, Copy)]
struct Geom {
    nx: usize,
    ny: usize,
    nz: usize,
}

impl Geom {
    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    /// Periodic neighbour index in direction `i` (the scalar reference
    /// path; the SIMD kernels resolve wraps once per row instead).
    #[inline]
    fn neighbor(&self, x: usize, y: usize, z: usize, i: usize) -> usize {
        let px = (x as i32 + CX[i]).rem_euclid(self.nx as i32) as usize;
        let py = (y as i32 + CY[i]).rem_euclid(self.ny as i32) as usize;
        let pz = (z as i32 + CZ[i]).rem_euclid(self.nz as i32) as usize;
        self.idx(px, py, pz)
    }

    /// Per-direction neighbour *row bases* for the lattice row `(y, z)`:
    /// the neighbour of `(x, y, z)` in direction `i` is
    /// `base[i] + wrap_x(x + CX[i])`, with the x wrap only firing at the
    /// row's two boundary nodes. One `rem_euclid` pair per direction per
    /// row replaces three per direction per node.
    #[inline]
    fn row_bases(&self, y: usize, z: usize) -> [usize; Q] {
        let mut base = [0usize; Q];
        for (i, b) in base.iter_mut().enumerate() {
            let wy = (y as i32 + CY[i]).rem_euclid(self.ny as i32) as usize;
            let wz = (z as i32 + CZ[i]).rem_euclid(self.nz as i32) as usize;
            *b = self.nx * (wy + self.ny * wz);
        }
        base
    }
}

/// Read-only per-pass context shared by the scalar helpers and the SIMD
/// kernels (both backends call through the same node-level math).
struct VelCtx<'a> {
    fa: &'a [f64],
    fb: &'a [f64],
    rho_a: &'a [f64],
    rho_b: &'a [f64],
    n: usize,
    g: f64,
    tau: f64,
    geom: Geom,
}

impl VelCtx<'_> {
    /// The reference velocity computation for one node — the executable
    /// spec both backends must match bit for bit.
    #[inline]
    fn node(&self, x: usize, y: usize, z: usize, node: usize) -> ([f64; 3], [f64; 3]) {
        let n = self.n;
        // momenta
        let mut j = [0.0f64; 3];
        for i in 0..Q {
            let f = self.fa[i * n + node] + self.fb[i * n + node];
            j[0] += f * CX[i] as f64;
            j[1] += f * CY[i] as f64;
            j[2] += f * CZ[i] as f64;
        }
        let ra = self.rho_a[node];
        let rb = self.rho_b[node];
        let rho_tot = (ra + rb).max(1e-12);
        let u = [j[0] / rho_tot, j[1] / rho_tot, j[2] / rho_tot];
        // Shan–Chen forces
        let mut grad_b = [0.0f64; 3];
        let mut grad_a = [0.0f64; 3];
        for i in 1..Q {
            let nb = self.geom.neighbor(x, y, z, i);
            let w = WEIGHTS[i];
            grad_b[0] += w * self.rho_b[nb] * CX[i] as f64;
            grad_b[1] += w * self.rho_b[nb] * CY[i] as f64;
            grad_b[2] += w * self.rho_b[nb] * CZ[i] as f64;
            grad_a[0] += w * self.rho_a[nb] * CX[i] as f64;
            grad_a[1] += w * self.rho_a[nb] * CY[i] as f64;
            grad_a[2] += w * self.rho_a[nb] * CZ[i] as f64;
        }
        let g = self.g;
        let fa_force = [
            -g * ra * grad_b[0],
            -g * ra * grad_b[1],
            -g * ra * grad_b[2],
        ];
        let fb_force = [
            -g * rb * grad_a[0],
            -g * rb * grad_a[1],
            -g * rb * grad_a[2],
        ];
        // per-component equilibrium velocity (velocity-shift forcing)
        let ra_s = ra.max(1e-12);
        let rb_s = rb.max(1e-12);
        let tau = self.tau;
        (
            [
                u[0] + tau * fa_force[0] / ra_s,
                u[1] + tau * fa_force[1] / ra_s,
                u[2] + tau * fa_force[2] / ra_s,
            ],
            [
                u[0] + tau * fb_force[0] / rb_s,
                u[1] + tau * fb_force[1] / rb_s,
                u[2] + tau * fb_force[2] / rb_s,
            ],
        )
    }
}

/// The two-fluid Lattice-Boltzmann simulation.
pub struct TwoFluidLbm {
    cfg: LbmConfig,
    /// Worker pool the three passes dispatch onto (shared across sims with
    /// the same thread count; replaceable via [`TwoFluidLbm::set_pool`]).
    pool: Arc<ExecPool>,
    n: usize,
    plane: usize,
    nplanes: usize,
    /// Distributions, SoA layout `f[i*n + node]`, per component.
    fa: Vec<f64>,
    fb: Vec<f64>,
    /// Scratch buffers for the pull pass (same layout).
    fa_new: Vec<f64>,
    fb_new: Vec<f64>,
    /// Densities (refreshed each step).
    rho_a: Vec<f64>,
    rho_b: Vec<f64>,
    /// Per-component equilibrium velocities, SoA (refreshed each step).
    ua_x: Vec<f64>,
    ua_y: Vec<f64>,
    ua_z: Vec<f64>,
    ub_x: Vec<f64>,
    ub_y: Vec<f64>,
    ub_z: Vec<f64>,
    /// Current miscibility m ∈ \[0,1\].
    miscibility: f64,
    /// Kernel backend (defaults to the process-wide [`lanes::backend`]).
    backend: lanes::Backend,
    steps: u64,
}

impl TwoFluidLbm {
    /// Initialize a perturbed symmetric mixture at rest, on the shared
    /// pool for `cfg.threads`.
    pub fn new(cfg: LbmConfig) -> Self {
        let pool = gridsteer_exec::shared(cfg.threads);
        Self::with_pool(cfg, pool)
    }

    /// Initialize on an explicit executor pool (scenario runs and the
    /// `exp_*` binaries pass one pool to every subsystem).
    pub fn with_pool(cfg: LbmConfig, pool: Arc<ExecPool>) -> Self {
        assert!(cfg.nx >= 2 && cfg.ny >= 2 && cfg.nz >= 2, "grid too small");
        assert!(cfg.tau > 0.5, "tau must exceed 0.5 for stability");
        let n = cfg.nx * cfg.ny * cfg.nz;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut fa = vec![0.0; n * Q];
        let mut fb = vec![0.0; n * Q];
        for node in 0..n {
            let eps: f64 = rng.gen_range(-1.0..1.0) * cfg.noise;
            let ra = cfg.rho0 * (1.0 + eps);
            let rb = cfg.rho0 * (1.0 - eps);
            for i in 0..Q {
                fa[i * n + node] = WEIGHTS[i] * ra;
                fb[i * n + node] = WEIGHTS[i] * rb;
            }
        }
        TwoFluidLbm {
            plane: cfg.nx * cfg.ny,
            nplanes: cfg.nz,
            n,
            fa_new: vec![0.0; n * Q],
            fb_new: vec![0.0; n * Q],
            rho_a: vec![0.0; n],
            rho_b: vec![0.0; n],
            ua_x: vec![0.0; n],
            ua_y: vec![0.0; n],
            ua_z: vec![0.0; n],
            ub_x: vec![0.0; n],
            ub_y: vec![0.0; n],
            ub_z: vec![0.0; n],
            fa,
            fb,
            miscibility: 1.0,
            backend: lanes::backend(),
            pool,
            cfg,
            steps: 0,
        }
    }

    /// Replace the executor pool (results are unaffected: chunking is
    /// fixed per z-plane, so any pool produces identical physics).
    pub fn set_pool(&mut self, pool: Arc<ExecPool>) {
        self.pool = pool;
    }

    /// The executor pool this simulation dispatches onto.
    pub fn pool(&self) -> &Arc<ExecPool> {
        &self.pool
    }

    /// The kernel backend in use (scalar reference or lane-blocked).
    pub fn backend(&self) -> lanes::Backend {
        self.backend
    }

    /// Override the kernel backend. Results are unaffected — the two
    /// backends are bit-identical (tested, proptested, and CI-gated);
    /// benches use this to measure both in one process.
    pub fn set_backend(&mut self, backend: lanes::Backend) {
        self.backend = backend;
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.cfg.nx, self.cfg.ny, self.cfg.nz)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current miscibility (the steering parameter of §2.2).
    pub fn miscibility(&self) -> f64 {
        self.miscibility
    }

    /// Steer the miscibility; values are clamped to \[0, 1\].
    pub fn set_miscibility(&mut self, m: f64) {
        self.miscibility = m.clamp(0.0, 1.0);
    }

    /// Effective inter-component coupling `g`.
    pub fn coupling(&self) -> f64 {
        self.cfg.g_max * (1.0 - self.miscibility)
    }

    fn geom(&self) -> Geom {
        Geom {
            nx: self.cfg.nx,
            ny: self.cfg.ny,
            nz: self.cfg.nz,
        }
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        self.pass_density();
        self.pass_velocity();
        self.pass_stream_collide();
        std::mem::swap(&mut self.fa, &mut self.fa_new);
        std::mem::swap(&mut self.fb, &mut self.fb_new);
        self.steps += 1;
    }

    /// Advance `n` steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn pass_density(&mut self) {
        let plane = self.plane;
        let n = self.n;
        let fa = &self.fa;
        let fb = &self.fb;
        let simd = self.backend == lanes::Backend::Simd;
        // one chunk per z-plane: fixed mapping, any thread count
        self.pool.parallel_chunks2(
            &mut self.rho_a,
            &mut self.rho_b,
            plane,
            plane,
            |ci, ca, cb| {
                let start = ci * plane;
                let mut k = 0usize;
                if simd {
                    // lane-blocked: 4 nodes per iteration, direction sums
                    // still in ascending i per node
                    while k + L <= ca.len() {
                        let node = start + k;
                        let mut sa = F64x4::splat(0.0);
                        let mut sb = F64x4::splat(0.0);
                        for i in 0..Q {
                            sa += F64x4::from_slice(&fa[i * n + node..]);
                            sb += F64x4::from_slice(&fb[i * n + node..]);
                        }
                        sa.write_to(&mut ca[k..]);
                        sb.write_to(&mut cb[k..]);
                        k += L;
                    }
                }
                for k in k..ca.len() {
                    let node = start + k;
                    let mut sa = 0.0;
                    let mut sb = 0.0;
                    for i in 0..Q {
                        sa += fa[i * n + node];
                        sb += fb[i * n + node];
                    }
                    ca[k] = sa;
                    cb[k] = sb;
                }
            },
        );
    }

    fn pass_velocity(&mut self) {
        let ctx = VelCtx {
            fa: &self.fa,
            fb: &self.fb,
            rho_a: &self.rho_a,
            rho_b: &self.rho_b,
            n: self.n,
            g: self.coupling(),
            tau: self.cfg.tau,
            geom: self.geom(),
        };
        let plane = self.plane;
        let out = [
            DisjointChunks::new(&mut self.ua_x, plane),
            DisjointChunks::new(&mut self.ua_y, plane),
            DisjointChunks::new(&mut self.ua_z, plane),
            DisjointChunks::new(&mut self.ub_x, plane),
            DisjointChunks::new(&mut self.ub_y, plane),
            DisjointChunks::new(&mut self.ub_z, plane),
        ];
        let geom = ctx.geom;
        let simd = self.backend == lanes::Backend::Simd;
        self.pool.run(self.nplanes, |pz| {
            let [uax, uay, uaz, ubx, uby, ubz] = [
                out[0].claim(pz),
                out[1].claim(pz),
                out[2].claim(pz),
                out[3].claim(pz),
                out[4].claim(pz),
                out[5].claim(pz),
            ];
            for y in 0..geom.ny {
                let row = y * geom.nx;
                if simd {
                    velocity_row_simd(&ctx, y, pz, uax, uay, uaz, ubx, uby, ubz);
                } else {
                    for x in 0..geom.nx {
                        let node = pz * plane + row + x;
                        let (va, vb) = ctx.node(x, y, pz, node);
                        uax[row + x] = va[0];
                        uay[row + x] = va[1];
                        uaz[row + x] = va[2];
                        ubx[row + x] = vb[0];
                        uby[row + x] = vb[1];
                        ubz[row + x] = vb[2];
                    }
                }
            }
        });
    }

    fn pass_stream_collide(&mut self) {
        let omega = 1.0 / self.cfg.tau;
        let n = self.n;
        let nplanes = self.nplanes;
        let plane = self.plane;
        let geom = self.geom();
        let ctx = CollideCtx {
            fa: &self.fa,
            fb: &self.fb,
            rho_a: &self.rho_a,
            rho_b: &self.rho_b,
            ua_x: &self.ua_x,
            ua_y: &self.ua_y,
            ua_z: &self.ua_z,
            ub_x: &self.ub_x,
            ub_y: &self.ub_y,
            ub_z: &self.ub_z,
            n,
            omega,
            geom,
        };
        // Chunk the SoA output arrays by plane: direction row i of plane pz
        // is chunk i*nplanes + pz, so the task for plane pz claims one
        // plane-sized chunk per direction — disjoint across tasks, fixed
        // mapping at any thread count.
        let out_a = DisjointChunks::new(&mut self.fa_new, plane);
        let out_b = DisjointChunks::new(&mut self.fb_new, plane);
        let simd = self.backend == lanes::Backend::Simd;
        self.pool.run(nplanes, |pz| {
            for (i, &opp) in OPPOSITE.iter().enumerate() {
                let slot_a = out_a.claim(i * nplanes + pz);
                let slot_b = out_b.claim(i * nplanes + pz);
                if simd {
                    collide_rows_simd(&ctx, i, pz, slot_a, slot_b);
                } else {
                    for y in 0..geom.ny {
                        let row = y * geom.nx;
                        for x in 0..geom.nx {
                            let src = geom.neighbor(x, y, pz, opp);
                            let (va, vb) = ctx.value(i, src);
                            slot_a[row + x] = va;
                            slot_b[row + x] = vb;
                        }
                    }
                }
            }
        });
    }

    /// Total mass per component.
    pub fn total_mass(&self) -> (f64, f64) {
        (self.fa.iter().sum(), self.fb.iter().sum())
    }

    /// Total momentum (both components).
    pub fn total_momentum(&self) -> [f64; 3] {
        let mut p = [0.0f64; 3];
        for node in 0..self.n {
            for i in 0..Q {
                let f = self.fa[i * self.n + node] + self.fb[i * self.n + node];
                p[0] += f * CX[i] as f64;
                p[1] += f * CY[i] as f64;
                p[2] += f * CZ[i] as f64;
            }
        }
        p
    }

    /// The order parameter φ = ρA − ρB as a renderable field — the
    /// "sample" the simulation component emits for the visualization
    /// (§2.1: "the simulation component periodically … emits 'samples' for
    /// consumption by the visualization component").
    pub fn order_parameter(&self) -> Field3 {
        let mut data = Vec::new();
        self.order_parameter_into(&mut data);
        Field3::from_vec(self.cfg.nx, self.cfg.ny, self.cfg.nz, data)
    }

    /// Fill `out` with the order parameter over the whole lattice
    /// (row-major, `x` fastest) without allocating when `out` already has
    /// capacity — the monitor publish path reuses one buffer per sample.
    pub fn order_parameter_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.n);
        for node in 0..self.n {
            out.push(self.phi_node(node));
        }
    }

    #[inline]
    fn phi_node(&self, node: usize) -> f32 {
        let mut ra = 0.0;
        let mut rb = 0.0;
        for i in 0..Q {
            ra += self.fa[i * self.n + node];
            rb += self.fb[i * self.n + node];
        }
        (ra - rb) as f32
    }

    /// One z-plane of the order parameter φ, row-major (`x` fastest) —
    /// the 2-D field slice the monitor bus ships to thin viewers that
    /// cannot afford the full lattice. Computes only the requested plane.
    /// Panics if `z` is out of range.
    pub fn order_parameter_slice(&self, z: usize) -> (usize, usize, Vec<f32>) {
        let mut data = Vec::new();
        self.order_parameter_slice_into(z, &mut data);
        (self.cfg.nx, self.cfg.ny, data)
    }

    /// Allocation-free variant of [`TwoFluidLbm::order_parameter_slice`]:
    /// fills `out` (cleared first) and returns the plane dims. The
    /// monitor adapter calls this every sample with a retained buffer, so
    /// steady-state publishing allocates nothing.
    pub fn order_parameter_slice_into(&self, z: usize, out: &mut Vec<f32>) -> (usize, usize) {
        assert!(
            z < self.cfg.nz,
            "slice plane {z} outside 0..{}",
            self.cfg.nz
        );
        out.clear();
        out.reserve(self.plane);
        let base = z * self.plane;
        for k in 0..self.plane {
            out.push(self.phi_node(base + k));
        }
        (self.cfg.nx, self.cfg.ny)
    }

    /// Spatial variance of φ — a scalar demixing metric: near zero for a
    /// mixed state, growing as domains form.
    pub fn demix_metric(&self) -> f64 {
        demix_of(&self.order_parameter())
    }

    /// True if any distribution value is non-finite (stability check).
    pub fn is_unstable(&self) -> bool {
        self.fa.iter().chain(self.fb.iter()).any(|v| !v.is_finite())
    }

    /// Snapshot the full solver state for migration — §2.4: "RealityGrid
    /// is developing the ability to migrate both computation and
    /// visualization within a session without any disturbance or
    /// intervention on the part of the participating clients."
    ///
    /// `fa`/`fb` are in the solver's SoA layout (`f[i*n + node]`).
    pub fn checkpoint(&self) -> LbmCheckpoint {
        LbmCheckpoint {
            cfg: self.cfg.clone(),
            fa: self.fa.clone(),
            fb: self.fb.clone(),
            miscibility: self.miscibility,
            steps: self.steps,
        }
    }

    /// Resume a checkpointed run, bit-identically.
    pub fn from_checkpoint(ck: LbmCheckpoint) -> TwoFluidLbm {
        let n = ck.cfg.nx * ck.cfg.ny * ck.cfg.nz;
        assert_eq!(ck.fa.len(), n * Q, "corrupt checkpoint");
        assert_eq!(ck.fb.len(), n * Q, "corrupt checkpoint");
        TwoFluidLbm {
            pool: gridsteer_exec::shared(ck.cfg.threads),
            plane: ck.cfg.nx * ck.cfg.ny,
            nplanes: ck.cfg.nz,
            n,
            fa_new: vec![0.0; n * Q],
            fb_new: vec![0.0; n * Q],
            rho_a: vec![0.0; n],
            rho_b: vec![0.0; n],
            ua_x: vec![0.0; n],
            ua_y: vec![0.0; n],
            ua_z: vec![0.0; n],
            ub_x: vec![0.0; n],
            ub_y: vec![0.0; n],
            ub_z: vec![0.0; n],
            fa: ck.fa,
            fb: ck.fb,
            miscibility: ck.miscibility,
            backend: lanes::backend(),
            cfg: ck.cfg,
            steps: ck.steps,
        }
    }

    /// Lay the full solver state into `snap` as the sections
    /// `lbm/meta` + `lbm/fa` + `lbm/fb`. The distribution sections use a
    /// dirty-chunk grain of one z-plane of doubles — the same fixed
    /// plane→chunk mapping the exec pool dispatches on — so delta
    /// checkpoints ship only the planes that changed.
    pub fn save_sections(&self, snap: &mut Snapshot) {
        let mut w = SectionWriter::with_capacity(96);
        w.put_u64(self.cfg.nx as u64);
        w.put_u64(self.cfg.ny as u64);
        w.put_u64(self.cfg.nz as u64);
        w.put_f64(self.cfg.tau);
        w.put_f64(self.cfg.g_max);
        w.put_f64(self.cfg.rho0);
        w.put_f64(self.cfg.noise);
        w.put_u64(self.cfg.seed);
        w.put_u64(self.cfg.threads as u64);
        w.put_f64(self.miscibility);
        w.put_u64(self.steps);
        snap.push(SEC_LBM_META, 0, w.finish());
        let chunk = (self.plane * 8) as u32;
        snap.push(SEC_LBM_FA, chunk, f64_raw_bytes(&self.fa));
        snap.push(SEC_LBM_FB, chunk, f64_raw_bytes(&self.fb));
    }

    /// Rebuild a solver from the `lbm/*` sections of `snap` — the
    /// fresh-process restore path. Derived arrays (densities, velocities,
    /// scratch) are recomputed on the next step; the pool comes from the
    /// checkpointed thread count and the backend from the process-wide
    /// default, exactly as [`TwoFluidLbm::from_checkpoint`].
    pub fn from_snapshot(snap: &Snapshot) -> Result<TwoFluidLbm, CkptError> {
        let mut r = snap.reader(SEC_LBM_META)?;
        let cfg = LbmConfig {
            nx: r.get_u64()? as usize,
            ny: r.get_u64()? as usize,
            nz: r.get_u64()? as usize,
            tau: r.get_f64()?,
            g_max: r.get_f64()?,
            rho0: r.get_f64()?,
            noise: r.get_f64()?,
            seed: r.get_u64()?,
            threads: r.get_u64()? as usize,
        };
        let miscibility = r.get_f64()?;
        let steps = r.get_u64()?;
        r.expect_end()?;
        let n = cfg.nx * cfg.ny * cfg.nz;
        let fa = f64_section(snap, SEC_LBM_FA, n * Q)?;
        let fb = f64_section(snap, SEC_LBM_FB, n * Q)?;
        Ok(TwoFluidLbm::from_checkpoint(LbmCheckpoint {
            cfg,
            fa,
            fb,
            miscibility,
            steps,
        }))
    }

    /// Replace this solver's physics state from the `lbm/*` sections of
    /// `snap`, keeping the current pool and backend — the in-process
    /// restore path (crash recovery reuses the scenario's pool).
    pub fn restore_sections(&mut self, snap: &Snapshot) -> Result<(), CkptError> {
        let mut fresh = TwoFluidLbm::from_snapshot(snap)?;
        fresh.pool = Arc::clone(&self.pool);
        fresh.backend = self.backend;
        *self = fresh;
        Ok(())
    }
}

/// Snapshot section names for the LBM solver.
pub const SEC_LBM_META: &str = "lbm/meta";
/// Component-A distributions (raw f64 bits, SoA `f[i*n + node]`).
pub const SEC_LBM_FA: &str = "lbm/fa";
/// Component-B distributions (raw f64 bits, SoA `f[i*n + node]`).
pub const SEC_LBM_FB: &str = "lbm/fb";

/// A float slice as unprefixed raw little-endian bit patterns (section
/// length carries the count, so chunk boundaries stay plane-aligned).
fn f64_raw_bytes(vs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vs.len() * 8);
    for v in vs {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decode an unprefixed raw-bits float section, checking the exact
/// element count.
fn f64_section(snap: &Snapshot, name: &str, expect: usize) -> Result<Vec<f64>, CkptError> {
    let bytes = snap
        .section(name)
        .ok_or_else(|| CkptError::MissingSection {
            name: name.to_string(),
        })?;
    if bytes.len() != expect * 8 {
        return Err(CkptError::Truncated {
            context: name.to_string(),
            needed: expect * 8,
            have: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect())
}

/// Read-only stream-collide context (both backends).
struct CollideCtx<'a> {
    fa: &'a [f64],
    fb: &'a [f64],
    rho_a: &'a [f64],
    rho_b: &'a [f64],
    ua_x: &'a [f64],
    ua_y: &'a [f64],
    ua_z: &'a [f64],
    ub_x: &'a [f64],
    ub_y: &'a [f64],
    ub_z: &'a [f64],
    n: usize,
    omega: f64,
    geom: Geom,
}

impl CollideCtx<'_> {
    /// The reference streamed-and-collided value for `(direction i,
    /// source node src)` — the spec the SIMD kernel matches bit for bit.
    #[inline]
    fn value(&self, i: usize, src: usize) -> (f64, f64) {
        let (sa, sb) = (self.fa[i * self.n + src], self.fb[i * self.n + src]);
        let ea = equilibrium(
            i,
            self.rho_a[src],
            self.ua_x[src],
            self.ua_y[src],
            self.ua_z[src],
        );
        let eb = equilibrium(
            i,
            self.rho_b[src],
            self.ub_x[src],
            self.ub_y[src],
            self.ub_z[src],
        );
        (sa + self.omega * (ea - sa), sb + self.omega * (eb - sb))
    }
}

/// SIMD velocity kernel for one lattice row `(y, z)`: interior 4-node
/// blocks load contiguously off the per-row neighbour bases; the row's
/// boundary nodes (where the x wrap can fire) take the scalar reference
/// helper. Output slices are the plane-local views claimed by the caller.
#[allow(clippy::too_many_arguments)] // six SoA output components is the point
fn velocity_row_simd(
    ctx: &VelCtx<'_>,
    y: usize,
    z: usize,
    uax: &mut [f64],
    uay: &mut [f64],
    uaz: &mut [f64],
    ubx: &mut [f64],
    uby: &mut [f64],
    ubz: &mut [f64],
) {
    let geom = ctx.geom;
    let nx = geom.nx;
    let n = ctx.n;
    let row = y * nx;
    let row_node = z * nx * geom.ny + row;
    let bases = geom.row_bases(y, z);
    // interior lane blocks: x in [1, nx-1) so x+CX[i] never wraps
    let hi = nx.saturating_sub(1);
    let mut x = 1usize;
    while L < hi && x + L <= hi {
        let node = row_node + x;
        let mut jx = F64x4::splat(0.0);
        let mut jy = F64x4::splat(0.0);
        let mut jz = F64x4::splat(0.0);
        for i in 0..Q {
            let f = F64x4::from_slice(&ctx.fa[i * n + node..])
                + F64x4::from_slice(&ctx.fb[i * n + node..]);
            jx += f * F64x4::splat(CX[i] as f64);
            jy += f * F64x4::splat(CY[i] as f64);
            jz += f * F64x4::splat(CZ[i] as f64);
        }
        let ra = F64x4::from_slice(&ctx.rho_a[node..]);
        let rb = F64x4::from_slice(&ctx.rho_b[node..]);
        let rho_tot = (ra + rb).max(F64x4::splat(1e-12));
        let ux = jx / rho_tot;
        let uy = jy / rho_tot;
        let uz = jz / rho_tot;
        let mut gbx = F64x4::splat(0.0);
        let mut gby = F64x4::splat(0.0);
        let mut gbz = F64x4::splat(0.0);
        let mut gax = F64x4::splat(0.0);
        let mut gay = F64x4::splat(0.0);
        let mut gaz = F64x4::splat(0.0);
        for i in 1..Q {
            let src = (bases[i] as i64 + (x as i64 + CX[i] as i64)) as usize;
            let w = F64x4::splat(WEIGHTS[i]);
            let rbn = F64x4::from_slice(&ctx.rho_b[src..]);
            let ran = F64x4::from_slice(&ctx.rho_a[src..]);
            gbx += w * rbn * F64x4::splat(CX[i] as f64);
            gby += w * rbn * F64x4::splat(CY[i] as f64);
            gbz += w * rbn * F64x4::splat(CZ[i] as f64);
            gax += w * ran * F64x4::splat(CX[i] as f64);
            gay += w * ran * F64x4::splat(CY[i] as f64);
            gaz += w * ran * F64x4::splat(CZ[i] as f64);
        }
        let ng = F64x4::splat(-ctx.g);
        let fa_fx = ng * ra * gbx;
        let fa_fy = ng * ra * gby;
        let fa_fz = ng * ra * gbz;
        let fb_fx = ng * rb * gax;
        let fb_fy = ng * rb * gay;
        let fb_fz = ng * rb * gaz;
        let ra_s = ra.max(F64x4::splat(1e-12));
        let rb_s = rb.max(F64x4::splat(1e-12));
        let tau = F64x4::splat(ctx.tau);
        (ux + tau * fa_fx / ra_s).write_to(&mut uax[row + x..]);
        (uy + tau * fa_fy / ra_s).write_to(&mut uay[row + x..]);
        (uz + tau * fa_fz / ra_s).write_to(&mut uaz[row + x..]);
        (ux + tau * fb_fx / rb_s).write_to(&mut ubx[row + x..]);
        (uy + tau * fb_fy / rb_s).write_to(&mut uby[row + x..]);
        (uz + tau * fb_fz / rb_s).write_to(&mut ubz[row + x..]);
        x += L;
    }
    // boundary and remainder nodes: the scalar reference helper
    // (SIMD blocks covered x in [1, x); x stayed 1 if none ran)
    for xb in (0..nx).filter(|&xb| xb == 0 || xb >= x) {
        let node = row_node + xb;
        let (va, vb) = ctx.node(xb, y, z, node);
        uax[row + xb] = va[0];
        uay[row + xb] = va[1];
        uaz[row + xb] = va[2];
        ubx[row + xb] = vb[0];
        uby[row + xb] = vb[1];
        ubz[row + xb] = vb[2];
    }
}

/// SIMD stream-collide kernel for direction `i` over plane `z`: for each
/// lattice row the pull source is `bases[opposite] + x + CX[opposite]`,
/// contiguous over the row interior; boundary nodes take the scalar
/// reference path.
fn collide_rows_simd(
    ctx: &CollideCtx<'_>,
    i: usize,
    z: usize,
    slot_a: &mut [f64],
    slot_b: &mut [f64],
) {
    let geom = ctx.geom;
    let nx = geom.nx;
    let n = ctx.n;
    let opp = OPPOSITE[i];
    let omega = F64x4::splat(ctx.omega);
    let fa_row = &ctx.fa[i * n..(i + 1) * n];
    let fb_row = &ctx.fb[i * n..(i + 1) * n];
    let hi = nx.saturating_sub(1);
    for y in 0..geom.ny {
        let row = y * nx;
        let bases = geom.row_bases(y, z);
        let mut x = 1usize;
        while L < hi && x + L <= hi {
            let src = (bases[opp] as i64 + (x as i64 + CX[opp] as i64)) as usize;
            let sa = F64x4::from_slice(&fa_row[src..]);
            let sb = F64x4::from_slice(&fb_row[src..]);
            let ea = equilibrium_x4(
                i,
                F64x4::from_slice(&ctx.rho_a[src..]),
                F64x4::from_slice(&ctx.ua_x[src..]),
                F64x4::from_slice(&ctx.ua_y[src..]),
                F64x4::from_slice(&ctx.ua_z[src..]),
            );
            let eb = equilibrium_x4(
                i,
                F64x4::from_slice(&ctx.rho_b[src..]),
                F64x4::from_slice(&ctx.ub_x[src..]),
                F64x4::from_slice(&ctx.ub_y[src..]),
                F64x4::from_slice(&ctx.ub_z[src..]),
            );
            (sa + omega * (ea - sa)).write_to(&mut slot_a[row + x..]);
            (sb + omega * (eb - sb)).write_to(&mut slot_b[row + x..]);
            x += L;
        }
        // boundary and remainder nodes: the scalar reference value
        // (SIMD blocks covered x in [1, x); x stayed 1 if none ran)
        for xb in (0..nx).filter(|&xb| xb == 0 || xb >= x) {
            let src = geom.neighbor(xb, y, z, opp);
            let (va, vb) = ctx.value(i, src);
            slot_a[row + xb] = va;
            slot_b[row + xb] = vb;
        }
    }
}

/// A full solver checkpoint (see [`TwoFluidLbm::checkpoint`]).
#[derive(Debug, Clone)]
pub struct LbmCheckpoint {
    /// Solver configuration.
    pub cfg: LbmConfig,
    /// Component-A distributions, SoA layout `f[i*n + node]`.
    pub fa: Vec<f64>,
    /// Component-B distributions, SoA layout `f[i*n + node]`.
    pub fb: Vec<f64>,
    /// Steering parameter at checkpoint time.
    pub miscibility: f64,
    /// Step counter at checkpoint time.
    pub steps: u64,
}

impl LbmCheckpoint {
    /// Serialized size in bytes (what migration must move between sites).
    pub fn byte_size(&self) -> usize {
        (self.fa.len() + self.fb.len()) * 8 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_conserved_over_steps() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(0.2); // strong coupling
        let (ma0, mb0) = sim.total_mass();
        sim.step_n(30);
        let (ma, mb) = sim.total_mass();
        assert!(
            ((ma - ma0) / ma0).abs() < 1e-10,
            "A mass drift {}",
            ma - ma0
        );
        assert!(
            ((mb - mb0) / mb0).abs() < 1e-10,
            "B mass drift {}",
            mb - mb0
        );
    }

    #[test]
    fn momentum_conserved_without_coupling() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(1.0); // g = 0
        sim.step_n(20);
        let p = sim.total_momentum();
        for c in p {
            assert!(c.abs() < 1e-10, "momentum drift {c}");
        }
    }

    #[test]
    fn momentum_nearly_conserved_with_coupling() {
        // pairwise SC forces cancel globally on a periodic lattice up to
        // the O(F²) error of the velocity-shift forcing
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(0.3);
        sim.step_n(20);
        let p = sim.total_momentum();
        let (ma, mb) = sim.total_mass();
        for c in p {
            assert!(c.abs() / (ma + mb) < 1e-3, "momentum drift {c}");
        }
    }

    #[test]
    fn uniform_mixture_stays_uniform_without_noise() {
        let cfg = LbmConfig {
            noise: 0.0,
            ..LbmConfig::small()
        };
        let mut sim = TwoFluidLbm::new(cfg);
        sim.set_miscibility(0.0); // even at max coupling: no seed, no domains
        sim.step_n(10);
        assert!(sim.demix_metric() < 1e-20);
    }

    #[test]
    fn strong_coupling_demixes_weak_does_not() {
        let mut miscible = TwoFluidLbm::new(LbmConfig::small());
        miscible.set_miscibility(1.0);
        let mut immiscible = TwoFluidLbm::new(LbmConfig::small());
        immiscible.set_miscibility(0.0);
        let v0 = immiscible.demix_metric();
        miscible.step_n(60);
        immiscible.step_n(60);
        assert!(!immiscible.is_unstable(), "solver went unstable");
        let v_mix = miscible.demix_metric();
        let v_demix = immiscible.demix_metric();
        // the paper's observable: lowering miscibility forms structures
        assert!(
            v_demix > v0 * 3.0,
            "no domain growth: v0={v0:.3e} v={v_demix:.3e}"
        );
        assert!(
            v_demix > v_mix * 5.0,
            "demixed variance {v_demix:.3e} not ≫ mixed {v_mix:.3e}"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mk = |threads| {
            let cfg = LbmConfig {
                threads,
                ..LbmConfig::small()
            };
            let mut sim = TwoFluidLbm::new(cfg);
            sim.set_miscibility(0.1);
            sim.step_n(10);
            sim.order_parameter()
        };
        let a = mk(1);
        let b = mk(4);
        assert_eq!(a.data(), b.data(), "thread count changed the physics");
    }

    #[test]
    fn scalar_and_simd_backends_are_bit_identical() {
        let run = |backend: lanes::Backend, threads: usize| {
            let cfg = LbmConfig {
                threads,
                // odd x extent: exercises the SIMD remainder path too
                nx: 13,
                ny: 10,
                nz: 6,
                ..LbmConfig::small()
            };
            let mut sim = TwoFluidLbm::new(cfg);
            sim.set_backend(backend);
            sim.set_miscibility(0.1);
            sim.step_n(12);
            sim.checkpoint()
        };
        let scalar = run(lanes::Backend::Scalar, 1);
        for (backend, threads) in [
            (lanes::Backend::Simd, 1),
            (lanes::Backend::Simd, 4),
            (lanes::Backend::Scalar, 4),
        ] {
            let other = run(backend, threads);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&scalar.fa),
                bits(&other.fa),
                "fa diverged ({}, {threads} threads)",
                backend.label()
            );
            assert_eq!(
                bits(&scalar.fb),
                bits(&other.fb),
                "fb diverged ({}, {threads} threads)",
                backend.label()
            );
        }
    }

    #[test]
    fn tiny_grids_fall_back_to_scalar_rows() {
        // nx < lanes+2: no SIMD block ever fits a row interior, so the
        // lane kernels must degrade to the reference path cleanly
        for (nx, ny, nz) in [(2, 5, 5), (4, 4, 4), (5, 3, 3)] {
            let cfg = LbmConfig {
                nx,
                ny,
                nz,
                ..LbmConfig::small()
            };
            let mut simd = TwoFluidLbm::new(cfg.clone());
            simd.set_backend(lanes::Backend::Simd);
            let mut scalar = TwoFluidLbm::new(cfg);
            scalar.set_backend(lanes::Backend::Scalar);
            simd.set_miscibility(0.2);
            scalar.set_miscibility(0.2);
            simd.step_n(5);
            scalar.step_n(5);
            assert_eq!(
                simd.order_parameter().data(),
                scalar.order_parameter().data(),
                "{nx}x{ny}x{nz}"
            );
        }
    }

    #[test]
    fn explicit_pool_handle_matches_shared_pool() {
        let run = |mut sim: TwoFluidLbm| {
            sim.set_miscibility(0.2);
            sim.step_n(8);
            sim.order_parameter()
        };
        let a = run(TwoFluidLbm::new(LbmConfig::small()));
        let pool = gridsteer_exec::shared(3);
        let b = run(TwoFluidLbm::with_pool(LbmConfig::small(), pool.clone()));
        let mut c = TwoFluidLbm::new(LbmConfig::small());
        c.set_pool(pool);
        assert!(std::sync::Arc::ptr_eq(c.pool(), &gridsteer_exec::shared(3)));
        let c = run(c);
        assert_eq!(a.data(), b.data());
        assert_eq!(a.data(), c.data());
    }

    #[test]
    fn steering_mid_run_changes_behaviour() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(1.0);
        sim.step_n(30);
        let v_before = sim.demix_metric();
        // the SC2003 steering moment: turn the miscibility down live
        sim.set_miscibility(0.0);
        sim.step_n(60);
        let v_after = sim.demix_metric();
        assert!(
            v_after > v_before * 3.0,
            "steering had no effect: {v_before:.3e} → {v_after:.3e}"
        );
    }

    #[test]
    fn miscibility_is_clamped() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(7.0);
        assert_eq!(sim.miscibility(), 1.0);
        sim.set_miscibility(-2.0);
        assert_eq!(sim.miscibility(), 0.0);
        assert_eq!(sim.coupling(), sim.cfg.g_max);
    }

    #[test]
    fn order_parameter_field_has_grid_dims() {
        let sim = TwoFluidLbm::new(LbmConfig::small());
        let phi = sim.order_parameter();
        assert_eq!(phi.dims(), sim.dims());
        // symmetric mixture: mean φ ≈ 0
        assert!(phi.mean().abs() < 1e-2);
    }

    #[test]
    fn slice_into_reuses_capacity_and_matches_allocating_form() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(0.2);
        sim.step_n(3);
        let (nx, ny, owned) = sim.order_parameter_slice(5);
        let mut buf = Vec::new();
        let dims = sim.order_parameter_slice_into(5, &mut buf);
        assert_eq!(dims, (nx, ny));
        assert_eq!(buf, owned);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        sim.step();
        sim.order_parameter_slice_into(5, &mut buf);
        assert_eq!(buf.capacity(), cap, "refill must not grow the buffer");
        assert_eq!(buf.as_ptr(), ptr, "refill must not reallocate");
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let mut a = TwoFluidLbm::new(LbmConfig::small());
        a.set_miscibility(0.3);
        a.step_n(7);
        let ck = a.checkpoint();
        let mut b = TwoFluidLbm::from_checkpoint(ck);
        assert_eq!(b.steps(), 7);
        assert_eq!(b.miscibility(), 0.3);
        a.step_n(5);
        b.step_n(5);
        assert_eq!(a.order_parameter().data(), b.order_parameter().data());
    }

    #[test]
    fn snapshot_sections_roundtrip_bit_identical() {
        let mut a = TwoFluidLbm::new(LbmConfig::small());
        a.set_miscibility(0.3);
        a.step_n(7);
        let mut snap = Snapshot::new(1, 0);
        a.save_sections(&mut snap);
        // through the wire format, into a fresh process
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        let mut b = TwoFluidLbm::from_snapshot(&decoded).unwrap();
        assert_eq!(b.steps(), 7);
        assert_eq!(b.miscibility(), 0.3);
        a.step_n(5);
        b.step_n(5);
        assert_eq!(a.order_parameter().data(), b.order_parameter().data());
    }

    #[test]
    fn snapshot_restore_in_place_keeps_pool() {
        let mut a = TwoFluidLbm::new(LbmConfig::small());
        a.set_miscibility(0.2);
        a.step_n(4);
        let mut snap = Snapshot::new(1, 0);
        a.save_sections(&mut snap);
        a.step_n(6); // diverge past the checkpoint
        let pool = Arc::clone(a.pool());
        a.restore_sections(&snap).unwrap();
        assert!(Arc::ptr_eq(a.pool(), &pool), "restore must keep the pool");
        assert_eq!(a.steps(), 4);
    }

    #[test]
    fn snapshot_missing_or_short_sections_are_typed_errors() {
        let sim = TwoFluidLbm::new(LbmConfig::small());
        let mut snap = Snapshot::new(1, 0);
        sim.save_sections(&mut snap);
        let mut no_fb = snap.clone();
        no_fb.sections.retain(|s| s.name != SEC_LBM_FB);
        assert!(matches!(
            TwoFluidLbm::from_snapshot(&no_fb),
            Err(CkptError::MissingSection { .. })
        ));
        let mut short = snap.clone();
        short.sections[1].bytes.truncate(40);
        assert!(matches!(
            TwoFluidLbm::from_snapshot(&short),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "tau must exceed 0.5")]
    fn invalid_tau_rejected() {
        let cfg = LbmConfig {
            tau: 0.4,
            ..LbmConfig::small()
        };
        let _ = TwoFluidLbm::new(cfg);
    }
}
