//! The two-component solver.
//!
//! Physics: two BGK components A and B on D3Q19, coupled by the Shan–Chen
//! pseudopotential force with ψ = ρ:
//!
//! ```text
//! F_A(x) = −g ρ_A(x) Σ_i w_i ρ_B(x + c_i) c_i      (and symmetrically F_B)
//! ```
//!
//! `g` is the inter-component coupling. The *steering parameter* exposed to
//! users is the paper's **miscibility** m ∈ \[0, 1\], mapped as
//! `g = g_max · (1 − m)`: fully miscible fluids feel no coupling; as the
//! steerer lowers m the mixture crosses the spinodal and domains form —
//! the structures the SC2003 demo rendered as isosurfaces live.
//!
//! Each step runs three parallel passes (density → force/velocity → pull
//! stream-collide), all race-free and deterministic for any thread count.
//!
//! Parallelism: the passes dispatch onto a persistent
//! [`gridsteer_exec::ExecPool`] in whole-z-plane chunks — a fixed
//! chunk→node mapping independent of the pool's thread count, so the
//! physics is bit-identical at any parallelism and no OS threads are
//! spawned on the per-step hot path.

use crate::lattice::{equilibrium, CX, CY, CZ, Q, WEIGHTS};
use gridsteer_exec::ExecPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use viz::Field3;

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct LbmConfig {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// BGK relaxation time (both components).
    pub tau: f64,
    /// Coupling at miscibility 0 (full demixing).
    pub g_max: f64,
    /// Mean density per component.
    pub rho0: f64,
    /// Initial density perturbation amplitude (seeds spinodal noise).
    pub noise: f64,
    /// RNG seed for the initial perturbation.
    pub seed: u64,
    /// Worker threads for the parallel passes. Defaults to the detected
    /// parallelism (clamped; see [`gridsteer_exec::default_threads`]); an
    /// explicitly set value wins. The thread count never changes results —
    /// chunking is per z-plane regardless.
    pub threads: usize,
}

impl Default for LbmConfig {
    fn default() -> Self {
        LbmConfig {
            nx: 32,
            ny: 32,
            nz: 32,
            tau: 1.0,
            g_max: 2.5,
            rho0: 0.5,
            noise: 0.01,
            seed: 42,
            threads: gridsteer_exec::default_threads(),
        }
    }
}

impl LbmConfig {
    /// A small fast configuration for tests.
    pub fn small() -> Self {
        LbmConfig {
            nx: 12,
            ny: 12,
            nz: 12,
            ..Default::default()
        }
    }
}

/// Spatial variance of an order-parameter field — the demixing metric of
/// [`TwoFluidLbm::demix_metric`], exposed over a precomputed field so
/// callers that already hold φ (the monitor adapter publishes the full
/// lattice anyway) never pay a second distribution pass, and the metric
/// has exactly one definition.
pub fn demix_of(phi: &Field3) -> f64 {
    let mean = phi.mean() as f64;
    phi.data()
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / phi.len() as f64
}

/// Copyable grid geometry shared by the parallel passes (avoids borrowing
/// `self` inside scoped threads).
#[derive(Debug, Clone, Copy)]
struct Geom {
    nx: usize,
    ny: usize,
    nz: usize,
}

impl Geom {
    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.nx * (y + self.ny * z)
    }

    /// Periodic neighbour index in direction `i`.
    #[inline]
    fn neighbor(&self, x: usize, y: usize, z: usize, i: usize) -> usize {
        let px = (x as i32 + CX[i]).rem_euclid(self.nx as i32) as usize;
        let py = (y as i32 + CY[i]).rem_euclid(self.ny as i32) as usize;
        let pz = (z as i32 + CZ[i]).rem_euclid(self.nz as i32) as usize;
        self.idx(px, py, pz)
    }
}

/// The two-fluid Lattice-Boltzmann simulation.
pub struct TwoFluidLbm {
    cfg: LbmConfig,
    /// Worker pool the three passes dispatch onto (shared across sims with
    /// the same thread count; replaceable via [`TwoFluidLbm::set_pool`]).
    pool: Arc<ExecPool>,
    n: usize,
    plane: usize,
    /// Distributions, AoS layout `f[node*Q + i]`, per component.
    fa: Vec<f64>,
    fb: Vec<f64>,
    /// Scratch buffers for the pull pass.
    fa_new: Vec<f64>,
    fb_new: Vec<f64>,
    /// Densities (refreshed each step).
    rho_a: Vec<f64>,
    rho_b: Vec<f64>,
    /// Per-component equilibrium velocities (refreshed each step).
    ua: Vec<[f64; 3]>,
    ub: Vec<[f64; 3]>,
    /// Current miscibility m ∈ \[0,1\].
    miscibility: f64,
    steps: u64,
}

impl TwoFluidLbm {
    /// Initialize a perturbed symmetric mixture at rest, on the shared
    /// pool for `cfg.threads`.
    pub fn new(cfg: LbmConfig) -> Self {
        let pool = gridsteer_exec::shared(cfg.threads);
        Self::with_pool(cfg, pool)
    }

    /// Initialize on an explicit executor pool (scenario runs and the
    /// `exp_*` binaries pass one pool to every subsystem).
    pub fn with_pool(cfg: LbmConfig, pool: Arc<ExecPool>) -> Self {
        assert!(cfg.nx >= 2 && cfg.ny >= 2 && cfg.nz >= 2, "grid too small");
        assert!(cfg.tau > 0.5, "tau must exceed 0.5 for stability");
        let n = cfg.nx * cfg.ny * cfg.nz;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut fa = vec![0.0; n * Q];
        let mut fb = vec![0.0; n * Q];
        for node in 0..n {
            let eps: f64 = rng.gen_range(-1.0..1.0) * cfg.noise;
            let ra = cfg.rho0 * (1.0 + eps);
            let rb = cfg.rho0 * (1.0 - eps);
            for i in 0..Q {
                fa[node * Q + i] = WEIGHTS[i] * ra;
                fb[node * Q + i] = WEIGHTS[i] * rb;
            }
        }
        TwoFluidLbm {
            plane: cfg.nx * cfg.ny,
            n,
            fa_new: vec![0.0; n * Q],
            fb_new: vec![0.0; n * Q],
            rho_a: vec![0.0; n],
            rho_b: vec![0.0; n],
            ua: vec![[0.0; 3]; n],
            ub: vec![[0.0; 3]; n],
            fa,
            fb,
            miscibility: 1.0,
            pool,
            cfg,
            steps: 0,
        }
    }

    /// Replace the executor pool (results are unaffected: chunking is
    /// fixed per z-plane, so any pool produces identical physics).
    pub fn set_pool(&mut self, pool: Arc<ExecPool>) {
        self.pool = pool;
    }

    /// The executor pool this simulation dispatches onto.
    pub fn pool(&self) -> &Arc<ExecPool> {
        &self.pool
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.cfg.nx, self.cfg.ny, self.cfg.nz)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current miscibility (the steering parameter of §2.2).
    pub fn miscibility(&self) -> f64 {
        self.miscibility
    }

    /// Steer the miscibility; values are clamped to \[0, 1\].
    pub fn set_miscibility(&mut self, m: f64) {
        self.miscibility = m.clamp(0.0, 1.0);
    }

    /// Effective inter-component coupling `g`.
    pub fn coupling(&self) -> f64 {
        self.cfg.g_max * (1.0 - self.miscibility)
    }

    fn geom(&self) -> Geom {
        Geom {
            nx: self.cfg.nx,
            ny: self.cfg.ny,
            nz: self.cfg.nz,
        }
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        self.pass_density();
        self.pass_velocity();
        self.pass_stream_collide();
        std::mem::swap(&mut self.fa, &mut self.fa_new);
        std::mem::swap(&mut self.fb, &mut self.fb_new);
        self.steps += 1;
    }

    /// Advance `n` steps.
    pub fn step_n(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn pass_density(&mut self) {
        let plane = self.plane;
        let fa = &self.fa;
        let fb = &self.fb;
        // one chunk per z-plane: fixed mapping, any thread count
        self.pool.parallel_chunks2(
            &mut self.rho_a,
            &mut self.rho_b,
            plane,
            plane,
            |ci, ca, cb| {
                let start = ci * plane;
                for (k, (ra, rb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    let node = start + k;
                    let mut sa = 0.0;
                    let mut sb = 0.0;
                    for i in 0..Q {
                        sa += fa[node * Q + i];
                        sb += fb[node * Q + i];
                    }
                    *ra = sa;
                    *rb = sb;
                }
            },
        );
    }

    fn pass_velocity(&mut self) {
        let g = self.coupling();
        let tau = self.cfg.tau;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let fa = &self.fa;
        let fb = &self.fb;
        let rho_a = &self.rho_a;
        let rho_b = &self.rho_b;
        let geom = self.geom();
        let plane = self.plane;
        self.pool
            .parallel_chunks2(&mut self.ua, &mut self.ub, plane, plane, |ci, ca, cb| {
                let start = ci * plane;
                for (k, (va, vb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    let node = start + k;
                    let z = node / (nx * ny);
                    let rem = node % (nx * ny);
                    let y = rem / nx;
                    let x = rem % nx;
                    // momenta
                    let mut j = [0.0f64; 3];
                    for i in 0..Q {
                        let f = fa[node * Q + i] + fb[node * Q + i];
                        j[0] += f * CX[i] as f64;
                        j[1] += f * CY[i] as f64;
                        j[2] += f * CZ[i] as f64;
                    }
                    let ra = rho_a[node];
                    let rb = rho_b[node];
                    let rho_tot = (ra + rb).max(1e-12);
                    let u = [j[0] / rho_tot, j[1] / rho_tot, j[2] / rho_tot];
                    // Shan–Chen forces
                    let mut grad_b = [0.0f64; 3];
                    let mut grad_a = [0.0f64; 3];
                    for i in 1..Q {
                        let nb = geom.neighbor(x, y, z, i);
                        let w = WEIGHTS[i];
                        grad_b[0] += w * rho_b[nb] * CX[i] as f64;
                        grad_b[1] += w * rho_b[nb] * CY[i] as f64;
                        grad_b[2] += w * rho_b[nb] * CZ[i] as f64;
                        grad_a[0] += w * rho_a[nb] * CX[i] as f64;
                        grad_a[1] += w * rho_a[nb] * CY[i] as f64;
                        grad_a[2] += w * rho_a[nb] * CZ[i] as f64;
                    }
                    let fa_force = [
                        -g * ra * grad_b[0],
                        -g * ra * grad_b[1],
                        -g * ra * grad_b[2],
                    ];
                    let fb_force = [
                        -g * rb * grad_a[0],
                        -g * rb * grad_a[1],
                        -g * rb * grad_a[2],
                    ];
                    // per-component equilibrium velocity (velocity-shift forcing)
                    let ra_s = ra.max(1e-12);
                    let rb_s = rb.max(1e-12);
                    *va = [
                        u[0] + tau * fa_force[0] / ra_s,
                        u[1] + tau * fa_force[1] / ra_s,
                        u[2] + tau * fa_force[2] / ra_s,
                    ];
                    *vb = [
                        u[0] + tau * fb_force[0] / rb_s,
                        u[1] + tau * fb_force[1] / rb_s,
                        u[2] + tau * fb_force[2] / rb_s,
                    ];
                }
            });
    }

    fn pass_stream_collide(&mut self) {
        let omega = 1.0 / self.cfg.tau;
        let (nx, ny) = (self.cfg.nx, self.cfg.ny);
        let fa = &self.fa;
        let fb = &self.fb;
        let rho_a = &self.rho_a;
        let rho_b = &self.rho_b;
        let ua = &self.ua;
        let ub = &self.ub;
        let geom = self.geom();
        let plane = self.plane;
        let plane_q = plane * Q;
        self.pool.parallel_chunks2(
            &mut self.fa_new,
            &mut self.fb_new,
            plane_q,
            plane_q,
            |ci, ca, cb| {
                let start = ci * plane;
                for (k, (slot_a, slot_b)) in ca
                    .chunks_exact_mut(Q)
                    .zip(cb.chunks_exact_mut(Q))
                    .enumerate()
                {
                    let node = start + k;
                    let z = node / (nx * ny);
                    let rem = node % (nx * ny);
                    let y = rem / nx;
                    let x = rem % nx;
                    for i in 0..Q {
                        // pull: the value streaming into (node, i)
                        // comes from the node at −c_i
                        let opp = crate::lattice::OPPOSITE[i];
                        let src = geom.neighbor(x, y, z, opp);
                        let (sa, sb) = (fa[src * Q + i], fb[src * Q + i]);
                        let va = ua[src];
                        let vb = ub[src];
                        let ea = equilibrium(i, rho_a[src], va[0], va[1], va[2]);
                        let eb = equilibrium(i, rho_b[src], vb[0], vb[1], vb[2]);
                        slot_a[i] = sa + omega * (ea - sa);
                        slot_b[i] = sb + omega * (eb - sb);
                    }
                }
            },
        );
    }

    /// Total mass per component.
    pub fn total_mass(&self) -> (f64, f64) {
        (self.fa.iter().sum(), self.fb.iter().sum())
    }

    /// Total momentum (both components).
    pub fn total_momentum(&self) -> [f64; 3] {
        let mut p = [0.0f64; 3];
        for node in 0..self.n {
            for i in 0..Q {
                let f = self.fa[node * Q + i] + self.fb[node * Q + i];
                p[0] += f * CX[i] as f64;
                p[1] += f * CY[i] as f64;
                p[2] += f * CZ[i] as f64;
            }
        }
        p
    }

    /// The order parameter φ = ρA − ρB as a renderable field — the
    /// "sample" the simulation component emits for the visualization
    /// (§2.1: "the simulation component periodically … emits 'samples' for
    /// consumption by the visualization component").
    pub fn order_parameter(&self) -> Field3 {
        let mut data = Vec::with_capacity(self.n);
        for node in 0..self.n {
            let mut ra = 0.0;
            let mut rb = 0.0;
            for i in 0..Q {
                ra += self.fa[node * Q + i];
                rb += self.fb[node * Q + i];
            }
            data.push((ra - rb) as f32);
        }
        Field3::from_vec(self.cfg.nx, self.cfg.ny, self.cfg.nz, data)
    }

    /// One z-plane of the order parameter φ, row-major (`x` fastest) —
    /// the 2-D field slice the monitor bus ships to thin viewers that
    /// cannot afford the full lattice. Computes only the requested plane.
    /// Panics if `z` is out of range.
    pub fn order_parameter_slice(&self, z: usize) -> (usize, usize, Vec<f32>) {
        assert!(
            z < self.cfg.nz,
            "slice plane {z} outside 0..{}",
            self.cfg.nz
        );
        let mut data = Vec::with_capacity(self.cfg.nx * self.cfg.ny);
        for y in 0..self.cfg.ny {
            for x in 0..self.cfg.nx {
                let node = x + self.cfg.nx * (y + self.cfg.ny * z);
                let mut ra = 0.0;
                let mut rb = 0.0;
                for i in 0..Q {
                    ra += self.fa[node * Q + i];
                    rb += self.fb[node * Q + i];
                }
                data.push((ra - rb) as f32);
            }
        }
        (self.cfg.nx, self.cfg.ny, data)
    }

    /// Spatial variance of φ — a scalar demixing metric: near zero for a
    /// mixed state, growing as domains form.
    pub fn demix_metric(&self) -> f64 {
        demix_of(&self.order_parameter())
    }

    /// True if any distribution value is non-finite (stability check).
    pub fn is_unstable(&self) -> bool {
        self.fa.iter().chain(self.fb.iter()).any(|v| !v.is_finite())
    }

    /// Snapshot the full solver state for migration — §2.4: "RealityGrid
    /// is developing the ability to migrate both computation and
    /// visualization within a session without any disturbance or
    /// intervention on the part of the participating clients."
    pub fn checkpoint(&self) -> LbmCheckpoint {
        LbmCheckpoint {
            cfg: self.cfg.clone(),
            fa: self.fa.clone(),
            fb: self.fb.clone(),
            miscibility: self.miscibility,
            steps: self.steps,
        }
    }

    /// Resume a checkpointed run, bit-identically.
    pub fn from_checkpoint(ck: LbmCheckpoint) -> TwoFluidLbm {
        let n = ck.cfg.nx * ck.cfg.ny * ck.cfg.nz;
        assert_eq!(ck.fa.len(), n * Q, "corrupt checkpoint");
        assert_eq!(ck.fb.len(), n * Q, "corrupt checkpoint");
        TwoFluidLbm {
            pool: gridsteer_exec::shared(ck.cfg.threads),
            plane: ck.cfg.nx * ck.cfg.ny,
            n,
            fa_new: vec![0.0; n * Q],
            fb_new: vec![0.0; n * Q],
            rho_a: vec![0.0; n],
            rho_b: vec![0.0; n],
            ua: vec![[0.0; 3]; n],
            ub: vec![[0.0; 3]; n],
            fa: ck.fa,
            fb: ck.fb,
            miscibility: ck.miscibility,
            cfg: ck.cfg,
            steps: ck.steps,
        }
    }
}

/// A full solver checkpoint (see [`TwoFluidLbm::checkpoint`]).
#[derive(Debug, Clone)]
pub struct LbmCheckpoint {
    /// Solver configuration.
    pub cfg: LbmConfig,
    /// Component-A distributions.
    pub fa: Vec<f64>,
    /// Component-B distributions.
    pub fb: Vec<f64>,
    /// Steering parameter at checkpoint time.
    pub miscibility: f64,
    /// Step counter at checkpoint time.
    pub steps: u64,
}

impl LbmCheckpoint {
    /// Serialized size in bytes (what migration must move between sites).
    pub fn byte_size(&self) -> usize {
        (self.fa.len() + self.fb.len()) * 8 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_conserved_over_steps() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(0.2); // strong coupling
        let (ma0, mb0) = sim.total_mass();
        sim.step_n(30);
        let (ma, mb) = sim.total_mass();
        assert!(
            ((ma - ma0) / ma0).abs() < 1e-10,
            "A mass drift {}",
            ma - ma0
        );
        assert!(
            ((mb - mb0) / mb0).abs() < 1e-10,
            "B mass drift {}",
            mb - mb0
        );
    }

    #[test]
    fn momentum_conserved_without_coupling() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(1.0); // g = 0
        sim.step_n(20);
        let p = sim.total_momentum();
        for c in p {
            assert!(c.abs() < 1e-10, "momentum drift {c}");
        }
    }

    #[test]
    fn momentum_nearly_conserved_with_coupling() {
        // pairwise SC forces cancel globally on a periodic lattice up to
        // the O(F²) error of the velocity-shift forcing
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(0.3);
        sim.step_n(20);
        let p = sim.total_momentum();
        let (ma, mb) = sim.total_mass();
        for c in p {
            assert!(c.abs() / (ma + mb) < 1e-3, "momentum drift {c}");
        }
    }

    #[test]
    fn uniform_mixture_stays_uniform_without_noise() {
        let cfg = LbmConfig {
            noise: 0.0,
            ..LbmConfig::small()
        };
        let mut sim = TwoFluidLbm::new(cfg);
        sim.set_miscibility(0.0); // even at max coupling: no seed, no domains
        sim.step_n(10);
        assert!(sim.demix_metric() < 1e-20);
    }

    #[test]
    fn strong_coupling_demixes_weak_does_not() {
        let mut miscible = TwoFluidLbm::new(LbmConfig::small());
        miscible.set_miscibility(1.0);
        let mut immiscible = TwoFluidLbm::new(LbmConfig::small());
        immiscible.set_miscibility(0.0);
        let v0 = immiscible.demix_metric();
        miscible.step_n(60);
        immiscible.step_n(60);
        assert!(!immiscible.is_unstable(), "solver went unstable");
        let v_mix = miscible.demix_metric();
        let v_demix = immiscible.demix_metric();
        // the paper's observable: lowering miscibility forms structures
        assert!(
            v_demix > v0 * 3.0,
            "no domain growth: v0={v0:.3e} v={v_demix:.3e}"
        );
        assert!(
            v_demix > v_mix * 5.0,
            "demixed variance {v_demix:.3e} not ≫ mixed {v_mix:.3e}"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mk = |threads| {
            let cfg = LbmConfig {
                threads,
                ..LbmConfig::small()
            };
            let mut sim = TwoFluidLbm::new(cfg);
            sim.set_miscibility(0.1);
            sim.step_n(10);
            sim.order_parameter()
        };
        let a = mk(1);
        let b = mk(4);
        assert_eq!(a.data(), b.data(), "thread count changed the physics");
    }

    #[test]
    fn explicit_pool_handle_matches_shared_pool() {
        let run = |mut sim: TwoFluidLbm| {
            sim.set_miscibility(0.2);
            sim.step_n(8);
            sim.order_parameter()
        };
        let a = run(TwoFluidLbm::new(LbmConfig::small()));
        let pool = gridsteer_exec::shared(3);
        let b = run(TwoFluidLbm::with_pool(LbmConfig::small(), pool.clone()));
        let mut c = TwoFluidLbm::new(LbmConfig::small());
        c.set_pool(pool);
        assert!(std::sync::Arc::ptr_eq(c.pool(), &gridsteer_exec::shared(3)));
        let c = run(c);
        assert_eq!(a.data(), b.data());
        assert_eq!(a.data(), c.data());
    }

    #[test]
    fn steering_mid_run_changes_behaviour() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(1.0);
        sim.step_n(30);
        let v_before = sim.demix_metric();
        // the SC2003 steering moment: turn the miscibility down live
        sim.set_miscibility(0.0);
        sim.step_n(60);
        let v_after = sim.demix_metric();
        assert!(
            v_after > v_before * 3.0,
            "steering had no effect: {v_before:.3e} → {v_after:.3e}"
        );
    }

    #[test]
    fn miscibility_is_clamped() {
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(7.0);
        assert_eq!(sim.miscibility(), 1.0);
        sim.set_miscibility(-2.0);
        assert_eq!(sim.miscibility(), 0.0);
        assert_eq!(sim.coupling(), sim.cfg.g_max);
    }

    #[test]
    fn order_parameter_field_has_grid_dims() {
        let sim = TwoFluidLbm::new(LbmConfig::small());
        let phi = sim.order_parameter();
        assert_eq!(phi.dims(), sim.dims());
        // symmetric mixture: mean φ ≈ 0
        assert!(phi.mean().abs() < 1e-2);
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let mut a = TwoFluidLbm::new(LbmConfig::small());
        a.set_miscibility(0.3);
        a.step_n(7);
        let ck = a.checkpoint();
        let mut b = TwoFluidLbm::from_checkpoint(ck);
        assert_eq!(b.steps(), 7);
        assert_eq!(b.miscibility(), 0.3);
        a.step_n(5);
        b.step_n(5);
        assert_eq!(a.order_parameter().data(), b.order_parameter().data());
    }

    #[test]
    #[should_panic(expected = "tau must exceed 0.5")]
    fn invalid_tau_rejected() {
        let cfg = LbmConfig {
            tau: 0.4,
            ..LbmConfig::small()
        };
        let _ = TwoFluidLbm::new(cfg);
    }
}
