//! # lbm — two-component Lattice-Boltzmann fluid with steerable miscibility
//!
//! The RealityGrid demonstration (§2.2 of the paper): "The computation was
//! a Lattice Boltzmann 3D code simulating a mixture of two fluids. The
//! parameter used for the steering was the miscibility of the fluids. The
//! simulation was on a 3D grid with periodic boundary conditions. As the
//! miscibility parameter was altered, the structures formed by the fluids
//! changed and the visualization was necessary so that these changes could
//! be observed."
//!
//! This crate is that code: a D3Q19 BGK solver for two components coupled
//! by a Shan–Chen-style pseudopotential force. The steerable *miscibility*
//! maps inversely onto the inter-component coupling strength: miscibility
//! 1.0 ⇒ zero coupling (the fluids mix freely), miscibility 0.0 ⇒ maximum
//! coupling (spinodal decomposition; the domain-forming "structures" the
//! demo visualized as isosurfaces of the order parameter φ = ρA − ρB).
//!
//! Parallelism follows the paper's platform (an SGI Onyx running the code
//! across processors): slab decomposition over z, with a three-pass scheme
//! (density → force → pull stream-collide) that is race-free by
//! construction. The passes dispatch whole-z-plane chunks onto a
//! persistent [`gridsteer_exec::ExecPool`] — no thread spawning on the
//! step hot path — and the fixed chunk→plane mapping keeps the physics
//! bit-identical for any thread count.

pub mod lattice;
pub mod sim;

pub use lattice::{CX, CY, CZ, OPPOSITE, Q, WEIGHTS};
pub use sim::{
    demix_of, demix_of_slice, LbmCheckpoint, LbmConfig, TwoFluidLbm, SEC_LBM_FA, SEC_LBM_FB,
    SEC_LBM_META,
};
