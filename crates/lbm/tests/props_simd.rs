//! Property: the SIMD collide/stream backend is **bit-identical** to the
//! scalar one over arbitrary configurations — grid shapes that exercise
//! every remainder-lane path, perturbation seeds, relaxation times, and
//! multi-step evolution. The vectorized kernel executes the exact scalar
//! operation sequence per lane, so this is equality of `f64` bits, not a
//! tolerance check.

use lbm::{LbmConfig, TwoFluidLbm};
use proptest::prelude::*;

fn run(cfg: &LbmConfig, backend: lanes::Backend, steps: usize) -> (Vec<u64>, Vec<u64>) {
    let mut sim = TwoFluidLbm::new(cfg.clone());
    sim.set_backend(backend);
    sim.step_n(steps);
    let ck = sim.checkpoint();
    (
        ck.fa.iter().map(|v| v.to_bits()).collect(),
        ck.fb.iter().map(|v| v.to_bits()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn collide_stream_is_bit_identical_across_backends(
        nx in 3usize..9,
        ny in 3usize..7,
        nz in 3usize..6,
        seed in 0u64..1000,
        tau in 0.7f64..1.3,
        steps in 1usize..4,
    ) {
        let cfg = LbmConfig {
            nx,
            ny,
            nz,
            tau,
            seed,
            threads: 1,
            ..Default::default()
        };
        let scalar = run(&cfg, lanes::Backend::Scalar, steps);
        let simd = run(&cfg, lanes::Backend::Simd, steps);
        prop_assert_eq!(scalar.0, simd.0, "fa bits diverged");
        prop_assert_eq!(scalar.1, simd.1, "fb bits diverged");
    }
}
