//! Connection authentication.
//!
//! §3.2 is blunt about VISIT's weakness: "a major drawback of VISIT is
//! that it does not provide any encryption or other means of security
//! except for a connection password that is transferred in clear-text."
//! We reproduce that mode faithfully ([`Password::ClearText`]) *and*
//! provide the keyed-digest mode that the UNICORE integration effectively
//! supplies ("these problems are resolved by the integration of VISIT with
//! UNICORE", §3.2): the secret never crosses the wire; a challenge/response
//! digest does.
//!
//! The digest is a toy (FNV-1a over secret‖challenge) — the reproduction
//! models *trust flow*, not cryptography (see DESIGN.md §2).

/// Authentication configuration shared by client and server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Password {
    /// No authentication at all.
    Open,
    /// The paper's clear-text connection password.
    ClearText(String),
    /// Keyed challenge/response; the secret stays local.
    Keyed(String),
}

/// 64-bit FNV-1a — the toy digest used for the keyed mode.
pub fn digest(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Password {
    /// Bytes the client puts into its Hello payload. For `Keyed`, the
    /// `challenge` (issued out-of-band at job submission in the UNICORE
    /// integration; here passed explicitly) is mixed with the secret.
    pub fn client_token(&self, challenge: u64) -> Vec<u8> {
        match self {
            Password::Open => Vec::new(),
            Password::ClearText(p) => p.as_bytes().to_vec(),
            Password::Keyed(secret) => {
                let mut buf = secret.as_bytes().to_vec();
                buf.extend_from_slice(&challenge.to_le_bytes());
                digest(&buf).to_le_bytes().to_vec()
            }
        }
    }

    /// Server-side check of a received token.
    pub fn verify(&self, token: &[u8], challenge: u64) -> bool {
        match self {
            Password::Open => true,
            Password::ClearText(p) => token == p.as_bytes(),
            Password::Keyed(_) => self.client_token(challenge) == token,
        }
    }

    /// Whether the secret itself is visible on the wire (true only for the
    /// paper's original clear-text mode — the property EV3 comments on).
    pub fn leaks_secret(&self) -> bool {
        matches!(self, Password::ClearText(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_accepts_anything() {
        assert!(Password::Open.verify(b"", 0));
        assert!(Password::Open.verify(b"junk", 7));
    }

    #[test]
    fn cleartext_matches_exactly() {
        let p = Password::ClearText("pepc2003".into());
        assert!(p.verify(b"pepc2003", 0));
        assert!(!p.verify(b"pepc2004", 0));
        assert!(p.leaks_secret());
        // the clear-text token IS the password — the paper's weakness
        assert_eq!(p.client_token(123), b"pepc2003".to_vec());
    }

    #[test]
    fn keyed_never_exposes_secret() {
        let p = Password::Keyed("s3cret".into());
        let token = p.client_token(42);
        assert!(!token.windows(6).any(|w| w == b"s3cret"));
        assert!(p.verify(&token, 42));
        assert!(!p.leaks_secret());
    }

    #[test]
    fn keyed_binds_challenge() {
        let p = Password::Keyed("s3cret".into());
        let token = p.client_token(42);
        // replay under a different challenge fails
        assert!(!p.verify(&token, 43));
    }

    #[test]
    fn keyed_wrong_secret_rejected() {
        let server = Password::Keyed("right".into());
        let client = Password::Keyed("wrong".into());
        let token = client.client_token(5);
        assert!(!server.verify(&token, 5));
    }

    #[test]
    fn digest_is_stable_and_spreads() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
        assert_ne!(digest(b""), digest(b"\0"));
    }
}
