//! The collaborative multiplexer (`vbroker`).
//!
//! §3.3: "the former task can easily be implemented by a 'multiplexer' that
//! simply sends all VISIT send-requests to all participating
//! visualizations, ensuring that everyone views the same data.
//! Receive-requests are only sent to a 'master' visualization, so that only
//! that master is able to actively steer the application. The master-role
//! can be moved between the \[participants\] allowing for a coordinated
//! cooperative steering. This functionality has been implemented in an
//! application (the vbroker) that is part of the standard VISIT
//! distribution."
//!
//! [`VBroker`] sits between one simulation-side link and N
//! visualization-side links. It is transport-generic, so the same broker
//! runs over [`MemLink`](crate::link::MemLink) threads, real TCP, or
//! virtual-time links (experiment EV2 uses the latter to measure fan-out
//! cost vs. participant count).

use crate::link::{FrameLink, LinkError};
use crate::wire::{Frame, MsgKind};
use std::collections::BTreeMap;
use std::time::Duration;

/// Identifies an attached visualization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewerId(pub u32);

/// Broker counters (per-direction byte accounting for EV2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BrokerStats {
    /// Frames received from the simulation.
    pub sim_frames: u64,
    /// Total frames fanned out to viewers (sim_frames × live viewers).
    pub fanout_frames: u64,
    /// Bytes received from the simulation.
    pub bytes_in: u64,
    /// Bytes sent to viewers (the fan-out amplification).
    pub bytes_out: u64,
    /// Requests forwarded to the master.
    pub requests_forwarded: u64,
}

/// The multiplexer between one simulation and N visualizations.
pub struct VBroker<S: FrameLink, V: FrameLink> {
    sim: S,
    viewers: BTreeMap<ViewerId, V>,
    master: Option<ViewerId>,
    next_id: u32,
    stats: BrokerStats,
}

impl<S: FrameLink, V: FrameLink> VBroker<S, V> {
    /// Wrap an (already authenticated) simulation link.
    pub fn new(sim: S) -> Self {
        VBroker {
            sim,
            viewers: BTreeMap::new(),
            master: None,
            next_id: 0,
            stats: BrokerStats::default(),
        }
    }

    /// Attach a visualization. The first attached viewer becomes master —
    /// every later viewer joins as a passive observer.
    pub fn attach(&mut self, link: V) -> ViewerId {
        let id = ViewerId(self.next_id);
        self.next_id += 1;
        self.viewers.insert(id, link);
        if self.master.is_none() {
            self.master = Some(id);
        }
        id
    }

    /// Detach a visualization. If it was master, mastership passes to the
    /// lowest remaining id (so the session stays steerable).
    pub fn detach(&mut self, id: ViewerId) {
        self.viewers.remove(&id);
        if self.master == Some(id) {
            self.master = self.viewers.keys().min().copied();
        }
    }

    /// Current master.
    pub fn master(&self) -> Option<ViewerId> {
        self.master
    }

    /// Move the master role ("coordinated cooperative steering").
    pub fn pass_master(&mut self, to: ViewerId) -> bool {
        if self.viewers.contains_key(&to) {
            self.master = Some(to);
            true
        } else {
            false
        }
    }

    /// Attached viewer count.
    pub fn viewer_count(&self) -> usize {
        self.viewers.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// Process one frame from the simulation, waiting up to `poll`.
    ///
    /// * `Data` frames are broadcast to **all** viewers.
    /// * `Request` frames go to the **master only**; its reply (or NoData)
    ///   is relayed back to the simulation. If the master fails to answer
    ///   within `master_timeout`, the broker answers NoData itself — the
    ///   simulation's timeout guarantee must survive a dead master.
    /// * `Bye` is broadcast and `Ok(false)` is returned.
    ///
    /// Returns `Ok(true)` while the session is live.
    pub fn pump(&mut self, poll: Duration, master_timeout: Duration) -> Result<bool, LinkError> {
        let raw = match self.sim.recv_timeout(poll) {
            Ok(r) => r,
            Err(LinkError::Timeout) => return Ok(true),
            Err(e) => return Err(e),
        };
        let frame = Frame::decode(&raw).ok_or(LinkError::Io("bad frame".into()))?;
        self.stats.sim_frames += 1;
        self.stats.bytes_in += raw.len() as u64;
        match frame.kind {
            MsgKind::Hello => {
                // The broker is the simulation's session endpoint: accept
                // the connection itself (per-user authentication happens at
                // viewer attach time in the UNICORE integration, §3.3).
                self.sim.send(&Frame::bare(MsgKind::HelloAck, 0).encode())?;
                Ok(true)
            }
            MsgKind::Data => {
                // broadcast in viewer-id order (BTreeMap); dead viewers are
                // detached on send failure
                let mut dead = Vec::new();
                for (&id, link) in self.viewers.iter_mut() {
                    match link.send(&raw) {
                        Ok(()) => {
                            self.stats.fanout_frames += 1;
                            self.stats.bytes_out += raw.len() as u64;
                        }
                        Err(_) => dead.push(id),
                    }
                }
                for id in dead {
                    self.detach(id);
                }
                Ok(true)
            }
            MsgKind::Request => {
                self.stats.requests_forwarded += 1;
                let tag = frame.tag;
                let answer = self.ask_master(&raw, master_timeout);
                let reply = answer.unwrap_or_else(|| Frame::bare(MsgKind::NoData, tag).encode());
                self.sim.send(&reply)?;
                self.stats.bytes_out += reply.len() as u64;
                Ok(true)
            }
            MsgKind::Bye => {
                for link in self.viewers.values_mut() {
                    let _ = link.send(&raw);
                }
                Ok(false)
            }
            _ => Ok(true),
        }
    }

    /// Forward a request to the master and collect its answer.
    fn ask_master(&mut self, raw: &[u8], timeout: Duration) -> Option<Vec<u8>> {
        let master = self.master?;
        let link = self.viewers.get_mut(&master)?;
        if link.send(raw).is_err() {
            self.detach(master);
            return None;
        }
        self.viewers.get_mut(&master)?.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::MemLink;
    use crate::value::{Endianness, VisitValue};
    use std::thread;

    const TAG: u32 = 5;

    /// Build a broker with one simulation link and `n` viewer links,
    /// returning (sim-side link, broker, viewer-side links).
    fn rig(n: usize) -> (MemLink, VBroker<MemLink, MemLink>, Vec<(ViewerId, MemLink)>) {
        let (sim_side, broker_sim) = MemLink::pair();
        let mut broker = VBroker::new(broker_sim);
        let mut viewers = Vec::new();
        for _ in 0..n {
            let (viewer_side, broker_viewer) = MemLink::pair();
            let id = broker.attach(broker_viewer);
            viewers.push((id, viewer_side));
        }
        (sim_side, broker, viewers)
    }

    #[test]
    fn broker_acks_simulation_hello() {
        let (mut sim, mut broker, mut viewers) = rig(1);
        let hello = Frame::with_value(
            MsgKind::Hello,
            0,
            Endianness::Little,
            VisitValue::Bytes(vec![]),
        );
        sim.send(&hello.encode()).unwrap();
        broker
            .pump(Duration::from_millis(100), Duration::from_millis(20))
            .unwrap();
        let ack = sim.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(Frame::decode(&ack).unwrap().kind, MsgKind::HelloAck);
        // hello is not fanned out to viewers
        let (_, v) = &mut viewers[0];
        assert_eq!(
            v.recv_timeout(Duration::from_millis(20)),
            Err(LinkError::Timeout)
        );
    }

    #[test]
    fn data_broadcast_to_all_viewers() {
        let (mut sim, mut broker, mut viewers) = rig(3);
        let frame = Frame::with_value(
            MsgKind::Data,
            TAG,
            Endianness::Little,
            VisitValue::F32(vec![1.0, 2.0]),
        );
        sim.send(&frame.encode()).unwrap();
        broker
            .pump(Duration::from_millis(100), Duration::from_millis(50))
            .unwrap();
        for (_, v) in viewers.iter_mut() {
            let got = v.recv_timeout(Duration::from_millis(100)).unwrap();
            assert_eq!(Frame::decode(&got).unwrap().value, frame.value);
        }
        assert_eq!(broker.stats().fanout_frames, 3);
    }

    #[test]
    fn requests_go_to_master_only() {
        let (mut sim, mut broker, mut viewers) = rig(2);
        let master_id = broker.master().unwrap();
        sim.send(&Frame::bare(MsgKind::Request, TAG).encode())
            .unwrap();
        // master thread answers; non-master must see nothing
        let (mid, mut mlink) =
            viewers.remove(viewers.iter().position(|(id, _)| *id == master_id).unwrap());
        assert_eq!(mid, master_id);
        let master = thread::spawn(move || {
            let req = mlink.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(Frame::decode(&req).unwrap().kind, MsgKind::Request);
            let reply = Frame::with_value(
                MsgKind::Reply,
                TAG,
                Endianness::Little,
                VisitValue::scalar_f64(0.42),
            );
            mlink.send(&reply.encode()).unwrap();
        });
        broker
            .pump(Duration::from_millis(500), Duration::from_millis(500))
            .unwrap();
        master.join().unwrap();
        // sim receives the master's steering value
        let reply = sim.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(
            Frame::decode(&reply).unwrap().value,
            Some(VisitValue::scalar_f64(0.42))
        );
        // the passive viewer saw no request
        let (_, passive) = &mut viewers[0];
        assert_eq!(
            passive.recv_timeout(Duration::from_millis(20)),
            Err(LinkError::Timeout)
        );
    }

    #[test]
    fn dead_master_cannot_stall_the_simulation() {
        let (mut sim, mut broker, viewers) = rig(1);
        drop(viewers); // master vanished
        sim.send(&Frame::bare(MsgKind::Request, TAG).encode())
            .unwrap();
        broker
            .pump(Duration::from_millis(100), Duration::from_millis(30))
            .unwrap();
        let reply = sim.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(Frame::decode(&reply).unwrap().kind, MsgKind::NoData);
    }

    #[test]
    fn master_passes_on_detach() {
        let (_sim, mut broker, viewers) = rig(3);
        let first = viewers[0].0;
        let second = viewers[1].0;
        assert_eq!(broker.master(), Some(first));
        broker.detach(first);
        assert_eq!(broker.master(), Some(second));
    }

    #[test]
    fn pass_master_moves_role() {
        let (_sim, mut broker, viewers) = rig(2);
        let second = viewers[1].0;
        assert!(broker.pass_master(second));
        assert_eq!(broker.master(), Some(second));
        assert!(!broker.pass_master(ViewerId(99)));
    }

    #[test]
    fn bye_ends_session_and_is_broadcast() {
        let (mut sim, mut broker, mut viewers) = rig(2);
        sim.send(&Frame::bare(MsgKind::Bye, 0).encode()).unwrap();
        let live = broker
            .pump(Duration::from_millis(100), Duration::from_millis(20))
            .unwrap();
        assert!(!live);
        for (_, v) in viewers.iter_mut() {
            let got = v.recv_timeout(Duration::from_millis(100)).unwrap();
            assert_eq!(Frame::decode(&got).unwrap().kind, MsgKind::Bye);
        }
    }

    #[test]
    fn fanout_bytes_scale_with_viewer_count() {
        let (mut sim, mut broker, _viewers) = rig(4);
        let frame = Frame::with_value(
            MsgKind::Data,
            TAG,
            Endianness::Little,
            VisitValue::Bytes(vec![0u8; 1000]),
        );
        sim.send(&frame.encode()).unwrap();
        broker
            .pump(Duration::from_millis(100), Duration::from_millis(20))
            .unwrap();
        let st = broker.stats();
        assert_eq!(st.bytes_out, 4 * st.bytes_in);
    }

    #[test]
    fn dead_viewer_detached_on_broadcast() {
        let (mut sim, mut broker, mut viewers) = rig(3);
        // kill one passive viewer
        let victim = viewers.remove(2);
        drop(victim);
        sim.send(
            &Frame::with_value(
                MsgKind::Data,
                TAG,
                Endianness::Little,
                VisitValue::scalar_i32(1),
            )
            .encode(),
        )
        .unwrap();
        broker
            .pump(Duration::from_millis(100), Duration::from_millis(20))
            .unwrap();
        // MemLink send into a dropped receiver fails → viewer detached
        assert_eq!(broker.viewer_count(), 2);
    }
}
