//! Frame layout of the VISIT wire protocol.
//!
//! "The client either sends data along with a header describing its content
//! or requests data from the server by sending a header that describes what
//! is requested" (§3.2). A [`Frame`] is one such header+payload unit:
//!
//! ```text
//! offset  size  field
//! 0       1     message kind (Hello/Data/Request/Reply/…)
//! 1       1     payload byte order (Endianness)
//! 2       1     payload dtype (DType; 0 = no payload)
//! 3       1     reserved
//! 4       4     tag (u32, little-endian — header is always LE)
//! 8       4     element count (u32 LE)
//! 12      n     payload bytes, in the order declared at offset 1
//! ```
//!
//! The *header* is fixed little-endian so any server can parse it; the
//! *payload* stays in client-native order and is converted server-side —
//! the asymmetry that keeps the simulation cheap.

use crate::value::{DType, Endianness, VisitValue};
use bytes::{Buf, BufMut, BytesMut};

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Protocol message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Client → server: connection open (payload = password bytes).
    Hello = 1,
    /// Server → client: connection accepted.
    HelloAck = 2,
    /// Server → client: connection refused (bad password).
    HelloReject = 3,
    /// Client → server: here is data for tag T.
    Data = 4,
    /// Client → server: do you have new data for tag T?
    Request = 5,
    /// Server → client: reply carrying data for tag T.
    Reply = 6,
    /// Server → client: nothing pending for tag T.
    NoData = 7,
    /// Either direction: orderly shutdown.
    Bye = 8,
}

impl MsgKind {
    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Option<MsgKind> {
        Some(match b {
            1 => MsgKind::Hello,
            2 => MsgKind::HelloAck,
            3 => MsgKind::HelloReject,
            4 => MsgKind::Data,
            5 => MsgKind::Request,
            6 => MsgKind::Reply,
            7 => MsgKind::NoData,
            8 => MsgKind::Bye,
            _ => return None,
        })
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Message kind.
    pub kind: MsgKind,
    /// MPI-like tag distinguishing data streams.
    pub tag: u32,
    /// Payload byte order (meaningful only when `value` is `Some`).
    pub order: Endianness,
    /// Optional typed payload.
    pub value: Option<VisitValue>,
}

impl Frame {
    /// A frame with no payload.
    pub fn bare(kind: MsgKind, tag: u32) -> Frame {
        Frame {
            kind,
            tag,
            order: Endianness::Little,
            value: None,
        }
    }

    /// A data-carrying frame in the given byte order.
    pub fn with_value(kind: MsgKind, tag: u32, order: Endianness, value: VisitValue) -> Frame {
        Frame {
            kind,
            tag,
            order,
            value: Some(value),
        }
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(HEADER_LEN + self.value.as_ref().map_or(0, |v| v.byte_len()));
        buf.put_u8(self.kind as u8);
        buf.put_u8(self.order.to_byte());
        match &self.value {
            Some(v) => {
                buf.put_u8(v.dtype() as u8);
                buf.put_u8(0);
                buf.put_u32_le(self.tag);
                buf.put_u32_le(v.count() as u32);
                v.encode(self.order, &mut buf);
            }
            None => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u32_le(self.tag);
                buf.put_u32_le(0);
            }
        }
        buf.to_vec()
    }

    /// Parse from bytes (performing the server-side byte-order conversion
    /// for the payload). Returns `None` on any malformation.
    pub fn decode(mut data: &[u8]) -> Option<Frame> {
        if data.len() < HEADER_LEN {
            return None;
        }
        let kind = MsgKind::from_byte(data.get_u8())?;
        let order = Endianness::from_byte(data.get_u8())?;
        let dtype_byte = data.get_u8();
        let _reserved = data.get_u8();
        let tag = data.get_u32_le();
        let count = data.get_u32_le() as usize;
        let value = if dtype_byte == 0 {
            if !data.is_empty() || count != 0 {
                return None;
            }
            None
        } else {
            let dtype = DType::from_byte(dtype_byte)?;
            Some(VisitValue::decode(dtype, count, order, data)?)
        };
        Some(Frame {
            kind,
            tag,
            order,
            value,
        })
    }

    /// Total encoded size.
    pub fn wire_size(&self) -> usize {
        HEADER_LEN + self.value.as_ref().map_or(0, |v| v.byte_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_frame_roundtrip() {
        let f = Frame::bare(MsgKind::Request, 77);
        let d = f.encode();
        assert_eq!(d.len(), HEADER_LEN);
        assert_eq!(Frame::decode(&d).unwrap(), f);
    }

    #[test]
    fn data_frame_roundtrip_little_endian() {
        let f = Frame::with_value(
            MsgKind::Data,
            3,
            Endianness::Little,
            VisitValue::F64(vec![1.5, -2.25]),
        );
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn data_frame_roundtrip_big_endian() {
        // a big-endian client (the paper's Cray/SGI case) encodes BE; the
        // decode (server side) converts transparently.
        let f = Frame::with_value(
            MsgKind::Data,
            9,
            Endianness::Big,
            VisitValue::I32(vec![0x01020304, -7]),
        );
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded.value, f.value);
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = Frame::with_value(
            MsgKind::Data,
            1,
            Endianness::Little,
            VisitValue::I32(vec![1, 2, 3]),
        );
        let d = f.encode();
        for cut in 0..d.len() {
            assert!(Frame::decode(&d[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_kind_rejected() {
        let mut d = Frame::bare(MsgKind::Bye, 0).encode();
        d[0] = 200;
        assert!(Frame::decode(&d).is_none());
    }

    #[test]
    fn bare_frame_with_trailing_bytes_rejected() {
        let mut d = Frame::bare(MsgKind::Bye, 0).encode();
        d.push(1);
        assert!(Frame::decode(&d).is_none());
    }

    #[test]
    fn wire_size_matches_encoding() {
        let f = Frame::with_value(
            MsgKind::Reply,
            5,
            Endianness::Little,
            VisitValue::Str("plasma".into()),
        );
        assert_eq!(f.encode().len(), f.wire_size());
    }
}
