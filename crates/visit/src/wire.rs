//! Frame layout of the VISIT wire protocol.
//!
//! "The client either sends data along with a header describing its content
//! or requests data from the server by sending a header that describes what
//! is requested" (§3.2). A [`Frame`] is one such header+payload unit:
//!
//! ```text
//! offset  size  field
//! 0       1     message kind (Hello/Data/Request/Reply/…)
//! 1       1     payload byte order (Endianness)
//! 2       1     payload dtype (DType; 0 = no payload)
//! 3       1     reserved
//! 4       4     tag (u32, little-endian — header is always LE)
//! 8       4     element count (u32 LE)
//! 12      n     payload bytes, in the order declared at offset 1
//! ```
//!
//! The *header* is fixed little-endian so any server can parse it; the
//! *payload* stays in client-native order and is converted server-side —
//! the asymmetry that keeps the simulation cheap.

use crate::value::{DType, Endianness, VisitValue};
use bytes::{Buf, BufMut, BytesMut};

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;

/// Protocol message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Client → server: connection open (payload = password bytes).
    Hello = 1,
    /// Server → client: connection accepted.
    HelloAck = 2,
    /// Server → client: connection refused (bad password).
    HelloReject = 3,
    /// Client → server: here is data for tag T.
    Data = 4,
    /// Client → server: do you have new data for tag T?
    Request = 5,
    /// Server → client: reply carrying data for tag T.
    Reply = 6,
    /// Server → client: nothing pending for tag T.
    NoData = 7,
    /// Either direction: orderly shutdown.
    Bye = 8,
}

impl MsgKind {
    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Option<MsgKind> {
        Some(match b {
            1 => MsgKind::Hello,
            2 => MsgKind::HelloAck,
            3 => MsgKind::HelloReject,
            4 => MsgKind::Data,
            5 => MsgKind::Request,
            6 => MsgKind::Reply,
            7 => MsgKind::NoData,
            8 => MsgKind::Bye,
            _ => return None,
        })
    }
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Message kind.
    pub kind: MsgKind,
    /// MPI-like tag distinguishing data streams.
    pub tag: u32,
    /// Payload byte order (meaningful only when `value` is `Some`).
    pub order: Endianness,
    /// Optional typed payload.
    pub value: Option<VisitValue>,
}

impl Frame {
    /// A frame with no payload.
    pub fn bare(kind: MsgKind, tag: u32) -> Frame {
        Frame {
            kind,
            tag,
            order: Endianness::Little,
            value: None,
        }
    }

    /// A data-carrying frame in the given byte order.
    pub fn with_value(kind: MsgKind, tag: u32, order: Endianness, value: VisitValue) -> Frame {
        Frame {
            kind,
            tag,
            order,
            value: Some(value),
        }
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(HEADER_LEN + self.value.as_ref().map_or(0, |v| v.byte_len()));
        buf.put_u8(self.kind as u8);
        buf.put_u8(self.order.to_byte());
        match &self.value {
            Some(v) => {
                buf.put_u8(v.dtype() as u8);
                buf.put_u8(0);
                buf.put_u32_le(self.tag);
                buf.put_u32_le(v.count() as u32);
                v.encode(self.order, &mut buf);
            }
            None => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u32_le(self.tag);
                buf.put_u32_le(0);
            }
        }
        buf.to_vec()
    }

    /// Parse from bytes (performing the server-side byte-order conversion
    /// for the payload). Returns `None` on any malformation.
    pub fn decode(mut data: &[u8]) -> Option<Frame> {
        if data.len() < HEADER_LEN {
            return None;
        }
        let kind = MsgKind::from_byte(data.get_u8())?;
        let order = Endianness::from_byte(data.get_u8())?;
        let dtype_byte = data.get_u8();
        let _reserved = data.get_u8();
        let tag = data.get_u32_le();
        let count = data.get_u32_le() as usize;
        let value = if dtype_byte == 0 {
            if !data.is_empty() || count != 0 {
                return None;
            }
            None
        } else {
            let dtype = DType::from_byte(dtype_byte)?;
            Some(VisitValue::decode(dtype, count, order, data)?)
        };
        Some(Frame {
            kind,
            tag,
            order,
            value,
        })
    }

    /// Total encoded size.
    pub fn wire_size(&self) -> usize {
        HEADER_LEN + self.value.as_ref().map_or(0, |v| v.byte_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_frame_roundtrip() {
        let f = Frame::bare(MsgKind::Request, 77);
        let d = f.encode();
        assert_eq!(d.len(), HEADER_LEN);
        assert_eq!(Frame::decode(&d).unwrap(), f);
    }

    #[test]
    fn data_frame_roundtrip_little_endian() {
        let f = Frame::with_value(
            MsgKind::Data,
            3,
            Endianness::Little,
            VisitValue::F64(vec![1.5, -2.25]),
        );
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn data_frame_roundtrip_big_endian() {
        // a big-endian client (the paper's Cray/SGI case) encodes BE; the
        // decode (server side) converts transparently.
        let f = Frame::with_value(
            MsgKind::Data,
            9,
            Endianness::Big,
            VisitValue::I32(vec![0x01020304, -7]),
        );
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded.value, f.value);
    }

    #[test]
    fn truncated_frames_rejected() {
        let f = Frame::with_value(
            MsgKind::Data,
            1,
            Endianness::Little,
            VisitValue::I32(vec![1, 2, 3]),
        );
        let d = f.encode();
        for cut in 0..d.len() {
            assert!(Frame::decode(&d[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn garbage_kind_rejected() {
        let mut d = Frame::bare(MsgKind::Bye, 0).encode();
        d[0] = 200;
        assert!(Frame::decode(&d).is_none());
    }

    #[test]
    fn bare_frame_with_trailing_bytes_rejected() {
        let mut d = Frame::bare(MsgKind::Bye, 0).encode();
        d.push(1);
        assert!(Frame::decode(&d).is_none());
    }

    #[test]
    fn wire_size_matches_encoding() {
        let f = Frame::with_value(
            MsgKind::Reply,
            5,
            Endianness::Little,
            VisitValue::Str("plasma".into()),
        );
        assert_eq!(f.encode().len(), f.wire_size());
    }
}

#[cfg(test)]
mod props {
    //! Property tests over the frame layer: arbitrary payloads round-trip,
    //! and malformed frames (truncated, oversized, garbage) are rejected
    //! without panicking — the server parses hostile bytes.

    use super::*;
    use proptest::prelude::*;

    /// Build a `VisitValue` of an arbitrary dtype from raw bytes (float
    /// variants go through `from_bits`, so NaN payloads are exercised).
    fn value_from(sel: u8, data: &[u8]) -> VisitValue {
        match sel % 6 {
            0 => VisitValue::I32(
                data.chunks_exact(4)
                    .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            1 => VisitValue::I64(
                data.chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ),
            2 => VisitValue::F32(
                data.chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            ),
            3 => VisitValue::F64(
                data.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            ),
            4 => VisitValue::Str(String::from_utf8_lossy(data).into_owned()),
            _ => VisitValue::Bytes(data.to_vec()),
        }
    }

    fn kind_from(sel: u8) -> MsgKind {
        MsgKind::from_byte(1 + sel % 8).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Encoding is a fixed point: decode(encode(f)).encode() == encode(f)
        /// for every kind/tag/order/dtype, including NaN float payloads
        /// (which defeat PartialEq but must survive byte-for-byte).
        #[test]
        fn frame_reencodes_identically(
            ksel in any::<u8>(),
            vsel in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..128),
            tag in any::<u32>(),
            big in any::<bool>(),
        ) {
            let order = if big { Endianness::Big } else { Endianness::Little };
            let f = Frame::with_value(kind_from(ksel), tag, order, value_from(vsel, &data));
            let bytes = f.encode();
            let decoded = Frame::decode(&bytes).expect("own encoding must parse");
            prop_assert_eq!(decoded.encode(), bytes);
        }

        /// Every strict prefix of a valid frame is rejected (no panic, no
        /// partial parse).
        #[test]
        fn truncated_frames_rejected(
            vsel in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 1..96),
            cut_sel in any::<u16>(),
        ) {
            let f = Frame::with_value(
                MsgKind::Data,
                1,
                Endianness::Little,
                value_from(vsel, &data),
            );
            let bytes = f.encode();
            let cut = cut_sel as usize % bytes.len();
            prop_assert!(Frame::decode(&bytes[..cut]).is_none(), "cut={}", cut);
        }

        /// Trailing garbage after a well-formed frame is rejected — the
        /// declared element count is authoritative.
        #[test]
        fn oversized_frames_rejected(
            vsel in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..64),
            extra in proptest::collection::vec(any::<u8>(), 1..16),
        ) {
            let f = Frame::with_value(
                MsgKind::Reply,
                9,
                Endianness::Little,
                value_from(vsel, &data),
            );
            let mut bytes = f.encode();
            bytes.extend_from_slice(&extra);
            prop_assert!(Frame::decode(&bytes).is_none());
        }

        /// Arbitrary byte soup never panics the decoder.
        #[test]
        fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Frame::decode(&data);
        }

        /// Single-byte corruption of a valid frame either still parses or
        /// is rejected — never a panic, and never a changed payload length.
        #[test]
        fn bit_flips_never_panic(
            vsel in any::<u8>(),
            data in proptest::collection::vec(any::<u8>(), 0..64),
            pos_sel in any::<u16>(),
            flip in 1u8..=255,
        ) {
            let f = Frame::with_value(
                MsgKind::Data,
                3,
                Endianness::Little,
                value_from(vsel, &data),
            );
            let mut bytes = f.encode();
            let pos = pos_sel as usize % bytes.len();
            bytes[pos] ^= flip;
            if let Some(parsed) = Frame::decode(&bytes) {
                prop_assert_eq!(parsed.wire_size(), bytes.len());
            }
        }
    }
}
