//! Frame transports.
//!
//! VISIT's timeout guarantee lives here: every receive takes an explicit
//! deadline and *will* return by then. Three implementations:
//!
//! * [`TcpLink`] — real TCP with 4-byte length-prefix framing and socket
//!   read timeouts; used by the multi-process examples and the TCP steering
//!   server.
//! * [`MemLink`] — crossbeam channels; used by threaded in-process tests.
//! * [`SimLink`] — a [`netsim`] virtual-time channel; timeouts are charged
//!   in *virtual* time, which makes the latency experiments deterministic
//!   and instant.

// detlint::allow(R3, "MemLink transport: per-link FIFO channels preserve message order; no compute parallelism")
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use netsim::channel::{RecvError as SimRecvError, SimEndpoint};
use netsim::{Link, SimChannel, SimTime, VClock};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Transport failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The deadline elapsed before a frame arrived.
    Timeout,
    /// The peer is gone.
    Closed,
    /// Underlying I/O error (TCP only).
    Io(String),
    /// A frame exceeded the sanity limit.
    TooLarge,
}

/// Upper bound on a single frame (64 MiB — a 256³ f32 field is 64 MiB, the
/// largest sample the paper-scale workloads emit).
pub const MAX_FRAME: usize = 64 << 20;

/// A reliable, ordered frame pipe with deadline-bounded receives.
pub trait FrameLink: Send {
    /// Send one frame. Must not block indefinitely.
    fn send(&mut self, frame: &[u8]) -> Result<(), LinkError>;
    /// Receive one frame, waiting at most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, LinkError>;
}

impl<T: FrameLink + ?Sized> FrameLink for Box<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), LinkError> {
        (**self).send(frame)
    }
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        (**self).recv_timeout(timeout)
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// TCP transport with length-prefixed frames.
pub struct TcpLink {
    stream: TcpStream,
}

impl TcpLink {
    /// Wrap a connected stream. Disables Nagle — steering messages are
    /// small and latency-critical.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(TcpLink { stream })
    }

    /// Connect to an address with a connect timeout.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, LinkError> {
        let sockaddr = addr
            .parse()
            .map_err(|e| LinkError::Io(format!("bad addr {addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| LinkError::Io(e.to_string()))?;
        TcpLink::new(stream).map_err(|e| LinkError::Io(e.to_string()))
    }
}

impl FrameLink for TcpLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), LinkError> {
        if frame.len() > MAX_FRAME {
            return Err(LinkError::TooLarge);
        }
        let len = (frame.len() as u32).to_le_bytes();
        self.stream
            .write_all(&len)
            .and_then(|_| self.stream.write_all(frame))
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => {
                    LinkError::Closed
                }
                _ => LinkError::Io(e.to_string()),
            })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        // Socket read timeout of 0 means "infinite" in the std API, so clamp.
        let t = if timeout.is_zero() {
            Duration::from_millis(1)
        } else {
            timeout
        };
        self.stream
            .set_read_timeout(Some(t))
            .map_err(|e| LinkError::Io(e.to_string()))?;
        let map_err = |e: std::io::Error| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => LinkError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe => LinkError::Closed,
            _ => LinkError::Io(e.to_string()),
        };
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf).map_err(map_err)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            return Err(LinkError::TooLarge);
        }
        let mut frame = vec![0u8; len];
        self.stream.read_exact(&mut frame).map_err(map_err)?;
        Ok(frame)
    }
}

// ---------------------------------------------------------------------------
// In-memory (crossbeam)
// ---------------------------------------------------------------------------

/// In-process transport over crossbeam channels.
pub struct MemLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl MemLink {
    /// A connected pair of links.
    pub fn pair() -> (MemLink, MemLink) {
        let (tx_a, rx_b) = bounded(1024);
        let (tx_b, rx_a) = bounded(1024);
        (
            MemLink { tx: tx_a, rx: rx_a },
            MemLink { tx: tx_b, rx: rx_b },
        )
    }
}

impl FrameLink for MemLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), LinkError> {
        if frame.len() > MAX_FRAME {
            return Err(LinkError::TooLarge);
        }
        self.tx.send(frame.to_vec()).map_err(|_| LinkError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(RecvTimeoutError::Timeout) => Err(LinkError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(LinkError::Closed),
        }
    }
}

// ---------------------------------------------------------------------------
// Virtual-time (netsim)
// ---------------------------------------------------------------------------

/// Virtual-time transport: wall-clock `Duration` timeouts are interpreted
/// as *virtual-time budgets* on this link's [`VClock`]. `elapsed()` exposes
/// the accumulated virtual time — the quantity the latency experiments
/// report.
pub struct SimLink {
    ep: SimEndpoint,
    clock: VClock,
}

impl SimLink {
    /// A connected pair over a symmetric [`Link`].
    pub fn pair(link: Link) -> (SimLink, SimLink) {
        let (a, b) = SimChannel::sym(link);
        (
            SimLink {
                ep: a,
                clock: VClock::new(),
            },
            SimLink {
                ep: b,
                clock: VClock::new(),
            },
        )
    }

    /// A connected pair with asymmetric links (`ab` shapes this→peer).
    pub fn pair_asym(ab: Link, ba: Link) -> (SimLink, SimLink) {
        let (a, b) = SimChannel::pair(ab, ba);
        (
            SimLink {
                ep: a,
                clock: VClock::new(),
            },
            SimLink {
                ep: b,
                clock: VClock::new(),
            },
        )
    }

    /// Local virtual time elapsed.
    pub fn elapsed(&self) -> SimTime {
        self.clock.now()
    }

    /// Charge local (compute) virtual time — e.g. a simulation step.
    pub fn advance(&mut self, d: SimTime) {
        self.clock.advance(d);
    }

    fn dur_to_sim(d: Duration) -> SimTime {
        SimTime::from_nanos(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

impl FrameLink for SimLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), LinkError> {
        if frame.len() > MAX_FRAME {
            return Err(LinkError::TooLarge);
        }
        if self.ep.is_closed() {
            return Err(LinkError::Closed);
        }
        self.ep.send(&mut self.clock, frame);
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        let deadline = self.clock.now() + Self::dur_to_sim(timeout);
        match self.ep.recv_deadline(&mut self.clock, deadline) {
            Ok(f) => Ok(f),
            Err(SimRecvError::Timeout) => Err(LinkError::Timeout),
            Err(SimRecvError::Closed) => Err(LinkError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn memlink_roundtrip() {
        let (mut a, mut b) = MemLink::pair();
        a.send(b"hello").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap(), b"hello");
    }

    #[test]
    fn memlink_timeout() {
        let (_a, mut b) = MemLink::pair();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(5)),
            Err(LinkError::Timeout)
        );
    }

    #[test]
    fn memlink_closed_detected() {
        let (a, mut b) = MemLink::pair();
        drop(a);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(5)),
            Err(LinkError::Closed)
        );
    }

    #[test]
    fn memlink_rejects_oversize() {
        let (mut a, _b) = MemLink::pair();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert_eq!(a.send(&huge), Err(LinkError::TooLarge));
    }

    #[test]
    fn tcplink_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut link = TcpLink::new(s).unwrap();
            let f = link.recv_timeout(Duration::from_secs(2)).unwrap();
            link.send(&f).unwrap(); // echo
        });
        let mut c = TcpLink::connect(&addr.to_string(), Duration::from_secs(2)).unwrap();
        c.send(b"steer:miscibility=0.07").unwrap();
        let echo = c.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(echo, b"steer:miscibility=0.07");
        server.join().unwrap();
    }

    #[test]
    fn tcplink_timeout_honoured() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _keep = thread::spawn(move || {
            let (_s, _) = listener.accept().unwrap();
            thread::sleep(Duration::from_millis(300));
        });
        let mut c = TcpLink::connect(&addr.to_string(), Duration::from_secs(2)).unwrap();
        let start = std::time::Instant::now();
        let r = c.recv_timeout(Duration::from_millis(50));
        assert_eq!(r, Err(LinkError::Timeout));
        assert!(start.elapsed() < Duration::from_millis(250));
    }

    #[test]
    fn simlink_charges_virtual_latency() {
        let link = Link::builder()
            .latency_ms(20)
            .bandwidth_bps(u64::MAX)
            .build();
        let (mut a, mut b) = SimLink::pair(link);
        a.send(b"x").unwrap();
        let f = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(f, b"x");
        assert_eq!(b.elapsed(), SimTime::from_millis(20));
        // no wall-clock time was spent waiting
    }

    #[test]
    fn simlink_timeout_in_virtual_time() {
        let link = Link::builder().latency_ms(100).build();
        let (mut a, mut b) = SimLink::pair(link);
        a.send(b"slow").unwrap();
        let r = b.recv_timeout(Duration::from_millis(50));
        assert_eq!(r, Err(LinkError::Timeout));
        assert_eq!(b.elapsed(), SimTime::from_millis(50));
        // retry with a larger budget succeeds
        let f = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(f, b"slow");
    }

    #[test]
    fn simlink_advance_models_compute() {
        let (mut a, _b) = SimLink::pair(Link::loopback());
        a.advance(SimTime::from_millis(7));
        assert_eq!(a.elapsed(), SimTime::from_millis(7));
    }
}
