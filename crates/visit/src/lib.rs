//! # visit — the VISIT steering toolkit, reimplemented
//!
//! VISIT (VISualization Interface Toolkit, §3.2 of the paper) is a
//! lightweight library for online visualization and computational steering
//! developed at Forschungszentrum Jülich for the Gigabit Testbed West. Its
//! two defining design decisions, both reproduced here:
//!
//! 1. **The simulation is the client.** "All operations (like opening a
//!    connection, sending data to be visualized or receiving new
//!    parameters) have to be initiated by the simulation and are guaranteed
//!    to complete (or fail) after a user-specified timeout" — so a slow or
//!    dead visualization can never stall the simulation. Most steering
//!    systems put the server in the application; VISIT inverts that, and so
//!    do [`client::SteeringClient`] (simulation side) and
//!    [`server::VisServer`] (visualization side).
//!
//! 2. **MPI-like tagged typed messages with server-side conversion.**
//!    Payloads travel in the *client's native* byte order and precision;
//!    the server performs "any data conversions (byte order, precision,
//!    integer-float) … transparently, again so that the simulation is
//!    disturbed as little as possible" ([`value`], [`wire`]).
//!
//! The collaborative multiplexer of §3.3 — broadcast send-requests to all
//! participating visualizations, route receive-requests only to a
//! transferable *master* — is [`vbroker::VBroker`], a faithful port of the
//! `vbroker` application "that is part of the standard VISIT distribution".
//!
//! Transport is abstracted over [`link::FrameLink`] with three
//! implementations: real TCP ([`link::TcpLink`]), in-process channels
//! ([`link::MemLink`]), and deterministic virtual-time ([`link::SimLink`],
//! over [`netsim`]) for the latency experiments.
//!
//! Security matches the paper: "a connection password that is transferred
//! in clear-text" ([`auth::Password::ClearText`]) plus a keyed-digest mode
//! ([`auth::Password::Keyed`]) representing what the UNICORE integration
//! layers on top.

pub mod auth;
pub mod client;
pub mod link;
pub mod server;
pub mod value;
pub mod vbroker;
pub mod wire;

pub use auth::Password;
pub use client::SteeringClient;
pub use link::{FrameLink, LinkError, MemLink, SimLink, TcpLink};
pub use server::{ServeOutcome, VisServer};
pub use value::{Endianness, VisitValue};
pub use vbroker::VBroker;
pub use wire::{Frame, MsgKind};
