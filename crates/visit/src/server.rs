//! Visualization-side server.
//!
//! "This led to the design decision to implement VISIT as a simple
//! client-server application where the visualization acts as a server that
//! dispatches the simulation's requests — unlike many other steering
//! toolkits that work the opposite way" (§3.2). [`VisServer`] holds the
//! latest data per tag (for the visualization to render) and a queue of
//! steering parameters per tag (for the simulation to pick up on its next
//! request).

use crate::auth::Password;
use crate::link::{FrameLink, LinkError};
use crate::value::{Endianness, VisitValue};
use crate::wire::{Frame, MsgKind};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// What one dispatch step did.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// A data sample for `tag` arrived (and is now in `latest`).
    Data(u32),
    /// The simulation asked for `tag`; `true` if a queued parameter was
    /// delivered, `false` if NoData was sent.
    Answered(u32, bool),
    /// The client said goodbye.
    Bye,
    /// Nothing arrived within the poll timeout.
    Idle,
}

/// Per-server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Data frames received.
    pub data_frames: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Requests answered with data.
    pub params_delivered: u64,
    /// Requests answered NoData.
    pub empty_replies: u64,
}

/// The visualization's end of a VISIT connection.
pub struct VisServer<L: FrameLink> {
    link: L,
    /// Most recent sample per tag.
    latest: HashMap<u32, VisitValue>,
    /// Steering parameters waiting for the simulation, per tag.
    pending: HashMap<u32, VecDeque<VisitValue>>,
    stats: ServerStats,
}

impl<L: FrameLink> VisServer<L> {
    /// Accept one client: await Hello, verify the token, reply Ack/Reject.
    pub fn accept(
        mut link: L,
        password: &Password,
        challenge: u64,
        timeout: Duration,
    ) -> Result<Self, LinkError> {
        let raw = link.recv_timeout(timeout)?;
        let frame = Frame::decode(&raw).ok_or(LinkError::Io("bad hello".into()))?;
        let ok = frame.kind == MsgKind::Hello
            && matches!(&frame.value, Some(VisitValue::Bytes(token)) if password.verify(token, challenge));
        if !ok {
            let _ = link.send(&Frame::bare(MsgKind::HelloReject, 0).encode());
            return Err(LinkError::Io("auth rejected".into()));
        }
        link.send(&Frame::bare(MsgKind::HelloAck, 0).encode())?;
        Ok(VisServer {
            link,
            latest: HashMap::new(),
            pending: HashMap::new(),
            stats: ServerStats::default(),
        })
    }

    /// Dispatch at most one incoming frame, waiting up to `poll`.
    pub fn serve_once(&mut self, poll: Duration) -> Result<ServeOutcome, LinkError> {
        let raw = match self.link.recv_timeout(poll) {
            Ok(r) => r,
            Err(LinkError::Timeout) => return Ok(ServeOutcome::Idle),
            Err(e) => return Err(e),
        };
        let frame = Frame::decode(&raw).ok_or(LinkError::Io("bad frame".into()))?;
        match frame.kind {
            MsgKind::Data => {
                let tag = frame.tag;
                if let Some(v) = frame.value {
                    self.stats.data_frames += 1;
                    self.stats.bytes_received += v.byte_len() as u64;
                    self.latest.insert(tag, v);
                }
                Ok(ServeOutcome::Data(tag))
            }
            MsgKind::Request => {
                let tag = frame.tag;
                let queued = self.pending.get_mut(&tag).and_then(|q| q.pop_front());
                let delivered = queued.is_some();
                let reply = match queued {
                    Some(v) => {
                        self.stats.params_delivered += 1;
                        Frame::with_value(MsgKind::Reply, tag, Endianness::native(), v)
                    }
                    None => {
                        self.stats.empty_replies += 1;
                        Frame::bare(MsgKind::NoData, tag)
                    }
                };
                self.link.send(&reply.encode())?;
                Ok(ServeOutcome::Answered(tag, delivered))
            }
            MsgKind::Bye => Ok(ServeOutcome::Bye),
            _ => Ok(ServeOutcome::Idle),
        }
    }

    /// Dispatch frames until `Bye`, link failure, or `max_idle` consecutive
    /// idle polls. Returns the number of frames handled.
    pub fn serve_until_idle(&mut self, poll: Duration, max_idle: usize) -> usize {
        let mut handled = 0;
        let mut idle = 0;
        loop {
            match self.serve_once(poll) {
                Ok(ServeOutcome::Idle) => {
                    idle += 1;
                    if idle >= max_idle {
                        return handled;
                    }
                }
                Ok(ServeOutcome::Bye) | Err(_) => return handled,
                Ok(_) => {
                    handled += 1;
                    idle = 0;
                }
            }
        }
    }

    /// The latest sample the simulation shipped for `tag`.
    pub fn latest(&self, tag: u32) -> Option<&VisitValue> {
        self.latest.get(&tag)
    }

    /// Take (consume) the latest sample for `tag`.
    pub fn take_latest(&mut self, tag: u32) -> Option<VisitValue> {
        self.latest.remove(&tag)
    }

    /// Queue a steering parameter for the simulation's next request on
    /// `tag` — this is "the user alters the miscibility" (§2.2) / "beam or
    /// laser parameters can be altered interactively" (§3.4).
    pub fn queue_param(&mut self, tag: u32, value: VisitValue) {
        self.pending.entry(tag).or_default().push_back(value);
    }

    /// Number of queued parameters for `tag`.
    pub fn pending_count(&self, tag: u32) -> usize {
        self.pending.get(&tag).map_or(0, |q| q.len())
    }

    /// Counters so far.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Access the underlying link.
    pub fn link_mut(&mut self) -> &mut L {
        &mut self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SteeringClient;
    use crate::link::MemLink;
    use std::thread;

    const TAG_FIELD: u32 = 1;
    const TAG_MISC: u32 = 2;

    fn pair() -> (SteeringClient<MemLink>, VisServer<MemLink>) {
        let (cl, sl) = MemLink::pair();
        let pw = Password::Open;
        let server =
            thread::spawn(move || VisServer::accept(sl, &pw, 0, Duration::from_secs(1)).unwrap());
        let client =
            SteeringClient::connect(cl, &Password::Open, 0, Duration::from_secs(1)).unwrap();
        (client, server.join().unwrap())
    }

    #[test]
    fn data_sample_reaches_server() {
        let (mut c, mut s) = pair();
        c.send(TAG_FIELD, VisitValue::F32(vec![0.5; 64])).unwrap();
        let out = s.serve_once(Duration::from_millis(100)).unwrap();
        assert_eq!(out, ServeOutcome::Data(TAG_FIELD));
        assert_eq!(s.latest(TAG_FIELD), Some(&VisitValue::F32(vec![0.5; 64])));
        assert_eq!(s.stats().data_frames, 1);
    }

    #[test]
    fn steering_roundtrip_delivers_queued_param() {
        let (mut c, mut s) = pair();
        s.queue_param(TAG_MISC, VisitValue::scalar_f64(0.08));
        let server = thread::spawn(move || {
            let mut s = s;
            let out = s.serve_once(Duration::from_secs(1)).unwrap();
            assert_eq!(out, ServeOutcome::Answered(TAG_MISC, true));
            s
        });
        let got = c.request(TAG_MISC).unwrap();
        assert_eq!(got, Some(VisitValue::scalar_f64(0.08)));
        let s = server.join().unwrap();
        assert_eq!(s.stats().params_delivered, 1);
        assert_eq!(s.pending_count(TAG_MISC), 0);
    }

    #[test]
    fn request_with_nothing_queued_gets_none() {
        let (mut c, s) = pair();
        let server = thread::spawn(move || {
            let mut s = s;
            let out = s.serve_once(Duration::from_secs(1)).unwrap();
            assert_eq!(out, ServeOutcome::Answered(TAG_MISC, false));
            s
        });
        assert_eq!(c.request(TAG_MISC).unwrap(), None);
        let s = server.join().unwrap();
        assert_eq!(s.stats().empty_replies, 1);
    }

    #[test]
    fn params_delivered_fifo() {
        let (mut c, mut s) = pair();
        s.queue_param(TAG_MISC, VisitValue::scalar_f64(0.1));
        s.queue_param(TAG_MISC, VisitValue::scalar_f64(0.2));
        let server = thread::spawn(move || {
            let mut s = s;
            for _ in 0..2 {
                s.serve_once(Duration::from_secs(1)).unwrap();
            }
        });
        assert_eq!(
            c.request(TAG_MISC).unwrap(),
            Some(VisitValue::scalar_f64(0.1))
        );
        assert_eq!(
            c.request(TAG_MISC).unwrap(),
            Some(VisitValue::scalar_f64(0.2))
        );
        server.join().unwrap();
    }

    #[test]
    fn serve_until_idle_processes_burst() {
        let (mut c, mut s) = pair();
        for i in 0..5 {
            c.send(i, VisitValue::scalar_i32(i as i32)).unwrap();
        }
        let handled = s.serve_until_idle(Duration::from_millis(20), 2);
        assert_eq!(handled, 5);
        for i in 0..5 {
            assert!(s.latest(i).is_some());
        }
    }

    #[test]
    fn bye_terminates_serving() {
        let (mut c, mut s) = pair();
        c.close();
        let out = s.serve_once(Duration::from_millis(100)).unwrap();
        assert_eq!(out, ServeOutcome::Bye);
    }

    #[test]
    fn take_latest_consumes() {
        let (mut c, mut s) = pair();
        c.send(TAG_FIELD, VisitValue::scalar_i32(1)).unwrap();
        s.serve_once(Duration::from_millis(100)).unwrap();
        assert!(s.take_latest(TAG_FIELD).is_some());
        assert!(s.take_latest(TAG_FIELD).is_none());
    }
}
