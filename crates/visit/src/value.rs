//! Typed VISIT values and the transparent conversions of §3.2.
//!
//! "VISIT uses an MPI-like data transport mechanism based on messages that
//! are distinguished via tags to transfer simple data types like strings,
//! integers, floats, user defined structures, and arrays of these." A
//! [`VisitValue`] is one such payload; scalars are length-1 arrays, and
//! user-defined structures travel as [`VisitValue::Bytes`] (the application
//! owns their layout, as in the C API).
//!
//! "Any data conversions (byte order, precision, integer-float) are
//! performed transparently by the server" — [`VisitValue::decode`] performs
//! byte-order conversion from the client's declared [`Endianness`], and the
//! `to_f64` / `to_f32_lossy` / `to_i64` methods perform the
//! precision/int-float conversions at the server's request.

use bytes::{Buf, BufMut, BytesMut};

/// Byte order declared by a client at connection time. The paper's
/// "classic supercomputers" (Cray T3E, SGI Onyx, IBM SP2) were big-endian;
/// the laptops steering them were little-endian — conversion was a daily
/// reality, not an edge case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endianness {
    Little,
    Big,
}

impl Endianness {
    /// The byte order of the machine this code runs on.
    pub fn native() -> Endianness {
        if cfg!(target_endian = "big") {
            Endianness::Big
        } else {
            Endianness::Little
        }
    }

    /// Encode as the wire flag byte.
    pub fn to_byte(self) -> u8 {
        match self {
            Endianness::Little => 0,
            Endianness::Big => 1,
        }
    }

    /// Decode from the wire flag byte.
    pub fn from_byte(b: u8) -> Option<Endianness> {
        match b {
            0 => Some(Endianness::Little),
            1 => Some(Endianness::Big),
            _ => None,
        }
    }
}

/// Data type codes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DType {
    I32 = 1,
    I64 = 2,
    F32 = 3,
    F64 = 4,
    Str = 5,
    Bytes = 6,
}

impl DType {
    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Option<DType> {
        Some(match b {
            1 => DType::I32,
            2 => DType::I64,
            3 => DType::F32,
            4 => DType::F64,
            5 => DType::Str,
            6 => DType::Bytes,
            _ => return None,
        })
    }
}

/// A typed VISIT payload.
#[derive(Debug, Clone, PartialEq)]
pub enum VisitValue {
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// Single-precision floats.
    F32(Vec<f32>),
    /// Double-precision floats.
    F64(Vec<f64>),
    /// A UTF-8 string.
    Str(String),
    /// Opaque bytes (user-defined structures).
    Bytes(Vec<u8>),
}

impl VisitValue {
    /// Scalar f64 convenience constructor.
    pub fn scalar_f64(v: f64) -> VisitValue {
        VisitValue::F64(vec![v])
    }

    /// Scalar i32 convenience constructor.
    pub fn scalar_i32(v: i32) -> VisitValue {
        VisitValue::I32(vec![v])
    }

    /// Wire dtype code.
    pub fn dtype(&self) -> DType {
        match self {
            VisitValue::I32(_) => DType::I32,
            VisitValue::I64(_) => DType::I64,
            VisitValue::F32(_) => DType::F32,
            VisitValue::F64(_) => DType::F64,
            VisitValue::Str(_) => DType::Str,
            VisitValue::Bytes(_) => DType::Bytes,
        }
    }

    /// Element count (bytes/strings count bytes).
    pub fn count(&self) -> usize {
        match self {
            VisitValue::I32(v) => v.len(),
            VisitValue::I64(v) => v.len(),
            VisitValue::F32(v) => v.len(),
            VisitValue::F64(v) => v.len(),
            VisitValue::Str(s) => s.len(),
            VisitValue::Bytes(b) => b.len(),
        }
    }

    /// Payload size on the wire in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            VisitValue::I32(v) => v.len() * 4,
            VisitValue::I64(v) => v.len() * 8,
            VisitValue::F32(v) => v.len() * 4,
            VisitValue::F64(v) => v.len() * 8,
            VisitValue::Str(s) => s.len(),
            VisitValue::Bytes(b) => b.len(),
        }
    }

    /// Encode the payload in the given byte order (the *client's native*
    /// order — the client never converts; see module docs).
    pub fn encode(&self, order: Endianness, out: &mut BytesMut) {
        macro_rules! put_all {
            ($vec:expr, $put_le:ident, $put_be:ident) => {
                for &v in $vec {
                    match order {
                        Endianness::Little => out.$put_le(v),
                        Endianness::Big => out.$put_be(v),
                    }
                }
            };
        }
        match self {
            VisitValue::I32(v) => put_all!(v, put_i32_le, put_i32),
            VisitValue::I64(v) => put_all!(v, put_i64_le, put_i64),
            VisitValue::F32(v) => put_all!(v, put_f32_le, put_f32),
            VisitValue::F64(v) => put_all!(v, put_f64_le, put_f64),
            VisitValue::Str(s) => out.put_slice(s.as_bytes()),
            VisitValue::Bytes(b) => out.put_slice(b),
        }
    }

    /// Decode a payload of `count` elements of `dtype`, converting from the
    /// client's byte order (the server-side conversion of §3.2). Returns
    /// `None` on malformed input.
    pub fn decode(
        dtype: DType,
        count: usize,
        order: Endianness,
        mut buf: &[u8],
    ) -> Option<VisitValue> {
        macro_rules! get_all {
            ($get_le:ident, $get_be:ident, $ty:ty, $size:expr, $variant:ident) => {{
                if buf.len() != count * $size {
                    return None;
                }
                let mut v: Vec<$ty> = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(match order {
                        Endianness::Little => buf.$get_le(),
                        Endianness::Big => buf.$get_be(),
                    });
                }
                Some(VisitValue::$variant(v))
            }};
        }
        match dtype {
            DType::I32 => get_all!(get_i32_le, get_i32, i32, 4, I32),
            DType::I64 => get_all!(get_i64_le, get_i64, i64, 8, I64),
            DType::F32 => get_all!(get_f32_le, get_f32, f32, 4, F32),
            DType::F64 => get_all!(get_f64_le, get_f64, f64, 8, F64),
            DType::Str => {
                if buf.len() != count {
                    return None;
                }
                String::from_utf8(buf.to_vec()).ok().map(VisitValue::Str)
            }
            DType::Bytes => {
                if buf.len() != count {
                    return None;
                }
                Some(VisitValue::Bytes(buf.to_vec()))
            }
        }
    }

    /// Widening conversion to f64 (precision + integer-float conversion).
    /// Integer values ≤ 2⁵³ convert exactly. Strings/bytes yield `None`.
    pub fn to_f64(&self) -> Option<Vec<f64>> {
        Some(match self {
            VisitValue::I32(v) => v.iter().map(|&x| x as f64).collect(),
            VisitValue::I64(v) => v.iter().map(|&x| x as f64).collect(),
            VisitValue::F32(v) => v.iter().map(|&x| x as f64).collect(),
            VisitValue::F64(v) => v.clone(),
            _ => return None,
        })
    }

    /// Narrowing conversion to f32 (lossy for doubles/large ints).
    pub fn to_f32_lossy(&self) -> Option<Vec<f32>> {
        Some(match self {
            VisitValue::I32(v) => v.iter().map(|&x| x as f32).collect(),
            VisitValue::I64(v) => v.iter().map(|&x| x as f32).collect(),
            VisitValue::F32(v) => v.clone(),
            VisitValue::F64(v) => v.iter().map(|&x| x as f32).collect(),
            _ => return None,
        })
    }

    /// Integer view; floats must be integral or `None` is returned.
    pub fn to_i64(&self) -> Option<Vec<i64>> {
        match self {
            VisitValue::I32(v) => Some(v.iter().map(|&x| x as i64).collect()),
            VisitValue::I64(v) => Some(v.clone()),
            VisitValue::F32(v) => v
                .iter()
                .map(|&x| {
                    if x.fract() == 0.0 {
                        Some(x as i64)
                    } else {
                        None
                    }
                })
                .collect(),
            VisitValue::F64(v) => v
                .iter()
                .map(|&x| {
                    if x.fract() == 0.0 {
                        Some(x as i64)
                    } else {
                        None
                    }
                })
                .collect(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &VisitValue, order: Endianness) -> VisitValue {
        let mut buf = BytesMut::new();
        v.encode(order, &mut buf);
        VisitValue::decode(v.dtype(), v.count(), order, &buf).unwrap()
    }

    #[test]
    fn roundtrip_all_types_both_orders() {
        let values = [
            VisitValue::I32(vec![1, -2, i32::MAX, i32::MIN]),
            VisitValue::I64(vec![42, -9e15 as i64]),
            VisitValue::F32(vec![1.5, -0.25, f32::MAX]),
            VisitValue::F64(vec![std::f64::consts::PI, -1e300]),
            VisitValue::Str("miscibility=0.08".to_string()),
            VisitValue::Bytes(vec![0, 255, 7, 8]),
        ];
        for v in &values {
            for order in [Endianness::Little, Endianness::Big] {
                assert_eq!(&roundtrip(v, order), v);
            }
        }
    }

    #[test]
    fn cross_endian_decode_differs_from_same_endian_bytes() {
        // encoding BE and decoding LE must NOT give the same numbers back
        let v = VisitValue::I32(vec![0x0102_0304]);
        let mut buf = BytesMut::new();
        v.encode(Endianness::Big, &mut buf);
        let wrong = VisitValue::decode(DType::I32, 1, Endianness::Little, &buf).unwrap();
        assert_eq!(wrong, VisitValue::I32(vec![0x0403_0201]));
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert!(VisitValue::decode(DType::F64, 2, Endianness::Little, &[0u8; 15]).is_none());
        assert!(VisitValue::decode(DType::I32, 1, Endianness::Little, &[0u8; 3]).is_none());
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        assert!(VisitValue::decode(DType::Str, 2, Endianness::Little, &[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn widening_is_exact_for_small_ints() {
        let v = VisitValue::I64(vec![1 << 52, -(1 << 52), 7]);
        let f = v.to_f64().unwrap();
        assert_eq!(f, vec![(1i64 << 52) as f64, -((1i64 << 52) as f64), 7.0]);
    }

    #[test]
    fn int_float_conversion() {
        let v = VisitValue::F64(vec![3.0, -4.0]);
        assert_eq!(v.to_i64().unwrap(), vec![3, -4]);
        let frac = VisitValue::F64(vec![3.5]);
        assert!(frac.to_i64().is_none());
        let s = VisitValue::Str("x".into());
        assert!(s.to_f64().is_none());
    }

    #[test]
    fn narrowing_is_lossy_but_defined() {
        let v = VisitValue::F64(vec![1e300]);
        let f = v.to_f32_lossy().unwrap();
        assert!(f[0].is_infinite());
    }

    #[test]
    fn byte_len_matches_encoding() {
        let values = [
            VisitValue::I32(vec![0; 3]),
            VisitValue::F64(vec![0.0; 5]),
            VisitValue::Str("abc".into()),
        ];
        for v in values {
            let mut buf = BytesMut::new();
            v.encode(Endianness::Little, &mut buf);
            assert_eq!(buf.len(), v.byte_len());
        }
    }

    #[test]
    fn dtype_codes_roundtrip() {
        for d in [
            DType::I32,
            DType::I64,
            DType::F32,
            DType::F64,
            DType::Str,
            DType::Bytes,
        ] {
            assert_eq!(DType::from_byte(d as u8), Some(d));
        }
        assert_eq!(DType::from_byte(99), None);
    }
}

#[cfg(test)]
mod props {
    //! Property tests over the payload layer: encode/decode is byte-stable
    //! for every dtype and byte order, length mismatches are rejected, and
    //! the server-side conversions are total (no panics) on any value.

    use super::*;
    use proptest::prelude::*;

    fn dtype_from(sel: u8) -> DType {
        DType::from_byte(1 + sel % 6).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// decode ∘ encode is byte-stable for every dtype/order, even for
        /// NaN float payloads where `PartialEq` can't witness it: the
        /// re-encoded bytes must match exactly.
        #[test]
        fn decode_encode_byte_stable(
            sel in any::<u8>(),
            raw in proptest::collection::vec(any::<u8>(), 0..160),
            big in any::<bool>(),
        ) {
            let order = if big { Endianness::Big } else { Endianness::Little };
            let dtype = dtype_from(sel);
            // trim to a whole number of elements (and valid UTF-8 for Str)
            let elem = match dtype {
                DType::I32 | DType::F32 => 4,
                DType::I64 | DType::F64 => 8,
                DType::Str | DType::Bytes => 1,
            };
            let buf: Vec<u8> = match dtype {
                DType::Str => String::from_utf8_lossy(&raw).into_owned().into_bytes(),
                _ => raw[..raw.len() - raw.len() % elem].to_vec(),
            };
            let count = buf.len() / elem;
            let v = VisitValue::decode(dtype, count, order, &buf).expect("aligned buffer parses");
            prop_assert_eq!(v.count(), count);
            prop_assert_eq!(v.byte_len(), buf.len());
            let mut out = bytes::BytesMut::new();
            v.encode(order, &mut out);
            prop_assert_eq!(&out[..], &buf[..]);
        }

        /// Any length mismatch between the declared count and the buffer is
        /// rejected, for every dtype.
        #[test]
        fn length_mismatch_rejected(
            sel in any::<u8>(),
            count in 0usize..32,
            delta in 1usize..8,
            shrink in any::<bool>(),
        ) {
            let dtype = dtype_from(sel);
            let elem = match dtype {
                DType::I32 | DType::F32 => 4,
                DType::I64 | DType::F64 => 8,
                DType::Str | DType::Bytes => 1,
            };
            let exact = count * elem;
            let len = if shrink { exact.saturating_sub(delta) } else { exact + delta };
            if len != exact {
                let buf = vec![b'a'; len];
                prop_assert!(VisitValue::decode(dtype, count, Endianness::Little, &buf).is_none());
            }
        }

        /// The §3.2 server-side conversions are total: no panic on any
        /// decodable value, and the integer view is exact when it exists.
        #[test]
        fn conversions_are_total(
            sel in any::<u8>(),
            raw in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let dtype = dtype_from(sel);
            let elem = match dtype {
                DType::I32 | DType::F32 => 4,
                DType::I64 | DType::F64 => 8,
                DType::Str | DType::Bytes => 1,
            };
            let buf: Vec<u8> = match dtype {
                DType::Str => String::from_utf8_lossy(&raw).into_owned().into_bytes(),
                _ => raw[..raw.len() - raw.len() % elem].to_vec(),
            };
            let v = VisitValue::decode(dtype, buf.len() / elem, Endianness::Big, &buf).unwrap();
            let _ = v.to_f64();
            let _ = v.to_f32_lossy();
            if let (Some(ints), VisitValue::I32(orig)) = (v.to_i64(), &v) {
                prop_assert_eq!(ints, orig.iter().map(|&x| x as i64).collect::<Vec<i64>>());
            }
        }
    }
}
