//! Simulation-side steering client.
//!
//! "To keep VISIT portable to 'classic supercomputers' … the simulation
//! side of VISIT in particular does not rely on any external software or
//! special environment and has a lean and easy-to-use interface" (§3.2).
//! The C API this mirrors is essentially `visit_connect`, `visit_send`,
//! `visit_recv`, `visit_disconnect`; every call takes a timeout and is
//! guaranteed to return by it.

use crate::auth::Password;
use crate::link::{FrameLink, LinkError};
use crate::value::{Endianness, VisitValue};
use crate::wire::{Frame, MsgKind};
use std::time::{Duration, Instant};

/// Why a connection attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectError {
    /// Transport-level failure.
    Link(LinkError),
    /// The server refused the password.
    Rejected,
    /// The server answered with something that is not a handshake reply.
    Protocol,
}

/// Aggregate counters: everything EV1 (the "minimal load on the steered
/// simulation" experiment) needs to quantify steering overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientStats {
    /// Data frames sent.
    pub sends: u64,
    /// Parameter requests issued.
    pub requests: u64,
    /// Requests that returned new data.
    pub replies: u64,
    /// Operations that ended in a timeout.
    pub timeouts: u64,
    /// Payload bytes shipped.
    pub bytes_sent: u64,
    /// Wall-clock time spent inside VISIT calls.
    pub time_in_calls: Duration,
}

/// The simulation's handle on its visualization/steering server.
pub struct SteeringClient<L: FrameLink> {
    link: L,
    /// Default operation timeout ("user-specified", §3.2).
    pub timeout: Duration,
    order: Endianness,
    stats: ClientStats,
    open: bool,
}

impl<L: FrameLink> SteeringClient<L> {
    /// Open a connection: send Hello with the auth token, await Ack.
    /// Completes or fails within `timeout`.
    pub fn connect(
        mut link: L,
        password: &Password,
        challenge: u64,
        timeout: Duration,
    ) -> Result<Self, ConnectError> {
        let order = Endianness::native();
        let hello = Frame::with_value(
            MsgKind::Hello,
            0,
            order,
            VisitValue::Bytes(password.client_token(challenge)),
        );
        link.send(&hello.encode()).map_err(ConnectError::Link)?;
        let reply = link.recv_timeout(timeout).map_err(ConnectError::Link)?;
        match Frame::decode(&reply).map(|f| f.kind) {
            Some(MsgKind::HelloAck) => Ok(SteeringClient {
                link,
                timeout,
                order,
                stats: ClientStats::default(),
                open: true,
            }),
            Some(MsgKind::HelloReject) => Err(ConnectError::Rejected),
            _ => Err(ConnectError::Protocol),
        }
    }

    /// Ship a tagged data sample to the visualization. Non-blocking enqueue:
    /// the simulation never waits for the visualization to consume data
    /// (the §3.2 design goal).
    pub fn send(&mut self, tag: u32, value: VisitValue) -> Result<(), LinkError> {
        // detlint::allow(R1, "time_in_calls is a real-io overhead stat (the paper's table 1), not digest input")
        let t0 = Instant::now();
        let frame = Frame::with_value(MsgKind::Data, tag, self.order, value);
        let bytes = frame.encode();
        let r = self.link.send(&bytes);
        self.stats.time_in_calls += t0.elapsed();
        match &r {
            Ok(()) => {
                self.stats.sends += 1;
                self.stats.bytes_sent += bytes.len() as u64;
            }
            Err(_) => self.stats.timeouts += 1,
        }
        r
    }

    /// Ask the server whether new data (e.g. a changed steering parameter)
    /// is pending for `tag`. Returns `Ok(None)` if the server has nothing,
    /// `Err(Timeout)` if the server did not answer in time — either way the
    /// call returns by the deadline and the simulation continues.
    pub fn request(&mut self, tag: u32) -> Result<Option<VisitValue>, LinkError> {
        // detlint::allow(R1, "time_in_calls is a real-io overhead stat (the paper's table 1), not digest input")
        let t0 = Instant::now();
        self.stats.requests += 1;
        let r = (|| {
            self.link
                .send(&Frame::bare(MsgKind::Request, tag).encode())?;
            // detlint::allow(R1, "socket deadline: the timeout guarantee of section 3.2 is real-time by definition")
            let deadline = Instant::now() + self.timeout;
            loop {
                // detlint::allow(R1, "remaining real time against the socket deadline above")
                let remaining = deadline.saturating_duration_since(Instant::now());
                let raw = self.link.recv_timeout(remaining)?;
                let frame = Frame::decode(&raw).ok_or(LinkError::Io("bad frame".into()))?;
                match frame.kind {
                    MsgKind::Reply if frame.tag == tag => return Ok(frame.value),
                    MsgKind::NoData if frame.tag == tag => return Ok(None),
                    MsgKind::Bye => return Err(LinkError::Closed),
                    // stale replies for other tags are dropped
                    _ => continue,
                }
            }
        })();
        self.stats.time_in_calls += t0.elapsed();
        match &r {
            Ok(Some(_)) => self.stats.replies += 1,
            Ok(None) => {}
            Err(_) => self.stats.timeouts += 1,
        }
        r
    }

    /// Orderly shutdown (best-effort Bye).
    pub fn close(&mut self) {
        if self.open {
            let _ = self.link.send(&Frame::bare(MsgKind::Bye, 0).encode());
            self.open = false;
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Access the underlying link (virtual-time experiments read
    /// `SimLink::elapsed` through this).
    pub fn link_mut(&mut self) -> &mut L {
        &mut self.link
    }
}

impl<L: FrameLink> Drop for SteeringClient<L> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::MemLink;
    use crate::server::VisServer;
    use std::thread;

    fn connect_pair(
        pw_server: Password,
        pw_client: Password,
    ) -> (
        Result<SteeringClient<MemLink>, ConnectError>,
        Option<VisServer<MemLink>>,
    ) {
        let (cl, sl) = MemLink::pair();
        let server = thread::spawn(move || {
            VisServer::accept(sl, &pw_server, 1, Duration::from_secs(1)).ok()
        });
        let client = SteeringClient::connect(cl, &pw_client, 1, Duration::from_secs(1));
        (client, server.join().unwrap())
    }

    #[test]
    fn handshake_succeeds_with_matching_password() {
        let (c, s) = connect_pair(
            Password::ClearText("lbm".into()),
            Password::ClearText("lbm".into()),
        );
        assert!(c.is_ok());
        assert!(s.is_some());
    }

    #[test]
    fn handshake_rejected_with_wrong_password() {
        let (c, s) = connect_pair(
            Password::ClearText("right".into()),
            Password::ClearText("wrong".into()),
        );
        assert_eq!(c.err(), Some(ConnectError::Rejected));
        assert!(s.is_none());
    }

    #[test]
    fn keyed_handshake_works() {
        let (c, _s) = connect_pair(Password::Keyed("k".into()), Password::Keyed("k".into()));
        assert!(c.is_ok());
    }

    #[test]
    fn connect_times_out_against_dead_server() {
        let (cl, _sl) = MemLink::pair(); // nobody serving
        let t0 = Instant::now();
        let r = SteeringClient::connect(cl, &Password::Open, 0, Duration::from_millis(50));
        assert_eq!(r.err(), Some(ConnectError::Link(LinkError::Timeout)));
        assert!(t0.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn request_times_out_against_stalled_server_but_returns() {
        // server accepts then goes silent — the paper's "slow visualization"
        let (cl, mut sl) = MemLink::pair();
        let server = thread::spawn(move || {
            // manual accept: read hello, ack, then stall
            let _ = sl.recv_timeout(Duration::from_secs(1)).unwrap();
            sl.send(&Frame::bare(MsgKind::HelloAck, 0).encode())
                .unwrap();
            thread::sleep(Duration::from_millis(300));
            drop(sl);
        });
        let mut c =
            SteeringClient::connect(cl, &Password::Open, 0, Duration::from_millis(40)).unwrap();
        let t0 = Instant::now();
        let r = c.request(1);
        assert_eq!(r, Err(LinkError::Timeout));
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "timeout guarantee violated"
        );
        assert_eq!(c.stats().timeouts, 1);
        server.join().unwrap();
    }

    #[test]
    fn stats_count_sends() {
        let (c, s) = connect_pair(Password::Open, Password::Open);
        let mut c = c.unwrap();
        let _s = s.unwrap();
        c.send(7, VisitValue::F64(vec![1.0, 2.0])).unwrap();
        c.send(7, VisitValue::F64(vec![3.0])).unwrap();
        let st = c.stats();
        assert_eq!(st.sends, 2);
        assert!(st.bytes_sent > 24);
    }
}
