//! Steering and visualization services (the two services of Figure 2).
//!
//! §2.3: "For illustration we show one service that steers the application
//! and another that steers the visualization. … The steering services allow
//! all of these components of the workflow to be steered." The RealityGrid
//! project "has defined APIs for the steering calls which can be used to
//! link from the application to the services" — our [`Steerable`] trait is
//! that application-side API; [`SteeringService`] exposes any `Steerable`
//! as a Grid service.

use crate::service::{unknown_op, GridService, InvokeResult, SdeValue, ServiceData};
use parking_lot::Mutex;
use std::sync::Arc;

/// The application-side steering API (the "RealityGrid steering API"
/// analog). A simulation implements this; the service wraps it.
pub trait Steerable: Send {
    /// Names of steerable parameters.
    fn param_names(&self) -> Vec<String>;
    /// Read a parameter.
    fn get_param(&self, name: &str) -> Option<f64>;
    /// Write a parameter; `Err` carries a human-readable reason (unknown
    /// name, out of bounds…).
    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String>;
    /// Monotone sample sequence number (how much output the application
    /// has emitted — lets clients detect progress).
    fn sequence_number(&self) -> u64;
}

/// A steering service wrapping a shared steerable application.
pub struct SteeringService {
    /// Human-readable application name (appears in service data).
    pub app_name: String,
    target: Arc<Mutex<dyn Steerable>>,
    /// Count of successful setParam calls (steering activity metric).
    steers_applied: u64,
}

impl SteeringService {
    /// Wrap a steerable application.
    pub fn new(app_name: &str, target: Arc<Mutex<dyn Steerable>>) -> Self {
        SteeringService {
            app_name: app_name.to_string(),
            target,
            steers_applied: 0,
        }
    }

    /// The port type used for registry discovery.
    pub const PORT_TYPE: &'static str = "reality-grid:steering";
}

impl GridService for SteeringService {
    fn port_types(&self) -> Vec<String> {
        vec![Self::PORT_TYPE.to_string()]
    }

    fn service_data(&self) -> ServiceData {
        let t = self.target.lock();
        let mut sd = ServiceData::new();
        sd.set("application", SdeValue::Str(self.app_name.clone()));
        sd.set("paramNames", SdeValue::List(t.param_names()));
        sd.set("sequenceNumber", SdeValue::I64(t.sequence_number() as i64));
        sd.set("steersApplied", SdeValue::I64(self.steers_applied as i64));
        for name in t.param_names() {
            if let Some(v) = t.get_param(&name) {
                sd.set(&format!("param:{name}"), SdeValue::F64(v));
            }
        }
        sd
    }

    fn invoke(&mut self, op: &str, args: &[SdeValue]) -> InvokeResult {
        match op {
            "listParams" => {
                let names = self.target.lock().param_names();
                InvokeResult::Ok(vec![SdeValue::List(names)])
            }
            "getParam" => {
                let Some(name) = args.first().and_then(SdeValue::as_str) else {
                    return InvokeResult::Fault("getParam needs (name)".into());
                };
                match self.target.lock().get_param(name) {
                    Some(v) => InvokeResult::Ok(vec![SdeValue::F64(v)]),
                    None => InvokeResult::Fault(format!("unknown parameter: {name}")),
                }
            }
            "setParam" => {
                let (Some(name), Some(value)) = (
                    args.first().and_then(SdeValue::as_str),
                    args.get(1).and_then(SdeValue::as_f64),
                ) else {
                    return InvokeResult::Fault("setParam needs (name, value)".into());
                };
                let name = name.to_string();
                match self.target.lock().set_param(&name, value) {
                    Ok(()) => {
                        self.steers_applied += 1;
                        InvokeResult::Ok(vec![])
                    }
                    Err(e) => InvokeResult::Fault(e),
                }
            }
            "sequenceNumber" => {
                let n = self.target.lock().sequence_number();
                InvokeResult::Ok(vec![SdeValue::I64(n as i64)])
            }
            other => unknown_op(other),
        }
    }
}

/// Shared visualization control state steered by a [`VisService`]: the
/// isovalue and viewpoint of the remote rendering pipeline (the second
/// service box in Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct VisControl {
    /// Isosurface threshold.
    pub isovalue: f64,
    /// Camera yaw (radians).
    pub yaw: f64,
    /// Frames rendered so far.
    pub frames: u64,
}

impl Default for VisControl {
    fn default() -> Self {
        VisControl {
            isovalue: 0.0,
            yaw: 0.0,
            frames: 0,
        }
    }
}

/// A visualization-steering service over shared [`VisControl`] state.
pub struct VisService {
    state: Arc<Mutex<VisControl>>,
}

impl VisService {
    /// Wrap shared control state.
    pub fn new(state: Arc<Mutex<VisControl>>) -> Self {
        VisService { state }
    }

    /// The port type used for registry discovery.
    pub const PORT_TYPE: &'static str = "reality-grid:vis-steering";
}

impl GridService for VisService {
    fn port_types(&self) -> Vec<String> {
        vec![Self::PORT_TYPE.to_string()]
    }

    fn service_data(&self) -> ServiceData {
        let s = self.state.lock();
        let mut sd = ServiceData::new();
        sd.set("isovalue", SdeValue::F64(s.isovalue));
        sd.set("yaw", SdeValue::F64(s.yaw));
        sd.set("frames", SdeValue::I64(s.frames as i64));
        sd
    }

    fn invoke(&mut self, op: &str, args: &[SdeValue]) -> InvokeResult {
        match op {
            "setIsovalue" => {
                let Some(v) = args.first().and_then(SdeValue::as_f64) else {
                    return InvokeResult::Fault("setIsovalue needs (value)".into());
                };
                self.state.lock().isovalue = v;
                InvokeResult::Ok(vec![])
            }
            "setYaw" => {
                let Some(v) = args.first().and_then(SdeValue::as_f64) else {
                    return InvokeResult::Fault("setYaw needs (value)".into());
                };
                self.state.lock().yaw = v;
                InvokeResult::Ok(vec![])
            }
            other => unknown_op(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::HostingEnv;
    use crate::registry::Registry;

    /// A toy steerable for tests: two bounded parameters + a step counter.
    pub struct ToySim {
        miscibility: f64,
        temperature: f64,
        steps: u64,
    }

    impl ToySim {
        pub fn new() -> Self {
            ToySim {
                miscibility: 0.05,
                temperature: 1.0,
                steps: 0,
            }
        }
    }

    impl Steerable for ToySim {
        fn param_names(&self) -> Vec<String> {
            vec!["miscibility".into(), "temperature".into()]
        }
        fn get_param(&self, name: &str) -> Option<f64> {
            match name {
                "miscibility" => Some(self.miscibility),
                "temperature" => Some(self.temperature),
                _ => None,
            }
        }
        fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
            match name {
                "miscibility" if (0.0..=1.0).contains(&value) => {
                    self.miscibility = value;
                    Ok(())
                }
                "miscibility" => Err("miscibility out of [0,1]".into()),
                "temperature" if value > 0.0 => {
                    self.temperature = value;
                    Ok(())
                }
                "temperature" => Err("temperature must be positive".into()),
                other => Err(format!("unknown parameter: {other}")),
            }
        }
        fn sequence_number(&self) -> u64 {
            self.steps
        }
    }

    #[test]
    fn steering_service_get_set_roundtrip() {
        let sim: Arc<Mutex<dyn Steerable>> = Arc::new(Mutex::new(ToySim::new()));
        let mut svc = SteeringService::new("lbm", sim.clone());
        let r = svc.invoke(
            "setParam",
            &[SdeValue::Str("miscibility".into()), SdeValue::F64(0.08)],
        );
        assert!(r.is_ok());
        let r = svc.invoke("getParam", &[SdeValue::Str("miscibility".into())]);
        assert_eq!(r.first().unwrap().as_f64(), Some(0.08));
        // the application itself sees the steer
        assert_eq!(sim.lock().get_param("miscibility"), Some(0.08));
    }

    #[test]
    fn out_of_bounds_steer_faults_and_leaves_value() {
        let sim: Arc<Mutex<dyn Steerable>> = Arc::new(Mutex::new(ToySim::new()));
        let mut svc = SteeringService::new("lbm", sim.clone());
        let r = svc.invoke(
            "setParam",
            &[SdeValue::Str("miscibility".into()), SdeValue::F64(5.0)],
        );
        assert!(!r.is_ok());
        assert_eq!(sim.lock().get_param("miscibility"), Some(0.05));
    }

    #[test]
    fn service_data_mirrors_params() {
        let sim: Arc<Mutex<dyn Steerable>> = Arc::new(Mutex::new(ToySim::new()));
        let svc = SteeringService::new("lbm", sim);
        let sd = svc.service_data();
        assert_eq!(sd.get("application").unwrap().as_str(), Some("lbm"));
        assert_eq!(sd.get("param:miscibility").unwrap().as_f64(), Some(0.05));
        assert_eq!(sd.get("paramNames").unwrap().as_list().unwrap().len(), 2);
    }

    #[test]
    fn figure2_flow_discover_bind_steer_both_services() {
        // the complete Figure 2 client flow: registry → discover → bind →
        // steer the simulation AND the visualization
        let mut env = HostingEnv::new();
        let sim: Arc<Mutex<dyn Steerable>> = Arc::new(Mutex::new(ToySim::new()));
        let vis = Arc::new(Mutex::new(VisControl::default()));
        let steer_gsh = env.host(
            "steer",
            Box::new(SteeringService::new("lbm", sim.clone())),
            Some(600),
        );
        let vis_gsh = env.host("vis", Box::new(VisService::new(vis.clone())), Some(600));
        let reg_gsh = env.host("registry", Box::new(Registry::new()), None);
        for (h, t) in [
            (&steer_gsh, SteeringService::PORT_TYPE),
            (&vis_gsh, VisService::PORT_TYPE),
        ] {
            env.invoke(
                &reg_gsh,
                "publish",
                &[
                    SdeValue::Str(h.clone()),
                    SdeValue::Str(t.into()),
                    SdeValue::Str("demo".into()),
                ],
            )
            .unwrap();
        }
        // client: discover steering services
        let found = env
            .invoke(
                &reg_gsh,
                "discover",
                &[SdeValue::Str(SteeringService::PORT_TYPE.into())],
            )
            .unwrap();
        let handle = found.first().unwrap().as_list().unwrap()[0].clone();
        assert_eq!(handle, steer_gsh);
        // bind + steer
        env.invoke(
            &handle,
            "setParam",
            &[SdeValue::Str("miscibility".into()), SdeValue::F64(0.12)],
        )
        .unwrap();
        assert_eq!(sim.lock().get_param("miscibility"), Some(0.12));
        // steer the visualization too
        let found = env
            .invoke(
                &reg_gsh,
                "discover",
                &[SdeValue::Str(VisService::PORT_TYPE.into())],
            )
            .unwrap();
        let vh = found.first().unwrap().as_list().unwrap()[0].clone();
        env.invoke(&vh, "setIsovalue", &[SdeValue::F64(0.3)])
            .unwrap();
        assert_eq!(vis.lock().isovalue, 0.3);
    }

    #[test]
    fn vis_service_faults_on_bad_args() {
        let mut svc = VisService::new(Arc::new(Mutex::new(VisControl::default())));
        assert!(!svc.invoke("setIsovalue", &[]).is_ok());
        assert!(!svc.invoke("spin", &[]).is_ok());
    }

    #[test]
    fn steers_applied_counter_increments_only_on_success() {
        let sim: Arc<Mutex<dyn Steerable>> = Arc::new(Mutex::new(ToySim::new()));
        let mut svc = SteeringService::new("lbm", sim);
        svc.invoke(
            "setParam",
            &[SdeValue::Str("miscibility".into()), SdeValue::F64(0.2)],
        );
        svc.invoke(
            "setParam",
            &[SdeValue::Str("miscibility".into()), SdeValue::F64(7.0)],
        );
        let sd = svc.service_data();
        assert_eq!(sd.get("steersApplied"), Some(&SdeValue::I64(1)));
    }
}
