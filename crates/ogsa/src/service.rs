//! The Grid service abstraction.
//!
//! OGSI modeled every grid entity as a *service* with typed operations,
//! queryable *service data elements* (SDEs) and an explicit lifetime. The
//! paper's steering service "simulated the behaviour of a possible OGSA
//! service before the OGSI working group had formulated its standards
//! recommendations" (§2.2); we implement the subset that architecture
//! uses.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A Grid Service Handle — the stable name a registry hands out.
pub type Gsh = String;

/// Values carried by service data elements and operation arguments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SdeValue {
    /// A string.
    Str(String),
    /// A double.
    F64(f64),
    /// An integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A list of strings (e.g. parameter names).
    List(Vec<String>),
}

impl SdeValue {
    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SdeValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Double accessor (also accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SdeValue::F64(v) => Some(*v),
            SdeValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SdeValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// List accessor.
    pub fn as_list(&self) -> Option<&[String]> {
        match self {
            SdeValue::List(v) => Some(v),
            _ => None,
        }
    }
}

/// An ordered set of named service data elements (ordered so queries and
/// test output are deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceData {
    entries: BTreeMap<String, SdeValue>,
}

impl ServiceData {
    /// Empty SDE set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert/replace an element.
    pub fn set(&mut self, name: &str, value: SdeValue) {
        self.entries.insert(name.to_string(), value);
    }

    /// Query one element (OGSI `findServiceData` by name).
    pub fn get(&self, name: &str) -> Option<&SdeValue> {
        self.entries.get(name)
    }

    /// All element names.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(|s| s.as_str()).collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no elements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Result of invoking an operation.
#[derive(Debug, Clone, PartialEq)]
pub enum InvokeResult {
    /// Operation succeeded with these outputs.
    Ok(Vec<SdeValue>),
    /// Operation faulted (OGSI fault message).
    Fault(String),
}

impl InvokeResult {
    /// First output value, if Ok and non-empty.
    pub fn first(&self) -> Option<&SdeValue> {
        match self {
            InvokeResult::Ok(v) => v.first(),
            InvokeResult::Fault(_) => None,
        }
    }

    /// True if the invocation succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, InvokeResult::Ok(_))
    }
}

/// A hosted Grid service: port types for discovery, operations for use,
/// SDEs for inspection.
pub trait GridService: Send {
    /// Port types this service implements (used for registry discovery;
    /// e.g. `"reality-grid:steering"`).
    fn port_types(&self) -> Vec<String>;

    /// Current service data.
    fn service_data(&self) -> ServiceData;

    /// Invoke a named operation.
    fn invoke(&mut self, op: &str, args: &[SdeValue]) -> InvokeResult;
}

/// The standard fault for an unknown operation.
pub fn unknown_op(op: &str) -> InvokeResult {
    InvokeResult::Fault(format!("unknown operation: {op}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sde_accessors() {
        assert_eq!(SdeValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(SdeValue::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(SdeValue::I64(3).as_f64(), Some(3.0));
        assert_eq!(SdeValue::I64(3).as_i64(), Some(3));
        assert_eq!(SdeValue::Str("x".into()).as_f64(), None);
        assert_eq!(
            SdeValue::List(vec!["a".into()]).as_list(),
            Some(&["a".to_string()][..])
        );
    }

    #[test]
    fn service_data_set_get_names() {
        let mut sd = ServiceData::new();
        sd.set("b", SdeValue::I64(1));
        sd.set("a", SdeValue::I64(2));
        sd.set("b", SdeValue::I64(3)); // replace
        assert_eq!(sd.len(), 2);
        assert_eq!(sd.get("b"), Some(&SdeValue::I64(3)));
        assert_eq!(sd.names(), vec!["a", "b"]); // deterministic order
    }

    #[test]
    fn invoke_result_helpers() {
        let ok = InvokeResult::Ok(vec![SdeValue::F64(1.0)]);
        assert!(ok.is_ok());
        assert_eq!(ok.first(), Some(&SdeValue::F64(1.0)));
        let fault = unknown_op("zap");
        assert!(!fault.is_ok());
        assert_eq!(fault.first(), None);
        assert!(matches!(fault, InvokeResult::Fault(m) if m.contains("zap")));
    }
}
