//! The service registry of Figure 2.
//!
//! §2.3: "\[The steering client\] contacts a registry which ha\[s\] details of
//! the steering services that have published to the registry. … The client
//! chooses the services it will require and binds them to the client."
//! [`Registry`] is itself a [`GridService`], so it can be hosted in the
//! same [`HostingEnv`](crate::hosting::HostingEnv) and discovered like
//! anything else — the OGSI bootstrapping story.

use crate::service::{unknown_op, GridService, Gsh, InvokeResult, SdeValue, ServiceData};

/// One published entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The published service handle.
    pub handle: Gsh,
    /// Port type it offers, e.g. `"reality-grid:steering"`.
    pub port_type: String,
    /// Free-text description shown to users choosing a service.
    pub description: String,
}

/// A registry of published services.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a handle under a port type. Re-publishing the same handle
    /// and port type replaces the description.
    pub fn publish(&mut self, handle: &str, port_type: &str, description: &str) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.handle == handle && e.port_type == port_type)
        {
            e.description = description.to_string();
            return;
        }
        self.entries.push(Entry {
            handle: handle.to_string(),
            port_type: port_type.to_string(),
            description: description.to_string(),
        });
    }

    /// Remove every entry for a handle (a destroyed service must vanish
    /// from discovery).
    pub fn unpublish(&mut self, handle: &str) {
        self.entries.retain(|e| e.handle != handle);
    }

    /// Discover handles by port type, in publication order.
    pub fn discover(&self, port_type: &str) -> Vec<&Entry> {
        self.entries
            .iter()
            .filter(|e| e.port_type == port_type)
            .collect()
    }

    /// Total published entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl GridService for Registry {
    fn port_types(&self) -> Vec<String> {
        vec!["ogsi:registry".into()]
    }

    fn service_data(&self) -> ServiceData {
        let mut sd = ServiceData::new();
        sd.set("entryCount", SdeValue::I64(self.entries.len() as i64));
        let mut types: Vec<String> = self.entries.iter().map(|e| e.port_type.clone()).collect();
        types.sort();
        types.dedup();
        sd.set("portTypes", SdeValue::List(types));
        sd
    }

    fn invoke(&mut self, op: &str, args: &[SdeValue]) -> InvokeResult {
        match op {
            // publish(handle, portType, description)
            "publish" => {
                let (Some(h), Some(p)) = (
                    args.first().and_then(SdeValue::as_str),
                    args.get(1).and_then(SdeValue::as_str),
                ) else {
                    return InvokeResult::Fault("publish needs (handle, portType)".into());
                };
                let d = args.get(2).and_then(SdeValue::as_str).unwrap_or("");
                // clone to appease the borrow of args vs self
                let (h, p, d) = (h.to_string(), p.to_string(), d.to_string());
                self.publish(&h, &p, &d);
                InvokeResult::Ok(vec![])
            }
            // discover(portType) -> list of handles
            "discover" => {
                let Some(p) = args.first().and_then(SdeValue::as_str) else {
                    return InvokeResult::Fault("discover needs (portType)".into());
                };
                let handles: Vec<String> =
                    self.discover(p).iter().map(|e| e.handle.clone()).collect();
                InvokeResult::Ok(vec![SdeValue::List(handles)])
            }
            // unpublish(handle)
            "unpublish" => {
                let Some(h) = args.first().and_then(SdeValue::as_str) else {
                    return InvokeResult::Fault("unpublish needs (handle)".into());
                };
                let h = h.to_string();
                self.unpublish(&h);
                InvokeResult::Ok(vec![])
            }
            other => unknown_op(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::HostingEnv;

    #[test]
    fn publish_discover_unpublish() {
        let mut r = Registry::new();
        r.publish("gsh://steer/1", "reality-grid:steering", "LB sim steering");
        r.publish(
            "gsh://vis/1",
            "reality-grid:vis-steering",
            "isosurface control",
        );
        r.publish("gsh://steer/2", "reality-grid:steering", "PEPC steering");
        let found = r.discover("reality-grid:steering");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].handle, "gsh://steer/1");
        r.unpublish("gsh://steer/1");
        assert_eq!(r.discover("reality-grid:steering").len(), 1);
    }

    #[test]
    fn republish_updates_description() {
        let mut r = Registry::new();
        r.publish("h", "t", "old");
        r.publish("h", "t", "new");
        assert_eq!(r.len(), 1);
        assert_eq!(r.discover("t")[0].description, "new");
    }

    #[test]
    fn discovery_of_unknown_type_is_empty() {
        let r = Registry::new();
        assert!(r.discover("nothing").is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn registry_as_grid_service() {
        let mut env = HostingEnv::new();
        let gsh = env.host("registry", Box::new(Registry::new()), None);
        env.invoke(
            &gsh,
            "publish",
            &[
                SdeValue::Str("gsh://steer/9".into()),
                SdeValue::Str("reality-grid:steering".into()),
                SdeValue::Str("demo".into()),
            ],
        )
        .unwrap();
        let r = env
            .invoke(
                &gsh,
                "discover",
                &[SdeValue::Str("reality-grid:steering".into())],
            )
            .unwrap();
        assert_eq!(
            r.first().unwrap().as_list().unwrap(),
            &["gsh://steer/9".to_string()]
        );
        let sd = env.service_data(&gsh).unwrap();
        assert_eq!(sd.get("entryCount"), Some(&SdeValue::I64(1)));
    }

    #[test]
    fn malformed_invocations_fault() {
        let mut r = Registry::new();
        assert!(!r.invoke("publish", &[]).is_ok());
        assert!(!r.invoke("discover", &[SdeValue::I64(3)]).is_ok());
        assert!(!r.invoke("no-such-op", &[]).is_ok());
    }
}
