//! # ogsa — a lightweight OGSA/OGSI hosting environment (OGSI::Lite analog)
//!
//! §2.3 of the paper: "RealityGrid has therefore developed a lightweight
//! OGSA hosting environment called OGSI-Lite. This uses Perl to create the
//! hosting environment and can thus run on almost any platform." (The
//! original even ran on a Sony PlayStation 2.) The hosting environment
//! exists because "the very first implementations of the proposed OGSI
//! standard [GT3, .NET] … have very basic functionality, insufficient for
//! our steering application."
//!
//! This crate is that hosting environment in Rust, providing the OGSI
//! subset the paper's steering architecture (Figure 2) needs:
//!
//! * [`service`] — the [`service::GridService`] trait:
//!   operations ([`service::GridService::invoke`]), queryable
//!   *service data elements* (OGSI `findServiceData`), and port types.
//! * [`hosting`] — [`hosting::HostingEnv`]: factories, grid
//!   service handles (GSHs), invocation dispatch, and OGSI *soft-state
//!   lifetimes* (services expire unless their termination time is
//!   extended).
//! * [`registry`] — the registry of Figure 2: services publish
//!   `(handle, port type)` entries; clients discover by port type and then
//!   bind to the handles ("the client chooses the services it will require
//!   and binds them to the client", §2.3).
//! * [`steering`] — the steering-service and visualization-service port
//!   types of Figure 2, exposing the RealityGrid-style steering API
//!   (`listParams` / `getParam` / `setParam` / `sequenceNumber`) over any
//!   [`steering::Steerable`] application.

pub mod hosting;
pub mod registry;
pub mod service;
pub mod steering;

pub use hosting::{HostingEnv, HostingError};
pub use registry::Registry;
pub use service::{GridService, Gsh, InvokeResult, SdeValue, ServiceData};
pub use steering::{Steerable, SteeringService, VisControl, VisService};
