//! The hosting environment (OGSI::Lite analog).
//!
//! Owns every hosted service instance, hands out Grid Service Handles,
//! dispatches invocations and SDE queries, and implements OGSI's
//! *soft-state lifetime* model: every service has a termination time;
//! clients keep services alive by extending it (`requestTerminationAfter`);
//! [`HostingEnv::sweep`] reaps the expired. Lifetime time is a logical
//! clock in seconds, advanced by the host — deterministic for tests and
//! experiments.

use crate::service::{GridService, Gsh, InvokeResult, SdeValue, ServiceData};
use std::collections::BTreeMap;

/// Hosting-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostingError {
    /// No factory registered under that name.
    UnknownFactory(String),
    /// No service at that handle (never existed, destroyed, or expired).
    UnknownHandle(Gsh),
}

struct Hosted {
    service: Box<dyn GridService>,
    /// Logical expiry time; `None` = immortal.
    termination_time: Option<u64>,
}

/// Factory closure producing fresh service instances.
pub type Factory = Box<dyn Fn() -> Box<dyn GridService> + Send>;

/// The hosting environment.
#[derive(Default)]
pub struct HostingEnv {
    factories: BTreeMap<String, Factory>,
    services: BTreeMap<Gsh, Hosted>,
    now: u64,
    next_id: u64,
}

impl HostingEnv {
    /// Empty environment at logical time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical time (seconds).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Register a factory (OGSI Factory port type).
    pub fn register_factory(&mut self, name: &str, f: Factory) {
        self.factories.insert(name.to_string(), f);
    }

    /// Create a service from a factory with an initial lifetime of
    /// `lifetime_secs` from now (`None` = immortal). Returns its handle.
    pub fn create(
        &mut self,
        factory: &str,
        lifetime_secs: Option<u64>,
    ) -> Result<Gsh, HostingError> {
        let f = self
            .factories
            .get(factory)
            .ok_or_else(|| HostingError::UnknownFactory(factory.to_string()))?;
        let service = f();
        let gsh = format!("gsh://{}/{}", factory, self.next_id);
        self.next_id += 1;
        self.services.insert(
            gsh.clone(),
            Hosted {
                service,
                termination_time: lifetime_secs.map(|l| self.now + l),
            },
        );
        Ok(gsh)
    }

    /// Host an externally-constructed service instance directly (used for
    /// services closing over application state, e.g. steering services
    /// wrapping a live simulation).
    pub fn host(
        &mut self,
        name: &str,
        service: Box<dyn GridService>,
        lifetime_secs: Option<u64>,
    ) -> Gsh {
        let gsh = format!("gsh://{}/{}", name, self.next_id);
        self.next_id += 1;
        self.services.insert(
            gsh.clone(),
            Hosted {
                service,
                termination_time: lifetime_secs.map(|l| self.now + l),
            },
        );
        gsh
    }

    /// Invoke an operation on a hosted service.
    pub fn invoke(
        &mut self,
        gsh: &str,
        op: &str,
        args: &[SdeValue],
    ) -> Result<InvokeResult, HostingError> {
        let h = self
            .services
            .get_mut(gsh)
            .ok_or_else(|| HostingError::UnknownHandle(gsh.to_string()))?;
        Ok(h.service.invoke(op, args))
    }

    /// Query a service's data.
    pub fn service_data(&self, gsh: &str) -> Result<ServiceData, HostingError> {
        let h = self
            .services
            .get(gsh)
            .ok_or_else(|| HostingError::UnknownHandle(gsh.to_string()))?;
        Ok(h.service.service_data())
    }

    /// Port types of a hosted service.
    pub fn port_types(&self, gsh: &str) -> Result<Vec<String>, HostingError> {
        let h = self
            .services
            .get(gsh)
            .ok_or_else(|| HostingError::UnknownHandle(gsh.to_string()))?;
        Ok(h.service.port_types())
    }

    /// Extend a service's lifetime to at least `until` (logical seconds).
    /// OGSI semantics: extensions never shorten a lifetime.
    pub fn extend_lifetime(&mut self, gsh: &str, until: u64) -> Result<(), HostingError> {
        let h = self
            .services
            .get_mut(gsh)
            .ok_or_else(|| HostingError::UnknownHandle(gsh.to_string()))?;
        h.termination_time = h.termination_time.map(|t| t.max(until));
        Ok(())
    }

    /// Explicitly destroy a service.
    pub fn destroy(&mut self, gsh: &str) -> Result<(), HostingError> {
        self.services
            .remove(gsh)
            .map(|_| ())
            .ok_or_else(|| HostingError::UnknownHandle(gsh.to_string()))
    }

    /// Advance logical time and reap services whose termination time has
    /// passed. Returns the handles reaped (sorted, for determinism).
    pub fn sweep(&mut self, advance_secs: u64) -> Vec<Gsh> {
        self.now += advance_secs;
        let now = self.now;
        let dead: Vec<Gsh> = self
            .services
            .iter()
            .filter(|(_, h)| h.termination_time.is_some_and(|t| t < now))
            .map(|(g, _)| g.clone())
            .collect();
        for g in &dead {
            self.services.remove(g);
        }
        dead
    }

    /// Number of live services.
    pub fn live_count(&self) -> usize {
        self.services.len()
    }

    /// Handles of all live services (sorted — `BTreeMap` key order).
    pub fn handles(&self) -> Vec<Gsh> {
        self.services.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::unknown_op;

    /// Minimal test service: a counter.
    struct Counter {
        n: i64,
    }

    impl GridService for Counter {
        fn port_types(&self) -> Vec<String> {
            vec!["test:counter".into()]
        }
        fn service_data(&self) -> ServiceData {
            let mut sd = ServiceData::new();
            sd.set("count", SdeValue::I64(self.n));
            sd
        }
        fn invoke(&mut self, op: &str, _args: &[SdeValue]) -> InvokeResult {
            match op {
                "increment" => {
                    self.n += 1;
                    InvokeResult::Ok(vec![SdeValue::I64(self.n)])
                }
                other => unknown_op(other),
            }
        }
    }

    fn env_with_counter_factory() -> HostingEnv {
        let mut env = HostingEnv::new();
        env.register_factory("counter", Box::new(|| Box::new(Counter { n: 0 })));
        env
    }

    #[test]
    fn create_invoke_query_destroy() {
        let mut env = env_with_counter_factory();
        let gsh = env.create("counter", None).unwrap();
        assert!(gsh.starts_with("gsh://counter/"));
        let r = env.invoke(&gsh, "increment", &[]).unwrap();
        assert_eq!(r, InvokeResult::Ok(vec![SdeValue::I64(1)]));
        let sd = env.service_data(&gsh).unwrap();
        assert_eq!(sd.get("count"), Some(&SdeValue::I64(1)));
        env.destroy(&gsh).unwrap();
        assert!(matches!(
            env.invoke(&gsh, "increment", &[]),
            Err(HostingError::UnknownHandle(_))
        ));
    }

    #[test]
    fn factories_make_independent_instances() {
        let mut env = env_with_counter_factory();
        let a = env.create("counter", None).unwrap();
        let b = env.create("counter", None).unwrap();
        assert_ne!(a, b);
        env.invoke(&a, "increment", &[]).unwrap();
        assert_eq!(
            env.service_data(&b).unwrap().get("count"),
            Some(&SdeValue::I64(0))
        );
    }

    #[test]
    fn unknown_factory_errors() {
        let mut env = HostingEnv::new();
        assert_eq!(
            env.create("ghost", None),
            Err(HostingError::UnknownFactory("ghost".into()))
        );
    }

    #[test]
    fn soft_state_expiry_reaps_unextended_services() {
        let mut env = env_with_counter_factory();
        let short = env.create("counter", Some(10)).unwrap();
        let long = env.create("counter", Some(100)).unwrap();
        let forever = env.create("counter", None).unwrap();
        let dead = env.sweep(11);
        assert_eq!(dead, vec![short.clone()]);
        assert_eq!(env.live_count(), 2);
        let dead = env.sweep(100);
        assert_eq!(dead, vec![long]);
        assert!(env.handles().contains(&forever));
    }

    #[test]
    fn extension_keeps_service_alive() {
        let mut env = env_with_counter_factory();
        let gsh = env.create("counter", Some(10)).unwrap();
        env.extend_lifetime(&gsh, 50).unwrap();
        assert!(env.sweep(20).is_empty());
        // extension cannot shorten
        env.extend_lifetime(&gsh, 1).unwrap();
        assert!(env.sweep(20).is_empty()); // now=40 < 50
        assert_eq!(env.sweep(11), vec![gsh]); // now=51 > 50
    }

    #[test]
    fn hosted_instance_works_like_created() {
        let mut env = HostingEnv::new();
        let gsh = env.host("adhoc", Box::new(Counter { n: 41 }), None);
        let r = env.invoke(&gsh, "increment", &[]).unwrap();
        assert_eq!(r, InvokeResult::Ok(vec![SdeValue::I64(42)]));
        assert_eq!(
            env.port_types(&gsh).unwrap(),
            vec!["test:counter".to_string()]
        );
    }

    #[test]
    fn unknown_operation_is_fault_not_error() {
        let mut env = env_with_counter_factory();
        let gsh = env.create("counter", None).unwrap();
        let r = env.invoke(&gsh, "zap", &[]).unwrap();
        assert!(matches!(r, InvokeResult::Fault(_)));
    }
}
