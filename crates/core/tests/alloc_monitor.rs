//! The zero-copy acceptance gate for the monitor data plane: once warm,
//! publishing a sample must perform **no grid-sized allocation** anywhere
//! on the path — source extraction (`monitor_payloads_into` refills the
//! caller's scratch), hub fan-out (borrowed payloads chunked in place,
//! never cloned on the fast path), and subscriber delivery (a digesting
//! sink that folds the frames without storing them).
//!
//! The witness is a counting global allocator: every allocation at least
//! as large as the *smaller* grid channel (the mid-plane slice) is
//! counted, so a single hidden clone of either grid trips the gate.

use gridsteer_bus::{MonitorCaps, MonitorEndpoint, MonitorError, MonitorFrame, MonitorHub};
use lbm::{LbmConfig, TwoFluidLbm};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use steer_core::{LbmMonitorAdapter, MonitorScratch};

/// 16×16 mid-plane slice of f32 = 1 KiB: the smallest grid buffer on the
/// monitor surface for the lattice below. Anything this large allocated
/// during a warm publish is a zero-copy regression.
const GRID_BYTES: usize = 16 * 16 * 4;

static ARMED: AtomicBool = AtomicBool::new(false);
static GRID_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Both tests arm the same global counter; the parallel test runner must
/// not interleave their measurement windows.
static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct CountingAlloc;

// SAFETY: defers to `System` for every operation; the wrapper only counts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) && layout.size() >= GRID_BYTES {
            GRID_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) && new_size >= GRID_BYTES {
            GRID_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A viewer that digests delivered frames in place — FNV-1a over the
/// payload floats' bit patterns — storing nothing, allocating nothing.
struct DigestSink {
    caps: MonitorCaps,
    digest: u64,
    frames_seen: u64,
}

impl DigestSink {
    fn new() -> DigestSink {
        DigestSink {
            caps: MonitorCaps::full("digest", 64),
            digest: 0xcbf2_9ce4_8422_2325,
            frames_seen: 0,
        }
    }

    fn fold(&mut self, bits: u64) {
        self.digest ^= bits;
        self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl MonitorEndpoint for DigestSink {
    fn transport(&self) -> &'static str {
        "digest"
    }

    fn negotiate(&mut self, viewer: &MonitorCaps) -> MonitorCaps {
        self.caps = self.caps.intersect(viewer);
        self.caps.clone()
    }

    fn deliver(&mut self, frames: &[MonitorFrame]) -> Result<usize, MonitorError> {
        use gridsteer_bus::MonitorPayload;
        for f in frames {
            self.fold(f.seq);
            match &f.payload {
                MonitorPayload::Scalar { value, .. } => self.fold(value.to_bits()),
                MonitorPayload::Vec3 { value, .. } => {
                    for c in value {
                        self.fold(c.to_bits());
                    }
                }
                MonitorPayload::Grid2 { data, .. } | MonitorPayload::Grid3 { data, .. } => {
                    for v in data.iter() {
                        self.fold(u64::from(v.to_bits()));
                    }
                }
                MonitorPayload::Frame { data, .. } => {
                    for b in data.iter() {
                        self.fold(u64::from(*b));
                    }
                }
            }
            self.frames_seen += 1;
        }
        Ok(frames.len())
    }

    fn recv(&mut self) -> Vec<MonitorFrame<'static>> {
        Vec::new()
    }
}

#[test]
fn warm_monitor_publish_makes_no_grid_sized_allocation() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let mut sim = TwoFluidLbm::new(LbmConfig {
        nx: 16,
        ny: 16,
        nz: 8,
        threads: 1,
        ..Default::default()
    });
    sim.step_n(2);

    let hub = MonitorHub::new();
    hub.attach_endpoint(
        "viewer",
        Box::new(DigestSink::new()),
        &MonitorCaps::full("viewer", 64),
    );
    let mut adapter = LbmMonitorAdapter::new();
    let mut scratch = MonitorScratch::default();

    // warm-up: the scratch buffers take their grid-sized capacity here
    for _ in 0..2 {
        assert_eq!(adapter.publish_borrowed(&sim, &hub, &mut scratch), 6);
    }

    // steady state: many publishes, zero grid-sized allocations
    GRID_ALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    for _ in 0..32 {
        assert_eq!(adapter.publish_borrowed(&sim, &hub, &mut scratch), 6);
    }
    ARMED.store(false, Ordering::Relaxed);
    assert_eq!(
        GRID_ALLOCS.load(Ordering::Relaxed),
        0,
        "warm publish path allocated a grid-sized buffer"
    );

    // the frames really arrived (the gate must not pass vacuously)
    let delivered = hub.stats_of("viewer").expect("viewer attached").delivered;
    assert_eq!(delivered, 34 * 6);
}

#[test]
fn owned_publish_path_does_allocate_grids() {
    // control experiment: the pre-existing owned path trips the same
    // counter, proving the instrument can detect what the zero-copy
    // assertion above claims is absent
    let _serial = COUNTER_LOCK.lock().unwrap();
    let sim = TwoFluidLbm::new(LbmConfig {
        nx: 16,
        ny: 16,
        nz: 8,
        threads: 1,
        ..Default::default()
    });
    let hub = MonitorHub::new();
    hub.attach_endpoint(
        "viewer",
        Box::new(DigestSink::new()),
        &MonitorCaps::full("viewer", 64),
    );
    let mut adapter = LbmMonitorAdapter::new();
    GRID_ALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    adapter.publish(&sim, &hub);
    ARMED.store(false, Ordering::Relaxed);
    assert!(
        GRID_ALLOCS.load(Ordering::Relaxed) >= 2,
        "owned path should allocate both grid channels"
    );
}
