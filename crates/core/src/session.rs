//! Collaborative steering sessions.
//!
//! The session layer merges the paper's two collaboration models: the
//! vbroker master semantics of §3.3 ("only that master is able to actively
//! steer the application. The master-role can be moved … allowing for a
//! coordinated cooperative steering") and the role split of §3.3's control
//! server ("one role allows to change visualization parameters … a second
//! role is just for passive viewers").

use crate::params::{ParamRegistry, ParamValue, SharedRegistry};
use gridsteer_bus::SteerCommand;
use gridsteer_ckpt::{CkptError, SectionReader, SectionWriter, Snapshot};
use netsim::SimTime;

/// What a participant may do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Holds the steering token: may change simulation parameters.
    Master,
    /// May request the token and change visualization parameters.
    Steerer,
    /// Watches only.
    Viewer,
}

/// A session participant.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Display name.
    pub name: String,
    /// Current role.
    pub role: Role,
    /// Samples delivered to this participant.
    pub samples_received: u64,
    /// Monotone join sequence number — lower means longer-joined. A
    /// participant that leaves and rejoins gets a fresh (higher) number.
    pub joined_seq: u64,
}

/// Auditable session events.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Someone joined.
    Joined(String),
    /// Someone left.
    Left(String),
    /// The master token moved.
    MasterPassed { from: String, to: String },
    /// A steer was applied; `value` is what the registry actually
    /// applied (post clamp/coercion).
    Steered {
        who: String,
        param: String,
        value: ParamValue,
    },
    /// A steer was refused (not master / bad value).
    SteerRefused {
        who: String,
        param: String,
        reason: String,
    },
    /// A sample was fanned out to all participants.
    SampleBroadcast { seq: u64, bytes: usize },
}

/// The collaborative steering session.
pub struct SteeringSession {
    participants: Vec<Participant>,
    /// The shared parameter registry — a [`SharedRegistry`] handle, so a
    /// steering-bus hub and this session can be one authority.
    pub params: SharedRegistry,
    events: Vec<SessionEvent>,
    sample_seq: u64,
    join_counter: u64,
    /// Total bytes fanned out (bytes × recipients).
    pub fanout_bytes: u64,
}

impl SteeringSession {
    /// Empty session around an owned parameter registry.
    pub fn new(params: ParamRegistry) -> Self {
        Self::with_registry(SharedRegistry::new(params))
    }

    /// Empty session around a shared registry (e.g. a
    /// `gridsteer_bus::SteerHub`'s — endpoint reads and session writes
    /// then see one value store).
    pub fn with_registry(params: SharedRegistry) -> Self {
        SteeringSession {
            participants: Vec::new(),
            params,
            events: Vec::new(),
            sample_seq: 0,
            join_counter: 0,
            fanout_bytes: 0,
        }
    }

    /// Join; the first participant becomes master, later ones join as
    /// viewers (they can be promoted).
    pub fn join(&mut self, name: &str) -> usize {
        let role = if self.participants.iter().any(|p| p.role == Role::Master) {
            Role::Viewer
        } else {
            Role::Master
        };
        let joined_seq = self.join_counter;
        self.join_counter += 1;
        self.participants.push(Participant {
            name: name.to_string(),
            role,
            samples_received: 0,
            joined_seq,
        });
        self.events.push(SessionEvent::Joined(name.to_string()));
        self.participants.len() - 1
    }

    /// Leave. If the master leaves, the token deterministically passes to
    /// the longest-joined remaining participant — smallest `joined_seq`,
    /// not vector position — and a [`SessionEvent::MasterPassed`] is
    /// emitted (auto-promotion: the session must stay steerable, mirroring
    /// the vbroker rule).
    pub fn leave(&mut self, idx: usize) {
        if idx >= self.participants.len() {
            return;
        }
        let was_master = self.participants[idx].role == Role::Master;
        let name = self.participants.remove(idx).name;
        self.events.push(SessionEvent::Left(name.clone()));
        if was_master {
            if let Some(next) = self.participants.iter_mut().min_by_key(|p| p.joined_seq) {
                next.role = Role::Master;
                let to = next.name.clone();
                self.events
                    .push(SessionEvent::MasterPassed { from: name, to });
            }
        }
    }

    /// Leave by name. Returns false if no such participant is present.
    pub fn leave_by_name(&mut self, name: &str) -> bool {
        match self.index_of(name) {
            Some(idx) => {
                self.leave(idx);
                true
            }
            None => false,
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// True if nobody is present.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// Participant accessor.
    pub fn participant(&self, idx: usize) -> Option<&Participant> {
        self.participants.get(idx)
    }

    /// Index of a participant by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.participants.iter().position(|p| p.name == name)
    }

    /// Index of the current master.
    pub fn master(&self) -> Option<usize> {
        self.participants
            .iter()
            .position(|p| p.role == Role::Master)
    }

    /// Number of participants holding the master role. The session
    /// maintains exactly one whenever anyone is present and zero when
    /// empty — an invariant-oracle probe, not a lookup (use
    /// [`SteeringSession::master`] for that).
    pub fn master_count(&self) -> usize {
        self.participants
            .iter()
            .filter(|p| p.role == Role::Master)
            .count()
    }

    /// Pass the master token. Only the current master may pass it, and
    /// only to a present participant.
    pub fn pass_master(&mut self, from: usize, to: usize) -> bool {
        if from == to
            || from >= self.participants.len()
            || to >= self.participants.len()
            || self.participants[from].role != Role::Master
        {
            return false;
        }
        self.participants[from].role = Role::Steerer;
        self.participants[to].role = Role::Master;
        self.events.push(SessionEvent::MasterPassed {
            from: self.participants[from].name.clone(),
            to: self.participants[to].name.clone(),
        });
        true
    }

    /// Apply a typed steer from participant `idx`. Only the master
    /// steers the application; refusals are logged, not silent. Returns
    /// the value actually applied (post clamp/coercion).
    pub fn steer_value(
        &mut self,
        idx: usize,
        param: &str,
        value: &ParamValue,
    ) -> Result<ParamValue, String> {
        let Some(p) = self.participants.get(idx) else {
            return Err("no such participant".into());
        };
        let who = p.name.clone();
        if p.role != Role::Master {
            let reason = "not the master".to_string();
            self.events.push(SessionEvent::SteerRefused {
                who,
                param: param.to_string(),
                reason: reason.clone(),
            });
            return Err(reason);
        }
        match self.params.set_value(param, value) {
            Ok(applied) => {
                self.events.push(SessionEvent::Steered {
                    who,
                    param: param.to_string(),
                    value: applied.clone(),
                });
                Ok(applied)
            }
            Err(reason) => {
                self.events.push(SessionEvent::SteerRefused {
                    who,
                    param: param.to_string(),
                    reason: reason.clone(),
                });
                Err(reason)
            }
        }
    }

    /// Apply an f64 steer (shim over [`SteeringSession::steer_value`]).
    pub fn steer(&mut self, idx: usize, param: &str, value: f64) -> Result<(), String> {
        self.steer_value(idx, param, &ParamValue::F64(value))
            .map(|_| ())
    }

    /// Apply a command batch atomically: all commands are validated
    /// against the registry first, then applied in order — all or
    /// nothing, the bus's step-boundary semantics over the server wire.
    /// Returns the number of commands applied.
    pub fn steer_batch(&mut self, idx: usize, commands: &[SteerCommand]) -> Result<usize, String> {
        let Some(p) = self.participants.get(idx) else {
            return Err("no such participant".into());
        };
        let who = p.name.clone();
        if p.role != Role::Master {
            let reason = "not the master".to_string();
            // log every refused command, not just the first — the audit
            // trail must account for the whole batch
            for cmd in commands {
                self.events.push(SessionEvent::SteerRefused {
                    who: who.clone(),
                    param: cmd.param.clone(),
                    reason: reason.clone(),
                });
            }
            return Err(reason);
        }
        // validate-all before apply-any
        for cmd in commands {
            if let Err(reason) = self.params.validate(&cmd.param, &cmd.value) {
                self.events.push(SessionEvent::SteerRefused {
                    who,
                    param: cmd.param.clone(),
                    reason: reason.clone(),
                });
                return Err(reason);
            }
        }
        for cmd in commands {
            let applied = self.params.set_value(&cmd.param, &cmd.value)?;
            self.events.push(SessionEvent::Steered {
                who: who.clone(),
                param: cmd.param.clone(),
                value: applied,
            });
        }
        Ok(commands.len())
    }

    /// Broadcast one sample of `bytes` to every participant (accounting
    /// only; transport lives in the server/vbroker layers). Returns the
    /// sample sequence number.
    pub fn broadcast_sample(&mut self, bytes: usize) -> u64 {
        self.sample_seq += 1;
        for p in &mut self.participants {
            p.samples_received += 1;
            self.fanout_bytes += bytes as u64;
        }
        self.events.push(SessionEvent::SampleBroadcast {
            seq: self.sample_seq,
            bytes,
        });
        self.sample_seq
    }

    /// The audit log.
    pub fn events(&self) -> &[SessionEvent] {
        &self.events
    }

    /// Serialize the session — participants (names, roles, seniority,
    /// per-participant sample counts), the audit log, and the sample /
    /// join / fan-out counters — into snapshot section `name`. The
    /// parameter registry is *not* serialized here: it is shared with
    /// the steering hub, which owns its checkpoint section.
    pub fn save_sections(&self, snap: &mut Snapshot, name: &str) {
        let mut w = SectionWriter::new();
        w.put_u64(self.sample_seq);
        w.put_u64(self.join_counter);
        w.put_u64(self.fanout_bytes);
        w.put_u32(self.participants.len() as u32);
        for p in &self.participants {
            w.put_str(&p.name);
            w.put_u8(match p.role {
                Role::Master => 0,
                Role::Steerer => 1,
                Role::Viewer => 2,
            });
            w.put_u64(p.samples_received);
            w.put_u64(p.joined_seq);
        }
        w.put_u32(self.events.len() as u32);
        for e in &self.events {
            put_event(&mut w, e);
        }
        snap.push(name, 0, w.finish());
    }

    /// Rebuild a session from snapshot section `name` around `params`
    /// (the restored hub's shared registry, so the session and the bus
    /// stay one authority). Roles, seniority, the audit log and every
    /// counter resume exactly where the checkpoint cut them — a
    /// rejoining participant still gets a fresh `joined_seq`, and the
    /// next sample broadcast continues the sequence.
    pub fn restore_sections(
        snap: &Snapshot,
        name: &str,
        params: SharedRegistry,
    ) -> Result<SteeringSession, CkptError> {
        let mut r = snap.reader(name)?;
        let sample_seq = r.get_u64()?;
        let join_counter = r.get_u64()?;
        let fanout_bytes = r.get_u64()?;
        let nparts = r.get_u32()?;
        let mut participants = Vec::new();
        for _ in 0..nparts {
            let pname = r.get_str()?;
            let role = match r.get_u8()? {
                0 => Role::Master,
                1 => Role::Steerer,
                2 => Role::Viewer,
                _ => {
                    return Err(CkptError::Corrupt {
                        context: format!("session {name}: role byte"),
                    })
                }
            };
            participants.push(Participant {
                name: pname,
                role,
                samples_received: r.get_u64()?,
                joined_seq: r.get_u64()?,
            });
        }
        let nevents = r.get_u32()?;
        let mut events = Vec::new();
        for _ in 0..nevents {
            events.push(get_event(&mut r, name)?);
        }
        r.expect_end()?;
        Ok(SteeringSession {
            participants,
            params,
            events,
            sample_seq,
            join_counter,
            fanout_bytes,
        })
    }

    /// §4.4's tolerance rule: the acceptable simulation-loop delay is
    /// ~60 s, and "this tolerance can even be increased if intermediate
    /// results … are displayed in-between". Returns the effective budget
    /// given how often intermediate samples arrive.
    pub fn effective_sim_budget(sample_interval: SimTime) -> SimTime {
        let base = SimTime::from_secs(60);
        if sample_interval <= SimTime::from_secs(10) {
            // steady intermediate results: tolerance roughly doubles
            SimTime::from_secs(120)
        } else {
            base
        }
    }
}

fn put_event(w: &mut SectionWriter, e: &SessionEvent) {
    match e {
        SessionEvent::Joined(name) => {
            w.put_u8(0);
            w.put_str(name);
        }
        SessionEvent::Left(name) => {
            w.put_u8(1);
            w.put_str(name);
        }
        SessionEvent::MasterPassed { from, to } => {
            w.put_u8(2);
            w.put_str(from);
            w.put_str(to);
        }
        SessionEvent::Steered { who, param, value } => {
            w.put_u8(3);
            w.put_str(who);
            w.put_str(param);
            gridsteer_bus::ckpt::put_value(w, value);
        }
        SessionEvent::SteerRefused { who, param, reason } => {
            w.put_u8(4);
            w.put_str(who);
            w.put_str(param);
            w.put_str(reason);
        }
        SessionEvent::SampleBroadcast { seq, bytes } => {
            w.put_u8(5);
            w.put_u64(*seq);
            w.put_u64(*bytes as u64);
        }
    }
}

fn get_event(r: &mut SectionReader<'_>, section: &str) -> Result<SessionEvent, CkptError> {
    Ok(match r.get_u8()? {
        0 => SessionEvent::Joined(r.get_str()?),
        1 => SessionEvent::Left(r.get_str()?),
        2 => SessionEvent::MasterPassed {
            from: r.get_str()?,
            to: r.get_str()?,
        },
        3 => SessionEvent::Steered {
            who: r.get_str()?,
            param: r.get_str()?,
            value: gridsteer_bus::ckpt::get_value(r, "session event value")?,
        },
        4 => SessionEvent::SteerRefused {
            who: r.get_str()?,
            param: r.get_str()?,
            reason: r.get_str()?,
        },
        5 => SessionEvent::SampleBroadcast {
            seq: r.get_u64()?,
            bytes: r.get_u64()? as usize,
        },
        _ => {
            return Err(CkptError::Corrupt {
                context: format!("session {section}: event tag"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSpec;

    fn session() -> SteeringSession {
        let mut reg = ParamRegistry::new();
        reg.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
        SteeringSession::new(reg)
    }

    #[test]
    fn steer_batch_is_all_or_nothing() {
        let mut s = session();
        let a = s.join("a");
        // one bad command poisons the whole batch
        let r = s.steer_batch(
            a,
            &[
                SteerCommand::f64("miscibility", 0.25),
                SteerCommand::f64("miscibility", 7.0),
            ],
        );
        assert!(r.is_err());
        assert_eq!(
            s.params.get_value("miscibility"),
            Some(ParamValue::F64(1.0)),
            "nothing applied"
        );
        // a clean batch applies in order
        let n = s
            .steer_batch(
                a,
                &[
                    SteerCommand::f64("miscibility", 0.25),
                    SteerCommand::f64("miscibility", 0.75),
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            s.params.get_value("miscibility"),
            Some(ParamValue::F64(0.75))
        );
        assert_eq!(
            s.events()
                .iter()
                .filter(|e| matches!(e, SessionEvent::Steered { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn viewer_batch_refused() {
        let mut s = session();
        let _a = s.join("a");
        let b = s.join("b");
        assert_eq!(
            s.steer_batch(b, &[SteerCommand::f64("miscibility", 0.5)])
                .unwrap_err(),
            "not the master"
        );
    }

    #[test]
    fn first_joiner_is_master() {
        let mut s = session();
        let a = s.join("brooke");
        let b = s.join("eickermann");
        assert_eq!(s.participant(a).unwrap().role, Role::Master);
        assert_eq!(s.participant(b).unwrap().role, Role::Viewer);
        assert_eq!(s.master(), Some(a));
    }

    #[test]
    fn only_master_steers() {
        let mut s = session();
        let a = s.join("master");
        let b = s.join("viewer");
        assert!(s.steer(a, "miscibility", 0.5).is_ok());
        assert!(s.steer(b, "miscibility", 0.2).is_err());
        assert_eq!(
            s.params.get_value("miscibility"),
            Some(ParamValue::F64(0.5))
        );
        assert!(matches!(
            s.events().last(),
            Some(SessionEvent::SteerRefused { .. })
        ));
    }

    #[test]
    fn token_passing_moves_steering_rights() {
        let mut s = session();
        let a = s.join("a");
        let b = s.join("b");
        assert!(s.pass_master(a, b));
        assert!(s.steer(a, "miscibility", 0.2).is_err());
        assert!(s.steer(b, "miscibility", 0.2).is_ok());
        // non-master cannot pass the token
        assert!(!s.pass_master(a, b));
        // passing to self is refused
        assert!(!s.pass_master(b, b));
    }

    #[test]
    fn master_departure_auto_promotes() {
        let mut s = session();
        let a = s.join("a");
        let _b = s.join("b");
        let _c = s.join("c");
        s.leave(a);
        assert_eq!(s.master(), Some(0)); // "b" promoted
        assert!(s
            .events()
            .iter()
            .any(|e| matches!(e, SessionEvent::MasterPassed { .. })));
    }

    #[test]
    fn departing_master_hands_off_to_longest_joined() {
        // a passes the token to c, then c leaves: the token must return to
        // a by explicit seniority (smallest joined_seq) — an invariant that
        // holds even if the participant storage is ever reordered — and the
        // handoff must be logged.
        let mut s = session();
        let a = s.join("a");
        let _b = s.join("b");
        let c = s.join("c");
        assert!(s.pass_master(a, c));
        let c = s.index_of("c").unwrap();
        s.leave(c);
        assert_eq!(s.master(), s.index_of("a"));
        assert_eq!(
            s.events().last(),
            Some(&SessionEvent::MasterPassed {
                from: "c".into(),
                to: "a".into()
            })
        );
    }

    #[test]
    fn rejoin_resets_seniority_for_handoff() {
        // a joins, b joins, a leaves and rejoins: b is now longest-joined.
        // When master b departs, the token must go to... well, a is the only
        // one left; make it three-way so the choice is real.
        let mut s = session();
        s.join("a");
        s.join("b"); // b is master? no — a is master (first joiner)
        s.join("c");
        assert!(s.leave_by_name("a")); // master leaves → b promoted
        assert_eq!(s.master(), s.index_of("b"));
        s.join("a"); // a rejoins, now junior to both b and c
        assert!(s.leave_by_name("b")); // master leaves again
        assert_eq!(
            s.master(),
            s.index_of("c"),
            "token must go to c (longest-joined), not the rejoined a"
        );
    }

    #[test]
    fn non_master_departure_passes_no_token() {
        let mut s = session();
        s.join("a");
        s.join("b");
        assert!(s.leave_by_name("b"));
        assert_eq!(s.master(), s.index_of("a"));
        assert!(!s
            .events()
            .iter()
            .any(|e| matches!(e, SessionEvent::MasterPassed { .. })));
    }

    #[test]
    fn leave_by_name_unknown_is_refused() {
        let mut s = session();
        s.join("a");
        assert!(!s.leave_by_name("ghost"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn join_seq_is_monotone_and_survives_churn() {
        let mut s = session();
        s.join("a");
        s.join("b");
        s.leave_by_name("a");
        let idx = s.join("a");
        let rejoined = s.participant(idx).unwrap();
        let b = s.participant(s.index_of("b").unwrap()).unwrap();
        assert!(rejoined.joined_seq > b.joined_seq);
    }

    #[test]
    fn handoff_chain_drains_to_last_participant() {
        // masters keep leaving; the token must walk down the join order
        // deterministically until one participant remains.
        let mut s = session();
        for name in ["a", "b", "c", "d"] {
            s.join(name);
        }
        for expected in ["b", "c", "d"] {
            let m = s.master().unwrap();
            s.leave(m);
            assert_eq!(s.master(), s.index_of(expected));
        }
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn out_of_bounds_steer_logged_and_refused() {
        let mut s = session();
        let a = s.join("a");
        assert!(s.steer(a, "miscibility", 5.0).is_err());
        assert_eq!(
            s.params.get_value("miscibility"),
            Some(ParamValue::F64(1.0))
        );
    }

    #[test]
    fn sample_fanout_accounting() {
        let mut s = session();
        s.join("a");
        s.join("b");
        s.join("c");
        let seq = s.broadcast_sample(1000);
        assert_eq!(seq, 1);
        assert_eq!(s.fanout_bytes, 3000);
        assert!(s.participant(0).unwrap().samples_received == 1);
    }

    #[test]
    fn empty_session_edge_cases() {
        let mut s = session();
        assert!(s.is_empty());
        assert_eq!(s.master(), None);
        s.leave(0); // no panic
        assert!(s.steer(0, "miscibility", 0.5).is_err());
    }

    #[test]
    fn session_survives_snapshot_roundtrip_and_resumes_numbering() {
        let mut s = session();
        let a = s.join("a");
        let b = s.join("b");
        s.steer(a, "miscibility", 0.4).unwrap();
        assert!(s.steer(b, "miscibility", 0.1).is_err());
        s.pass_master(a, b);
        s.broadcast_sample(512);
        s.leave_by_name("a");

        let mut snap = Snapshot::new(1, 0);
        s.save_sections(&mut snap, "session/main");
        let snap = Snapshot::decode(&snap.encode()).unwrap();
        let mut restored =
            SteeringSession::restore_sections(&snap, "session/main", s.params.clone()).unwrap();

        assert_eq!(restored.len(), 1);
        assert_eq!(restored.master(), restored.index_of("b"));
        assert_eq!(restored.events(), s.events());
        assert_eq!(restored.fanout_bytes, s.fanout_bytes);
        // counters resume, not restart
        assert_eq!(restored.broadcast_sample(100), 2);
        let idx = restored.join("a");
        let rejoined = restored.participant(idx).unwrap();
        assert_eq!(rejoined.joined_seq, 2, "join counter survived the restore");
        assert_eq!(rejoined.role, Role::Viewer, "b still holds the token");
    }

    #[test]
    fn session_restore_rejects_bad_role_and_event_tags() {
        let s = session();
        let mut snap = Snapshot::new(1, 0);
        s.save_sections(&mut snap, "session/main");
        let body = snap.section("session/main").unwrap().to_vec();
        let mut poisoned = Snapshot::new(1, 0);
        // truncating mid-structure is a typed error, never a panic
        poisoned.push(
            "session/main",
            0,
            body[..body.len().saturating_sub(2)].to_vec(),
        );
        assert!(
            SteeringSession::restore_sections(&poisoned, "session/main", s.params.clone()).is_err()
        );
        assert!(matches!(
            SteeringSession::restore_sections(&poisoned, "ghost", s.params.clone()),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn sim_budget_extends_with_intermediate_results() {
        let fast = SteeringSession::effective_sim_budget(SimTime::from_secs(2));
        let slow = SteeringSession::effective_sim_budget(SimTime::from_secs(30));
        assert_eq!(slow, SimTime::from_secs(60));
        assert!(fast > slow);
    }
}
