//! Steerable parameters: registry, bounds, history, application adapters.
//!
//! §2.3: "the RealityGrid project has defined APIs for the steering calls
//! which can be used to link from the application to the services." The
//! [`ParamRegistry`] is the session-side half of that API; the adapters
//! ([`LbmSteerAdapter`], [`PepcSteerAdapter`]) are the application-side
//! half, exposing each code's physics knobs as bounded named parameters
//! and implementing [`ogsa::Steerable`] so the same applications are
//! steerable through the Figure-2 service stack.

use lbm::TwoFluidLbm;
use ogsa::Steerable;
use parking_lot::Mutex;
use pepc::PepcSim;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Declaration of one steerable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name.
    pub name: String,
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
    /// Initial value.
    pub initial: f64,
}

/// A typed registry of steerable parameters with change history.
#[derive(Debug, Default)]
pub struct ParamRegistry {
    specs: BTreeMap<String, ParamSpec>,
    values: BTreeMap<String, f64>,
    /// `(sequence, name, value)` change log.
    history: Vec<(u64, String, f64)>,
    seq: u64,
}

impl ParamRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a parameter.
    pub fn declare(&mut self, spec: ParamSpec) {
        self.values.insert(spec.name.clone(), spec.initial);
        self.specs.insert(spec.name.clone(), spec);
    }

    /// Parameter names.
    pub fn names(&self) -> Vec<String> {
        self.specs.keys().cloned().collect()
    }

    /// Current value.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Apply a steer. Returns `Err` on unknown names or out-of-bounds
    /// values (the steer is *rejected*, not clamped — collaborators must
    /// see exactly what was applied).
    pub fn set(&mut self, name: &str, value: f64) -> Result<(), String> {
        let spec = self
            .specs
            .get(name)
            .ok_or_else(|| format!("unknown parameter: {name}"))?;
        if value < spec.min || value > spec.max {
            return Err(format!(
                "{name}={value} outside [{}, {}]",
                spec.min, spec.max
            ));
        }
        self.values.insert(name.to_string(), value);
        self.seq += 1;
        self.history.push((self.seq, name.to_string(), value));
        Ok(())
    }

    /// Change log (oldest first).
    pub fn history(&self) -> &[(u64, String, f64)] {
        &self.history
    }

    /// Monotone change counter.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// [`Steerable`] adapter for the Lattice-Boltzmann fluid: exposes the
/// §2.2 steering parameter, `miscibility ∈ [0,1]`.
pub struct LbmSteerAdapter {
    sim: Arc<Mutex<TwoFluidLbm>>,
}

impl LbmSteerAdapter {
    /// Wrap a shared simulation.
    pub fn new(sim: Arc<Mutex<TwoFluidLbm>>) -> Self {
        LbmSteerAdapter { sim }
    }
}

impl Steerable for LbmSteerAdapter {
    fn param_names(&self) -> Vec<String> {
        vec!["miscibility".into()]
    }

    fn get_param(&self, name: &str) -> Option<f64> {
        (name == "miscibility").then(|| self.sim.lock().miscibility())
    }

    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        if name != "miscibility" {
            return Err(format!("unknown parameter: {name}"));
        }
        if !(0.0..=1.0).contains(&value) {
            return Err(format!("miscibility={value} outside [0,1]"));
        }
        self.sim.lock().set_miscibility(value);
        Ok(())
    }

    fn sequence_number(&self) -> u64 {
        self.sim.lock().steps()
    }
}

/// [`Steerable`] adapter for PEPC: the §3.4 beam/laser/assist knobs.
pub struct PepcSteerAdapter {
    sim: Arc<Mutex<PepcSim>>,
}

impl PepcSteerAdapter {
    /// Wrap a shared simulation.
    pub fn new(sim: Arc<Mutex<PepcSim>>) -> Self {
        PepcSteerAdapter { sim }
    }

    /// The registry specs matching this adapter.
    pub fn specs() -> Vec<ParamSpec> {
        vec![
            ParamSpec {
                name: "beam_intensity".into(),
                min: 0.0,
                max: 100.0,
                initial: 0.0,
            },
            ParamSpec {
                name: "beam_theta".into(),
                min: -std::f64::consts::PI,
                max: std::f64::consts::PI,
                initial: 0.0,
            },
            ParamSpec {
                name: "laser_amplitude".into(),
                min: 0.0,
                max: 100.0,
                initial: 0.0,
            },
            ParamSpec {
                name: "damping".into(),
                min: 0.0,
                max: 1.0,
                initial: 0.0,
            },
        ]
    }
}

impl Steerable for PepcSteerAdapter {
    fn param_names(&self) -> Vec<String> {
        Self::specs().into_iter().map(|s| s.name).collect()
    }

    fn get_param(&self, name: &str) -> Option<f64> {
        let p = self.sim.lock().params();
        match name {
            "beam_intensity" => Some(p.beam_intensity),
            "beam_theta" => Some(p.beam_dir[2].atan2(p.beam_dir[0])),
            "laser_amplitude" => Some(p.laser_amplitude),
            "damping" => Some(p.damping),
            _ => None,
        }
    }

    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        let mut sim = self.sim.lock();
        let mut p = sim.params();
        match name {
            "beam_intensity" if (0.0..=100.0).contains(&value) => p.beam_intensity = value,
            "beam_theta" => {
                // steer the beam direction in the x–z plane (§3.4:
                // "direction … altered by the user interactively")
                p.beam_dir = [value.cos(), 0.0, value.sin()];
            }
            "laser_amplitude" if (0.0..=100.0).contains(&value) => p.laser_amplitude = value,
            "damping" if (0.0..=1.0).contains(&value) => p.damping = value,
            known @ ("beam_intensity" | "laser_amplitude" | "damping") => {
                return Err(format!("{known}={value} out of bounds"))
            }
            other => return Err(format!("unknown parameter: {other}")),
        }
        sim.set_params(p);
        Ok(())
    }

    fn sequence_number(&self) -> u64 {
        self.sim.lock().step_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm::LbmConfig;
    use pepc::PepcConfig;

    #[test]
    fn registry_declares_gets_sets() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec {
            name: "miscibility".into(),
            min: 0.0,
            max: 1.0,
            initial: 1.0,
        });
        assert_eq!(r.get("miscibility"), Some(1.0));
        r.set("miscibility", 0.25).unwrap();
        assert_eq!(r.get("miscibility"), Some(0.25));
        assert_eq!(r.seq(), 1);
        assert_eq!(r.history().len(), 1);
    }

    #[test]
    fn out_of_bounds_rejected_not_clamped() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec {
            name: "x".into(),
            min: 0.0,
            max: 1.0,
            initial: 0.5,
        });
        assert!(r.set("x", 2.0).is_err());
        assert_eq!(r.get("x"), Some(0.5), "value must be untouched");
        assert_eq!(r.seq(), 0);
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut r = ParamRegistry::new();
        assert!(r.set("ghost", 1.0).is_err());
        assert_eq!(r.get("ghost"), None);
    }

    #[test]
    fn lbm_adapter_steers_the_simulation() {
        let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
        let mut a = LbmSteerAdapter::new(sim.clone());
        a.set_param("miscibility", 0.1).unwrap();
        assert_eq!(sim.lock().miscibility(), 0.1);
        assert!(a.set_param("miscibility", 2.0).is_err());
        assert!(a.set_param("temperature", 1.0).is_err());
        assert_eq!(a.get_param("miscibility"), Some(0.1));
    }

    #[test]
    fn pepc_adapter_round_trips_all_params() {
        let sim = Arc::new(Mutex::new(PepcSim::new(PepcConfig::small())));
        let mut a = PepcSteerAdapter::new(sim.clone());
        a.set_param("beam_intensity", 2.0).unwrap();
        a.set_param("laser_amplitude", 1.5).unwrap();
        a.set_param("damping", 0.3).unwrap();
        a.set_param("beam_theta", std::f64::consts::FRAC_PI_2)
            .unwrap();
        assert_eq!(a.get_param("beam_intensity"), Some(2.0));
        assert_eq!(a.get_param("laser_amplitude"), Some(1.5));
        assert_eq!(a.get_param("damping"), Some(0.3));
        let th = a.get_param("beam_theta").unwrap();
        assert!((th - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // the underlying sim actually changed
        let p = sim.lock().params();
        assert!(p.beam_dir[2] > 0.99);
    }

    #[test]
    fn pepc_adapter_rejects_bad_values() {
        let sim = Arc::new(Mutex::new(PepcSim::new(PepcConfig::small())));
        let mut a = PepcSteerAdapter::new(sim);
        assert!(a.set_param("damping", 5.0).is_err());
        assert!(a.set_param("warp_factor", 9.0).is_err());
    }

    #[test]
    fn sequence_number_tracks_sim_progress() {
        let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
        let a = LbmSteerAdapter::new(sim.clone());
        assert_eq!(a.sequence_number(), 0);
        sim.lock().step_n(3);
        assert_eq!(a.sequence_number(), 3);
    }
}
