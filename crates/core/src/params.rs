//! Steerable parameters: the bus registry plus application adapters.
//!
//! §2.3: "the RealityGrid project has defined APIs for the steering calls
//! which can be used to link from the application to the services." The
//! registry half of that API now lives in [`gridsteer_bus`] (typed
//! [`ParamValue`]s with explicit clamp-vs-reject [`BoundsPolicy`]) and is
//! re-exported here so pre-bus call sites keep compiling; this module
//! keeps the application-side half: one [`GenericSteerAdapter`] exposing
//! any [`SteerTarget`] simulation as bounded named parameters behind
//! [`ogsa::Steerable`], replacing the per-simulation copy-pasted
//! adapters (the old `LbmSteerAdapter` / `PepcSteerAdapter` are now type
//! aliases of it).

use lbm::TwoFluidLbm;
use ogsa::Steerable;
use parking_lot::Mutex;
use pepc::PepcSim;
use std::sync::Arc;

pub use gridsteer_bus::{
    BoundsPolicy, ParamKind, ParamRegistry, ParamSpec, ParamValue, SharedRegistry, SteerCommand,
};

/// A simulation steerable through typed specs: the single trait both
/// paper codes implement, from which every adapter and scenario backend
/// derives its parameter surface.
pub trait SteerTarget {
    /// The typed registry specs this simulation accepts.
    fn specs() -> Vec<ParamSpec>;
    /// Read a parameter's current value.
    fn read(&self, name: &str) -> Option<ParamValue>;
    /// Apply an already-admitted value (bounds-checked against
    /// [`SteerTarget::specs`] by the caller).
    fn write(&mut self, name: &str, value: &ParamValue) -> Result<(), String>;
    /// Monotone progress counter (simulation steps taken).
    fn progress(&self) -> u64;
}

impl SteerTarget for TwoFluidLbm {
    fn specs() -> Vec<ParamSpec> {
        // §2.2's steering parameter: miscibility ∈ [0,1]
        vec![ParamSpec::f64("miscibility", 0.0, 1.0, 1.0)]
    }

    fn read(&self, name: &str) -> Option<ParamValue> {
        (name == "miscibility").then(|| ParamValue::F64(self.miscibility()))
    }

    fn write(&mut self, name: &str, value: &ParamValue) -> Result<(), String> {
        match (name, value.as_f64()) {
            ("miscibility", Some(v)) => {
                self.set_miscibility(v);
                Ok(())
            }
            _ => Err(format!("unknown parameter: {name}")),
        }
    }

    fn progress(&self) -> u64 {
        self.steps()
    }
}

impl SteerTarget for PepcSim {
    fn specs() -> Vec<ParamSpec> {
        // the §3.4 beam/laser/assist knobs
        vec![
            ParamSpec::f64("beam_intensity", 0.0, 100.0, 0.0),
            ParamSpec::f64(
                "beam_theta",
                -std::f64::consts::PI,
                std::f64::consts::PI,
                0.0,
            ),
            ParamSpec::f64("laser_amplitude", 0.0, 100.0, 0.0),
            ParamSpec::f64("damping", 0.0, 1.0, 0.0),
        ]
    }

    fn read(&self, name: &str) -> Option<ParamValue> {
        let p = self.params();
        Some(ParamValue::F64(match name {
            "beam_intensity" => p.beam_intensity,
            "beam_theta" => p.beam_dir[2].atan2(p.beam_dir[0]),
            "laser_amplitude" => p.laser_amplitude,
            "damping" => p.damping,
            _ => return None,
        }))
    }

    fn write(&mut self, name: &str, value: &ParamValue) -> Result<(), String> {
        let v = value
            .as_f64()
            .ok_or_else(|| format!("{name}: non-numeric steer"))?;
        let mut p = self.params();
        match name {
            "beam_intensity" => p.beam_intensity = v,
            // steer the beam direction in the x–z plane (§3.4:
            // "direction … altered by the user interactively")
            "beam_theta" => p.beam_dir = [v.cos(), 0.0, v.sin()],
            "laser_amplitude" => p.laser_amplitude = v,
            "damping" => p.damping = v,
            other => return Err(format!("unknown parameter: {other}")),
        }
        self.set_params(p);
        Ok(())
    }

    fn progress(&self) -> u64 {
        self.step_count()
    }
}

/// One [`Steerable`] adapter for every [`SteerTarget`] simulation —
/// bounds come from the typed specs, so clamp-vs-reject policies apply
/// uniformly and per-simulation adapter code no longer exists.
pub struct GenericSteerAdapter<T> {
    sim: Arc<Mutex<T>>,
    /// Cached [`SteerTarget::specs`] — steers are per-command hot path,
    /// so the spec surface is derived once at construction.
    cached_specs: Vec<ParamSpec>,
}

impl<T: SteerTarget> GenericSteerAdapter<T> {
    /// Wrap a shared simulation.
    pub fn new(sim: Arc<Mutex<T>>) -> Self {
        GenericSteerAdapter {
            sim,
            cached_specs: T::specs(),
        }
    }

    /// The registry specs matching this adapter.
    pub fn specs() -> Vec<ParamSpec> {
        T::specs()
    }

    /// Typed read.
    pub fn get_value(&self, name: &str) -> Option<ParamValue> {
        self.sim.lock().read(name)
    }

    /// Typed write: admit against the spec (clamp/reject/coerce), then
    /// apply. Returns the value actually applied.
    pub fn set_value(&mut self, name: &str, value: &ParamValue) -> Result<ParamValue, String> {
        let spec = self
            .cached_specs
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("unknown parameter: {name}"))?;
        let applied = spec.admit(value)?;
        self.sim.lock().write(name, &applied)?;
        Ok(applied)
    }
}

impl<T: SteerTarget + Send> Steerable for GenericSteerAdapter<T> {
    fn param_names(&self) -> Vec<String> {
        self.cached_specs.iter().map(|s| s.name.clone()).collect()
    }

    fn get_param(&self, name: &str) -> Option<f64> {
        self.sim.lock().read(name).and_then(|v| v.as_f64())
    }

    fn set_param(&mut self, name: &str, value: f64) -> Result<(), String> {
        self.set_value(name, &ParamValue::F64(value)).map(|_| ())
    }

    fn sequence_number(&self) -> u64 {
        self.sim.lock().progress()
    }
}

/// [`Steerable`] adapter for the Lattice-Boltzmann fluid (§2.2).
pub type LbmSteerAdapter = GenericSteerAdapter<TwoFluidLbm>;
/// [`Steerable`] adapter for PEPC (§3.4).
pub type PepcSteerAdapter = GenericSteerAdapter<PepcSim>;

#[cfg(test)]
mod tests {
    use super::*;
    use lbm::LbmConfig;
    use pepc::PepcConfig;

    #[test]
    fn registry_declares_gets_sets() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
        assert_eq!(r.get_value("miscibility"), Some(&ParamValue::F64(1.0)));
        r.set_value("miscibility", &ParamValue::F64(0.25)).unwrap();
        assert_eq!(r.get_value("miscibility"), Some(&ParamValue::F64(0.25)));
        assert_eq!(r.seq(), 1);
        assert_eq!(r.history().len(), 1);
    }

    #[test]
    fn out_of_bounds_rejected_not_clamped() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64("x", 0.0, 1.0, 0.5));
        assert!(r.set_value("x", &ParamValue::F64(2.0)).is_err());
        assert_eq!(r.get_value("x"), Some(&ParamValue::F64(0.5)));
        assert_eq!(r.seq(), 0);
    }

    #[test]
    fn clamp_policy_spec_pins_instead() {
        let mut r = ParamRegistry::new();
        r.declare(ParamSpec::f64_clamped("x", 0.0, 1.0, 0.5));
        let applied = r.set_value("x", &ParamValue::F64(2.0)).unwrap();
        assert_eq!(applied, ParamValue::F64(1.0), "clamp applies the bound");
        assert_eq!(r.get_value("x"), Some(&ParamValue::F64(1.0)));
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut r = ParamRegistry::new();
        assert!(r.set_value("ghost", &ParamValue::F64(1.0)).is_err());
        assert_eq!(r.get_value("ghost"), None);
    }

    #[test]
    fn lbm_adapter_steers_the_simulation() {
        let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
        let mut a = LbmSteerAdapter::new(sim.clone());
        a.set_param("miscibility", 0.1).unwrap();
        assert_eq!(sim.lock().miscibility(), 0.1);
        assert!(a.set_param("miscibility", 2.0).is_err());
        assert!(a.set_param("temperature", 1.0).is_err());
        assert_eq!(a.get_param("miscibility"), Some(0.1));
    }

    #[test]
    fn pepc_adapter_round_trips_all_params() {
        let sim = Arc::new(Mutex::new(PepcSim::new(PepcConfig::small())));
        let mut a = PepcSteerAdapter::new(sim.clone());
        a.set_param("beam_intensity", 2.0).unwrap();
        a.set_param("laser_amplitude", 1.5).unwrap();
        a.set_param("damping", 0.3).unwrap();
        a.set_param("beam_theta", std::f64::consts::FRAC_PI_2)
            .unwrap();
        assert_eq!(a.get_param("beam_intensity"), Some(2.0));
        assert_eq!(a.get_param("laser_amplitude"), Some(1.5));
        assert_eq!(a.get_param("damping"), Some(0.3));
        let th = a.get_param("beam_theta").unwrap();
        assert!((th - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // the underlying sim actually changed
        let p = sim.lock().params();
        assert!(p.beam_dir[2] > 0.99);
    }

    #[test]
    fn pepc_adapter_rejects_bad_values() {
        let sim = Arc::new(Mutex::new(PepcSim::new(PepcConfig::small())));
        let mut a = PepcSteerAdapter::new(sim);
        assert!(a.set_param("damping", 5.0).is_err());
        assert!(a.set_param("warp_factor", 9.0).is_err());
    }

    #[test]
    fn sequence_number_tracks_sim_progress() {
        let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
        let a = LbmSteerAdapter::new(sim.clone());
        assert_eq!(a.sequence_number(), 0);
        sim.lock().step_n(3);
        assert_eq!(a.sequence_number(), 3);
    }

    #[test]
    fn generic_adapter_typed_surface() {
        let sim = Arc::new(Mutex::new(TwoFluidLbm::new(LbmConfig::small())));
        let mut a = LbmSteerAdapter::new(sim);
        let applied = a.set_value("miscibility", &ParamValue::F64(0.5)).unwrap();
        assert_eq!(applied, ParamValue::F64(0.5));
        assert_eq!(a.get_value("miscibility"), Some(ParamValue::F64(0.5)));
        assert!(a
            .set_value("miscibility", &ParamValue::Str("x".into()))
            .is_err());
    }

    #[test]
    fn both_targets_declare_consistent_specs() {
        for spec in LbmSteerAdapter::specs()
            .iter()
            .chain(PepcSteerAdapter::specs().iter())
        {
            let initial = spec.initial.as_f64().unwrap();
            assert!(spec.min.unwrap() <= initial && initial <= spec.max.unwrap());
        }
    }
}
