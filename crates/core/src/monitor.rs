//! Feedback-loop budgets of §4.2–4.4.
//!
//! The paper's only quantitative requirements table, in prose:
//!
//! * **VR rendering loop** (§4.2): "at least 10 to 15 updates per second"
//!   when the viewer moves — budget 66–100 ms; we use the lenient bound.
//! * **Desktop rendering loop** (§4.2): "at least 3 to 5 frames per second
//!   should be reached with one frame delay" — budget 333 ms, divergence
//!   between sites at most one frame.
//! * **Post-processing loop** (§4.3): "in the range of parts of a second
//!   to multiple seconds"; we take 5 s, with the harder requirement being
//!   *synchrony* across sites.
//! * **Simulation loop** (§4.4): "people can tolerate delays of up to a
//!   minute while waiting for new simulation results."

use netsim::SimTime;

/// One of the paper's reaction-time budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopBudget {
    /// §4.2, CAVE/VR: 10–15 fps ⇒ ≤100 ms per update.
    VrRender,
    /// §4.2, desktop: 3–5 fps ⇒ ≤333 ms per update.
    DesktopRender,
    /// §4.3: parameter change → updated scene, ≤5 s.
    PostProcessing,
    /// §4.4: simulation parameter change → new results, ≤60 s.
    Simulation,
}

impl LoopBudget {
    /// The latency budget.
    pub fn budget(self) -> SimTime {
        match self {
            LoopBudget::VrRender => SimTime::from_millis(100),
            LoopBudget::DesktopRender => SimTime::from_millis(333),
            LoopBudget::PostProcessing => SimTime::from_secs(5),
            LoopBudget::Simulation => SimTime::from_secs(60),
        }
    }

    /// The cross-site divergence bound, where the paper states one
    /// ("a variation of one frame does not influence a discussion process,
    /// while multiple frames difference … might lead to misunderstanding",
    /// §4.2).
    pub fn max_skew(self) -> Option<SimTime> {
        match self {
            LoopBudget::VrRender => Some(SimTime::from_millis(100)),
            LoopBudget::DesktopRender => Some(SimTime::from_millis(333)),
            // §4.3: "the update takes place at the same time at the
            // different participating sites" — within one desktop frame
            LoopBudget::PostProcessing => Some(SimTime::from_millis(333)),
            LoopBudget::Simulation => None,
        }
    }

    /// Human-readable name (appears in experiment output).
    pub fn name(self) -> &'static str {
        match self {
            LoopBudget::VrRender => "vr-render",
            LoopBudget::DesktopRender => "desktop-render",
            LoopBudget::PostProcessing => "post-processing",
            LoopBudget::Simulation => "simulation",
        }
    }
}

/// Records measurements of one feedback loop and checks them against the
/// budget.
#[derive(Debug, Clone)]
pub struct LoopMonitor {
    /// Which loop is measured.
    pub budget: LoopBudget,
    samples: Vec<SimTime>,
    skews: Vec<SimTime>,
}

/// Summary of a monitored loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// The loop.
    pub budget: LoopBudget,
    /// Number of measurements.
    pub count: usize,
    /// Mean latency.
    pub mean: SimTime,
    /// Worst latency.
    pub max: SimTime,
    /// Worst cross-site skew.
    pub max_skew: SimTime,
    /// True if every latency met the budget.
    pub within_budget: bool,
    /// True if every skew met the divergence bound (vacuously true when
    /// the budget has none).
    pub within_skew: bool,
    /// Achieved update rate implied by the mean latency (Hz).
    pub rate_hz: f64,
}

impl LoopMonitor {
    /// Monitor for one budget.
    pub fn new(budget: LoopBudget) -> Self {
        LoopMonitor {
            budget,
            samples: Vec::new(),
            skews: Vec::new(),
        }
    }

    /// Record one loop latency.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency);
    }

    /// Record one cross-site skew observation.
    pub fn record_skew(&mut self, skew: SimTime) {
        self.skews.push(skew);
    }

    /// Number of latency samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The recorded latency samples, in recording order (so callers can
    /// derive percentiles without keeping a parallel copy).
    pub fn samples(&self) -> &[SimTime] {
        &self.samples
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarize.
    pub fn report(&self) -> LoopReport {
        let count = self.samples.len();
        let sum: u64 = self.samples.iter().map(|t| t.as_nanos()).sum();
        let mean = SimTime::from_nanos(if count > 0 { sum / count as u64 } else { 0 });
        let max = self.samples.iter().copied().max().unwrap_or(SimTime::ZERO);
        let max_skew = self.skews.iter().copied().max().unwrap_or(SimTime::ZERO);
        let within_budget = count > 0 && max <= self.budget.budget();
        let within_skew = match self.budget.max_skew() {
            Some(bound) => max_skew <= bound,
            None => true,
        };
        let rate_hz = if mean.as_nanos() > 0 {
            1e9 / mean.as_nanos() as f64
        } else {
            f64::INFINITY
        };
        LoopReport {
            budget: self.budget,
            count,
            mean,
            max,
            max_skew,
            within_budget,
            within_skew,
            rate_hz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_the_paper() {
        assert_eq!(LoopBudget::VrRender.budget(), SimTime::from_millis(100));
        assert_eq!(
            LoopBudget::DesktopRender.budget(),
            SimTime::from_millis(333)
        );
        assert_eq!(LoopBudget::PostProcessing.budget(), SimTime::from_secs(5));
        assert_eq!(LoopBudget::Simulation.budget(), SimTime::from_secs(60));
        assert!(LoopBudget::Simulation.max_skew().is_none());
    }

    #[test]
    fn within_budget_detection() {
        let mut m = LoopMonitor::new(LoopBudget::VrRender);
        for ms in [20, 40, 60] {
            m.record(SimTime::from_millis(ms));
        }
        let r = m.report();
        assert!(r.within_budget);
        assert_eq!(r.max, SimTime::from_millis(60));
        assert_eq!(r.mean, SimTime::from_millis(40));
        assert!((r.rate_hz - 25.0).abs() < 0.1);
    }

    #[test]
    fn budget_violation_detected() {
        let mut m = LoopMonitor::new(LoopBudget::VrRender);
        m.record(SimTime::from_millis(50));
        m.record(SimTime::from_millis(150)); // a remote-render round trip
        assert!(!m.report().within_budget);
    }

    #[test]
    fn skew_bound_checked() {
        let mut m = LoopMonitor::new(LoopBudget::DesktopRender);
        m.record(SimTime::from_millis(100));
        m.record_skew(SimTime::from_millis(400));
        let r = m.report();
        assert!(r.within_budget);
        assert!(!r.within_skew, "multi-frame divergence must fail");
    }

    #[test]
    fn samples_accessor_exposes_recordings_in_order() {
        let mut m = LoopMonitor::new(LoopBudget::VrRender);
        for ms in [30, 10, 20] {
            m.record(SimTime::from_millis(ms));
        }
        assert_eq!(
            m.samples(),
            &[
                SimTime::from_millis(30),
                SimTime::from_millis(10),
                SimTime::from_millis(20)
            ]
        );
    }

    #[test]
    fn empty_monitor_not_within_budget() {
        let m = LoopMonitor::new(LoopBudget::Simulation);
        assert!(m.is_empty());
        assert!(!m.report().within_budget, "no evidence ⇒ no pass");
    }
}
