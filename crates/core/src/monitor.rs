//! Feedback-loop budgets of §4.2–4.4, and the monitored-output adapters.
//!
//! The paper's only quantitative requirements table, in prose:
//!
//! * **VR rendering loop** (§4.2): "at least 10 to 15 updates per second"
//!   when the viewer moves — budget 66–100 ms; we use the lenient bound.
//! * **Desktop rendering loop** (§4.2): "at least 3 to 5 frames per second
//!   should be reached with one frame delay" — budget 333 ms, divergence
//!   between sites at most one frame.
//! * **Post-processing loop** (§4.3): "in the range of parts of a second
//!   to multiple seconds"; we take 5 s, with the harder requirement being
//!   *synchrony* across sites.
//! * **Simulation loop** (§4.4): "people can tolerate delays of up to a
//!   minute while waiting for new simulation results."
//!
//! The budgets are what monitored output is *scored against*; the second
//! half of this module is what produces that output: [`MonitorSource`] is
//! the one trait a simulation implements to name its monitored quantities
//! (the outbound mirror of [`SteerTarget`](crate::SteerTarget)), and
//! [`GenericMonitorAdapter`] publishes any source's step-boundary payloads
//! through a [`gridsteer_bus::MonitorHub`] — replacing per-simulation
//! publishing code exactly as `GenericSteerAdapter` replaced the
//! per-simulation steering adapters.

use gridsteer_bus::{MonitorHub, MonitorPayload};
use lbm::TwoFluidLbm;
use netsim::SimTime;
use pepc::PepcSim;
use std::marker::PhantomData;

/// One of the paper's reaction-time budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopBudget {
    /// §4.2, CAVE/VR: 10–15 fps ⇒ ≤100 ms per update.
    VrRender,
    /// §4.2, desktop: 3–5 fps ⇒ ≤333 ms per update.
    DesktopRender,
    /// §4.3: parameter change → updated scene, ≤5 s.
    PostProcessing,
    /// §4.4: simulation parameter change → new results, ≤60 s.
    Simulation,
}

impl LoopBudget {
    /// The latency budget.
    pub fn budget(self) -> SimTime {
        match self {
            LoopBudget::VrRender => SimTime::from_millis(100),
            LoopBudget::DesktopRender => SimTime::from_millis(333),
            LoopBudget::PostProcessing => SimTime::from_secs(5),
            LoopBudget::Simulation => SimTime::from_secs(60),
        }
    }

    /// The cross-site divergence bound, where the paper states one
    /// ("a variation of one frame does not influence a discussion process,
    /// while multiple frames difference … might lead to misunderstanding",
    /// §4.2).
    pub fn max_skew(self) -> Option<SimTime> {
        match self {
            LoopBudget::VrRender => Some(SimTime::from_millis(100)),
            LoopBudget::DesktopRender => Some(SimTime::from_millis(333)),
            // §4.3: "the update takes place at the same time at the
            // different participating sites" — within one desktop frame
            LoopBudget::PostProcessing => Some(SimTime::from_millis(333)),
            LoopBudget::Simulation => None,
        }
    }

    /// Human-readable name (appears in experiment output).
    pub fn name(self) -> &'static str {
        match self {
            LoopBudget::VrRender => "vr-render",
            LoopBudget::DesktopRender => "desktop-render",
            LoopBudget::PostProcessing => "post-processing",
            LoopBudget::Simulation => "simulation",
        }
    }
}

/// Records measurements of one feedback loop and checks them against the
/// budget.
#[derive(Debug, Clone)]
pub struct LoopMonitor {
    /// Which loop is measured.
    pub budget: LoopBudget,
    samples: Vec<SimTime>,
    skews: Vec<SimTime>,
}

/// Summary of a monitored loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// The loop.
    pub budget: LoopBudget,
    /// Number of measurements.
    pub count: usize,
    /// Mean latency.
    pub mean: SimTime,
    /// Worst latency.
    pub max: SimTime,
    /// Worst cross-site skew.
    pub max_skew: SimTime,
    /// True if every latency met the budget.
    pub within_budget: bool,
    /// Number of latency samples that busted the budget (0 iff
    /// `within_budget`, except for the empty monitor, which has no
    /// violations yet is not within budget — no evidence is no pass).
    pub violations: u64,
    /// True if every skew met the divergence bound (vacuously true when
    /// the budget has none).
    pub within_skew: bool,
    /// Achieved update rate implied by the mean latency (Hz).
    pub rate_hz: f64,
}

impl LoopMonitor {
    /// Monitor for one budget.
    pub fn new(budget: LoopBudget) -> Self {
        LoopMonitor {
            budget,
            samples: Vec::new(),
            skews: Vec::new(),
        }
    }

    /// Record one loop latency.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency);
    }

    /// Record one cross-site skew observation.
    pub fn record_skew(&mut self, skew: SimTime) {
        self.skews.push(skew);
    }

    /// Number of latency samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// The recorded latency samples, in recording order (so callers can
    /// derive percentiles without keeping a parallel copy).
    pub fn samples(&self) -> &[SimTime] {
        &self.samples
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of recorded latencies that busted the budget.
    pub fn violations(&self) -> u64 {
        let bound = self.budget.budget();
        self.samples.iter().filter(|&&t| t > bound).count() as u64
    }

    /// Summarize.
    pub fn report(&self) -> LoopReport {
        let count = self.samples.len();
        let sum: u64 = self.samples.iter().map(|t| t.as_nanos()).sum();
        let mean = SimTime::from_nanos(if count > 0 { sum / count as u64 } else { 0 });
        let max = self.samples.iter().copied().max().unwrap_or(SimTime::ZERO);
        let max_skew = self.skews.iter().copied().max().unwrap_or(SimTime::ZERO);
        let within_budget = count > 0 && max <= self.budget.budget();
        let within_skew = match self.budget.max_skew() {
            Some(bound) => max_skew <= bound,
            None => true,
        };
        let rate_hz = if mean.as_nanos() > 0 {
            1e9 / mean.as_nanos() as f64
        } else {
            f64::INFINITY
        };
        LoopReport {
            budget: self.budget,
            count,
            mean,
            max,
            max_skew,
            within_budget,
            violations: self.violations(),
            within_skew,
            rate_hz,
        }
    }
}

/// A simulation that emits monitored quantities at step boundaries: the
/// outbound mirror of [`SteerTarget`](crate::SteerTarget), implemented by
/// both paper codes. The payload list is the simulation's *monitor
/// surface* — ordered, deterministic for a given state, and typed with
/// the bus payload kinds so every middleware adapter can carry it.
pub trait MonitorSource {
    /// The monitored payloads at the current state, in a fixed channel
    /// order (scenario digests fold these bytes, so order is contract).
    fn monitor_payloads(&self) -> Vec<MonitorPayload<'static>>;

    /// The same surface through caller-retained buffers: grid channels
    /// are filled into `scratch` in place and returned as *borrowed*
    /// payloads, so a warm publish makes no grid-sized allocation. Must
    /// produce bit-identical channel values to
    /// [`monitor_payloads`](MonitorSource::monitor_payloads) — the
    /// default falls back to the owned surface.
    fn monitor_payloads_into<'a>(
        &self,
        scratch: &'a mut MonitorScratch,
    ) -> Vec<MonitorPayload<'a>> {
        let _ = scratch;
        self.monitor_payloads()
    }

    /// Monotone progress counter (simulation steps taken) — stamped onto
    /// published frames as the step number.
    fn monitor_step(&self) -> u64;
}

/// Reusable grid buffers for the zero-copy monitor path. The adapter
/// owner keeps one of these alive across samples; each publish refills
/// the buffers in place and ships payloads borrowing them, so
/// steady-state monitoring performs no per-sample grid allocation.
#[derive(Debug, Default)]
pub struct MonitorScratch {
    /// Full-lattice grid channel (φ for the LBM).
    field: Vec<f32>,
    /// Mid-plane slice channel.
    slice: Vec<f32>,
}

impl MonitorSource for TwoFluidLbm {
    fn monitor_payloads(&self) -> Vec<MonitorPayload<'static>> {
        let (nx, ny, nz) = self.dims();
        let (mass_a, mass_b) = self.total_mass();
        let phi = self.order_parameter();
        // the mid-plane slice is a view of the full field just computed —
        // never a second pass over the distributions (the standalone
        // `order_parameter_slice` exists for callers that want *only* a
        // plane)
        let mid = nz / 2;
        let slice: Vec<f32> = (0..ny)
            .flat_map(|y| (0..nx).map(move |x| (x, y)))
            .map(|(x, y)| phi.get(x, y, mid))
            .collect();
        vec![
            MonitorPayload::scalar("demix", lbm::demix_of(&phi)),
            MonitorPayload::scalar("mass_a", mass_a),
            MonitorPayload::scalar("mass_b", mass_b),
            MonitorPayload::vec3("momentum", self.total_momentum()),
            MonitorPayload::grid2("phi_mid", nx as u32, ny as u32, slice),
            MonitorPayload::grid3("phi", nx as u32, ny as u32, nz as u32, phi.data().to_vec()),
        ]
    }

    fn monitor_payloads_into<'a>(
        &self,
        scratch: &'a mut MonitorScratch,
    ) -> Vec<MonitorPayload<'a>> {
        let MonitorScratch { field, slice } = scratch;
        let (nx, ny, nz) = self.dims();
        let (mass_a, mass_b) = self.total_mass();
        self.order_parameter_into(field);
        // the mid-plane slice is the contiguous z = nz/2 plane of the
        // row-major field just computed — same values as the owned
        // surface, no second distribution pass
        let plane = nx * ny;
        let mid = nz / 2;
        slice.clear();
        slice.extend_from_slice(&field[mid * plane..(mid + 1) * plane]);
        vec![
            MonitorPayload::scalar("demix", lbm::demix_of_slice(field)),
            MonitorPayload::scalar("mass_a", mass_a),
            MonitorPayload::scalar("mass_b", mass_b),
            MonitorPayload::vec3("momentum", self.total_momentum()),
            MonitorPayload::grid2_borrowed("phi_mid", nx as u32, ny as u32, slice),
            MonitorPayload::grid3_borrowed("phi", nx as u32, ny as u32, nz as u32, field),
        ]
    }

    fn monitor_step(&self) -> u64 {
        self.steps()
    }
}

impl MonitorSource for PepcSim {
    fn monitor_payloads(&self) -> Vec<MonitorPayload<'static>> {
        let mut out = vec![
            MonitorPayload::scalar("kinetic", self.kinetic_energy()),
            MonitorPayload::scalar("potential", self.potential_energy()),
            MonitorPayload::scalar("particles", self.len() as f64),
        ];
        if let Some(c) = self.beam_centroid() {
            out.push(MonitorPayload::vec3("beam_centroid", c));
        }
        out
    }

    fn monitor_step(&self) -> u64 {
        self.step_count()
    }
}

/// One publishing adapter for every [`MonitorSource`] simulation — the
/// data-plane counterpart of [`GenericSteerAdapter`](crate::GenericSteerAdapter):
/// LBM and PEPC publish their monitored quantities through *this*, never
/// through per-simulation one-offs.
#[derive(Debug)]
pub struct GenericMonitorAdapter<T: ?Sized> {
    frames_published: u64,
    _source: PhantomData<fn(&T)>,
}

impl<T: MonitorSource + ?Sized> GenericMonitorAdapter<T> {
    /// A fresh adapter.
    pub fn new() -> Self {
        GenericMonitorAdapter {
            frames_published: 0,
            _source: PhantomData,
        }
    }

    /// Publish the source's step-boundary payloads as one batch — the
    /// delivery mode scenario runs use (one transport envelope per
    /// subscriber chunk). Returns the number of frames published.
    pub fn publish(&mut self, sim: &T, hub: &MonitorHub) -> u64 {
        let n = hub.publish_batch(sim.monitor_step(), sim.monitor_payloads());
        self.frames_published += n;
        n
    }

    /// [`publish`](GenericMonitorAdapter::publish) through caller-retained
    /// scratch buffers — the zero-copy steady state: grid channels are
    /// refilled in place and fanned out as borrowed payloads, so a warm
    /// publish performs no grid-sized allocation anywhere on the path.
    pub fn publish_borrowed(
        &mut self,
        sim: &T,
        hub: &MonitorHub,
        scratch: &mut MonitorScratch,
    ) -> u64 {
        let step = sim.monitor_step();
        let n = hub.publish_batch(step, sim.monitor_payloads_into(scratch));
        self.frames_published += n;
        n
    }

    /// Publish the same payloads one frame at a time — the per-sample
    /// baseline the fan-out bench compares against batched delivery.
    pub fn publish_per_sample(&mut self, sim: &T, hub: &MonitorHub) -> u64 {
        let step = sim.monitor_step();
        let payloads = sim.monitor_payloads();
        let n = payloads.len() as u64;
        for p in payloads {
            hub.publish(step, p);
        }
        self.frames_published += n;
        n
    }

    /// Frames this adapter has published.
    pub fn frames_published(&self) -> u64 {
        self.frames_published
    }
}

impl<T: MonitorSource + ?Sized> Default for GenericMonitorAdapter<T> {
    fn default() -> Self {
        GenericMonitorAdapter::new()
    }
}

/// Monitor adapter for the Lattice-Boltzmann fluid (§2.2).
pub type LbmMonitorAdapter = GenericMonitorAdapter<TwoFluidLbm>;
/// Monitor adapter for PEPC (§3.4).
pub type PepcMonitorAdapter = GenericMonitorAdapter<PepcSim>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_the_paper() {
        assert_eq!(LoopBudget::VrRender.budget(), SimTime::from_millis(100));
        assert_eq!(
            LoopBudget::DesktopRender.budget(),
            SimTime::from_millis(333)
        );
        assert_eq!(LoopBudget::PostProcessing.budget(), SimTime::from_secs(5));
        assert_eq!(LoopBudget::Simulation.budget(), SimTime::from_secs(60));
        assert!(LoopBudget::Simulation.max_skew().is_none());
    }

    #[test]
    fn within_budget_detection() {
        let mut m = LoopMonitor::new(LoopBudget::VrRender);
        for ms in [20, 40, 60] {
            m.record(SimTime::from_millis(ms));
        }
        let r = m.report();
        assert!(r.within_budget);
        assert_eq!(r.max, SimTime::from_millis(60));
        assert_eq!(r.mean, SimTime::from_millis(40));
        assert!((r.rate_hz - 25.0).abs() < 0.1);
    }

    #[test]
    fn budget_violation_detected() {
        let mut m = LoopMonitor::new(LoopBudget::VrRender);
        m.record(SimTime::from_millis(50));
        m.record(SimTime::from_millis(150)); // a remote-render round trip
        assert!(!m.report().within_budget);
    }

    #[test]
    fn skew_bound_checked() {
        let mut m = LoopMonitor::new(LoopBudget::DesktopRender);
        m.record(SimTime::from_millis(100));
        m.record_skew(SimTime::from_millis(400));
        let r = m.report();
        assert!(r.within_budget);
        assert!(!r.within_skew, "multi-frame divergence must fail");
    }

    #[test]
    fn samples_accessor_exposes_recordings_in_order() {
        let mut m = LoopMonitor::new(LoopBudget::VrRender);
        for ms in [30, 10, 20] {
            m.record(SimTime::from_millis(ms));
        }
        assert_eq!(
            m.samples(),
            &[
                SimTime::from_millis(30),
                SimTime::from_millis(10),
                SimTime::from_millis(20)
            ]
        );
    }

    #[test]
    fn empty_monitor_not_within_budget() {
        let m = LoopMonitor::new(LoopBudget::Simulation);
        assert!(m.is_empty());
        let r = m.report();
        assert!(!r.within_budget, "no evidence ⇒ no pass");
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn violations_count_each_busted_sample() {
        let mut m = LoopMonitor::new(LoopBudget::DesktopRender);
        for ms in [100, 400, 200, 500, 600] {
            m.record(SimTime::from_millis(ms));
        }
        assert_eq!(m.violations(), 3, "333ms budget busted thrice");
        let r = m.report();
        assert_eq!(r.violations, 3);
        assert!(!r.within_budget);
    }

    #[test]
    fn lbm_monitor_surface_is_typed_and_ordered() {
        use gridsteer_bus::MonitorKind;
        let sim = TwoFluidLbm::new(lbm::LbmConfig {
            nx: 4,
            ny: 4,
            nz: 4,
            threads: 1,
            ..Default::default()
        });
        let payloads = sim.monitor_payloads();
        let kinds: Vec<MonitorKind> = payloads.iter().map(MonitorPayload::kind).collect();
        assert_eq!(
            kinds,
            vec![
                MonitorKind::Scalar,
                MonitorKind::Scalar,
                MonitorKind::Scalar,
                MonitorKind::Vec3,
                MonitorKind::Grid2,
                MonitorKind::Grid3,
            ]
        );
        match &payloads[4] {
            MonitorPayload::Grid2 { nx, ny, data, .. } => {
                assert_eq!((*nx, *ny), (4, 4));
                assert_eq!(data.len(), 16);
            }
            other => panic!("expected grid2, got {other:?}"),
        }
        // the monitored demix channel is the sim's own metric, bit for bit
        match &payloads[0] {
            MonitorPayload::Scalar { value, .. } => {
                assert_eq!(value.to_bits(), sim.demix_metric().to_bits());
            }
            other => panic!("expected scalar, got {other:?}"),
        }
        // the mid-plane slice must be exactly that plane of the full field
        let full = sim.order_parameter();
        let (_, _, slice) = sim.order_parameter_slice(2);
        let from_full: Vec<f32> = (0..4)
            .flat_map(|y| (0..4).map(move |x| (x, y)))
            .map(|(x, y)| full.get(x, y, 2))
            .collect();
        assert_eq!(slice, from_full);
    }

    #[test]
    fn pepc_monitor_surface_tracks_beam_presence() {
        let mut sim = PepcSim::new(pepc::PepcConfig {
            n_target: 30,
            ranks: 1,
            ..pepc::PepcConfig::small()
        });
        let before = sim.monitor_payloads();
        assert_eq!(before.len(), 3, "no beam ⇒ no centroid channel");
        sim.inject_beam(5, 0.1);
        let after = sim.monitor_payloads();
        assert_eq!(after.len(), 4);
        assert!(matches!(after[3], MonitorPayload::Vec3 { .. }));
        // energies are consistent with the sim's own accounting
        match (&after[0], &after[1]) {
            (
                MonitorPayload::Scalar { value: kin, .. },
                MonitorPayload::Scalar { value: pot, .. },
            ) => {
                assert_eq!(kin + pot, sim.total_energy());
            }
            other => panic!("expected scalars, got {other:?}"),
        }
    }

    #[test]
    fn borrowed_and_owned_monitor_surfaces_are_bit_identical() {
        let mut sim = TwoFluidLbm::new(lbm::LbmConfig {
            nx: 6,
            ny: 5,
            nz: 4,
            threads: 1,
            ..Default::default()
        });
        sim.step_n(3);
        let owned = sim.monitor_payloads();
        let mut scratch = MonitorScratch::default();
        let borrowed = sim.monitor_payloads_into(&mut scratch);
        assert_eq!(owned.len(), borrowed.len());
        // canonical wire bytes are the bit-identity witness (PartialEq on
        // floats would let -0.0/NaN drift pass)
        for (o, b) in owned.iter().zip(&borrowed) {
            let wire = |p: &MonitorPayload| {
                gridsteer_bus::MonitorFrame {
                    seq: 1,
                    step: 3,
                    payload: p.clone(),
                }
                .try_to_bytes()
                .unwrap()
            };
            assert_eq!(wire(o), wire(b), "channel {}", o.name());
        }
        // the borrowed grids really are borrowed — no hidden clone
        assert!(matches!(
            &borrowed[5],
            MonitorPayload::Grid3 {
                data: std::borrow::Cow::Borrowed(_),
                ..
            }
        ));
    }

    #[test]
    fn generic_adapter_publishes_borrowed_and_owned_identically() {
        use gridsteer_bus::{MonitorCaps, MonitorHub, Transport};
        let mut sim = TwoFluidLbm::new(lbm::LbmConfig {
            nx: 4,
            ny: 4,
            nz: 4,
            threads: 1,
            ..Default::default()
        });
        sim.step_n(2);
        let run = |borrowed: bool| {
            let hub = MonitorHub::new();
            hub.attach_endpoint(
                "v",
                Transport::Unicore.attach_monitor("v"),
                &MonitorCaps::full("viewer", 64),
            );
            let mut adapter = LbmMonitorAdapter::new();
            let n = if borrowed {
                let mut scratch = MonitorScratch::default();
                adapter.publish_borrowed(&sim, &hub, &mut scratch)
            } else {
                adapter.publish(&sim, &hub)
            };
            assert_eq!(n, 6);
            hub.recv("v")
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn generic_adapter_publishes_batched_and_per_sample_identically() {
        use gridsteer_bus::{MonitorCaps, MonitorHub, Transport};
        let sim = TwoFluidLbm::new(lbm::LbmConfig {
            nx: 4,
            ny: 4,
            nz: 4,
            threads: 1,
            ..Default::default()
        });
        let run = |batched: bool| {
            let hub = MonitorHub::new();
            hub.attach_endpoint(
                "v",
                Transport::Visit.attach_monitor("v"),
                &MonitorCaps::full("viewer", 64),
            );
            let mut adapter = LbmMonitorAdapter::new();
            let n = if batched {
                adapter.publish(&sim, &hub)
            } else {
                adapter.publish_per_sample(&sim, &hub)
            };
            assert_eq!(n, 6);
            assert_eq!(adapter.frames_published(), 6);
            hub.recv("v")
        };
        assert_eq!(run(true), run(false));
    }
}
