//! # steer-core — the collaborative steering environment
//!
//! The paper's headline contribution is not any single subsystem but their
//! combination: "geographically distributed teams can view simultaneously
//! a visualization of a running simulation and can steer the application"
//! (§1). This crate is that combination layer:
//!
//! * [`params`] — the typed steerable-parameter registry with bounds and
//!   history, plus [`ogsa::Steerable`] adapters for the two paper codes
//!   (the LB fluid's miscibility, §2.2; PEPC's beam/laser/damping, §3.4).
//! * [`session`] — [`session::SteeringSession`]: participants with roles
//!   (master / steerer / viewer), master-token passing (the vbroker
//!   semantics lifted to session level), sample fan-out accounting, and an
//!   event log.
//! * [`monitor`] — the feedback-loop budgets of §4.2–4.4 (VR rendering,
//!   desktop rendering, post-processing, simulation) as checkable
//!   [`monitor::LoopBudget`]s with measurement recording and violation
//!   counts, plus the outbound data plane's application side: the
//!   [`monitor::MonitorSource`] surface both paper codes implement and
//!   the [`monitor::GenericMonitorAdapter`] that publishes it through a
//!   [`gridsteer_bus::MonitorHub`].
//! * [`server`] — [`server::CollabServer`]: a real multi-threaded TCP
//!   steering server speaking a small framed protocol, so multiple client
//!   processes on loopback genuinely steer one simulation concurrently.
//! * [`migrate`] — mid-session migration of the computation between sites
//!   (§2.4: "migrate both computation and visualization within a session
//!   without any disturbance or intervention on the part of the
//!   participating clients"), built on LB checkpoints and the netsim cost
//!   model.

pub mod migrate;
pub mod monitor;
pub mod params;
pub mod server;
pub mod session;

pub use gridsteer_bus::{
    MonitorCaps, MonitorEndpoint, MonitorFrame, MonitorHub, MonitorKind, MonitorPayload,
    MonitorStats,
};
pub use migrate::{MigrationReport, Migrator};
pub use monitor::{
    GenericMonitorAdapter, LbmMonitorAdapter, LoopBudget, LoopMonitor, LoopReport, MonitorScratch,
    MonitorSource, PepcMonitorAdapter,
};
pub use params::{
    BoundsPolicy, GenericSteerAdapter, LbmSteerAdapter, ParamKind, ParamRegistry, ParamSpec,
    ParamValue, PepcSteerAdapter, SharedRegistry, SteerCommand, SteerTarget,
};
pub use server::{ClientHandle, CollabServer};
pub use session::{Participant, Role, SessionEvent, SteeringSession};
