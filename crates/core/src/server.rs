//! The multi-client TCP steering server.
//!
//! This is the "steering client … integrated into the collaborative
//! environment" path made concrete: one process owns the
//! [`SteeringSession`]; any number of client processes connect over TCP
//! (loopback in the examples, but the protocol is location-transparent),
//! join with a name, and steer subject to the master-token rules. The
//! wire format is a tiny hand-rolled binary protocol over the
//! length-prefixed [`visit::TcpLink`] framing. Values travel in
//! the bus's tagged typed encoding ([`ParamValue::encode_bytes`]), and
//! `OP_BATCH` carries a sequence-numbered command batch applied
//! atomically under one session lock (stale sequence numbers are
//! refused), so TCP clients speak the same typed, batched surface as the
//! in-process `gridsteer_bus` endpoints.

use crate::params::ParamValue;
use crate::session::SteeringSession;
use bytes::{Buf, BufMut, BytesMut};
use gridsteer_bus::SteerCommand;
use parking_lot::Mutex;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use visit::link::{FrameLink, LinkError, TcpLink};

/// Protocol ops.
const OP_HELLO: u8 = 4;
const OP_SET: u8 = 1;
const OP_GET: u8 = 2;
const OP_PASS: u8 = 3;
const OP_OK: u8 = 6;
const OP_ERR: u8 = 7;
const OP_VALUE: u8 = 8;
const OP_WELCOME: u8 = 9;
const OP_BATCH: u8 = 10;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Option<String> {
    if buf.len() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if buf.len() < len {
        return None;
    }
    let s = String::from_utf8(buf[..len].to_vec()).ok()?;
    buf.advance(len);
    Some(s)
}

/// The server: owns the listener and the per-client threads.
pub struct CollabServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    session: Arc<Mutex<SteeringSession>>,
}

impl CollabServer {
    /// Start serving `session` on an ephemeral loopback port.
    pub fn start(session: Arc<Mutex<SteeringSession>>) -> std::io::Result<CollabServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_session = session.clone();
        // detlint::allow(R3, "TCP accept loop: blocking io concurrency, never compute — results are serialized through the session lock")
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let sess = accept_session.clone();
                        let stop = accept_stop.clone();
                        // detlint::allow(R3, "one io worker per client socket; all state mutation goes through the shared SteeringSession")
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_client(stream, sess, stop);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(CollabServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            session,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared session (e.g. for the simulation loop to broadcast
    /// samples and read steered parameters).
    pub fn session(&self) -> Arc<Mutex<SteeringSession>> {
        self.session.clone()
    }

    /// Stop accepting and wind down client threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CollabServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One client connection's server-side loop.
fn serve_client(
    stream: TcpStream,
    session: Arc<Mutex<SteeringSession>>,
    stop: Arc<AtomicBool>,
) -> Result<(), LinkError> {
    let mut link = TcpLink::new(stream).map_err(|e| LinkError::Io(e.to_string()))?;
    let mut my_name: Option<String> = None;
    // highest batch sequence number seen on this connection
    let mut last_batch_seq: u64 = 0;
    let result = loop {
        if stop.load(Ordering::Relaxed) {
            break Ok(());
        }
        let frame = match link.recv_timeout(Duration::from_millis(100)) {
            Ok(f) => f,
            Err(LinkError::Timeout) => continue,
            Err(e) => break Err(e),
        };
        let mut reply = BytesMut::new();
        let mut body: &[u8] = &frame[1..];
        match frame.first().copied() {
            Some(OP_HELLO) => {
                let Some(base) = get_str(&mut body) else {
                    break Err(LinkError::Io("bad hello".into()));
                };
                let mut s = session.lock();
                // names must be unique: disambiguate with a counter
                let mut name = base.clone();
                let mut k = 1;
                while s.index_of(&name).is_some() {
                    name = format!("{base}-{k}");
                    k += 1;
                }
                let idx = s.join(&name);
                let is_master = s.master() == Some(idx);
                my_name = Some(name.clone());
                reply.put_u8(OP_WELCOME);
                reply.put_u8(u8::from(is_master));
                put_str(&mut reply, &name);
            }
            Some(OP_SET) => {
                let (Some(name), Some(value)) =
                    (get_str(&mut body), ParamValue::decode_bytes(&mut body))
                else {
                    break Err(LinkError::Io("bad set".into()));
                };
                if !body.is_empty() {
                    break Err(LinkError::Io("bad set trailer".into()));
                }
                let who = my_name.clone().unwrap_or_default();
                let mut s = session.lock();
                let r = match s.index_of(&who) {
                    Some(idx) => s.steer_value(idx, &name, &value).map(|_| ()),
                    None => Err("not joined".into()),
                };
                match r {
                    Ok(()) => reply.put_u8(OP_OK),
                    Err(e) => {
                        reply.put_u8(OP_ERR);
                        put_str(&mut reply, &e);
                    }
                }
            }
            Some(OP_BATCH) => {
                // u64 client sequence + u16 count + (name, value)*
                if body.len() < 10 {
                    break Err(LinkError::Io("bad batch header".into()));
                }
                let seq = body.get_u64_le();
                let count = body.get_u16_le() as usize;
                let mut commands = Vec::with_capacity(count);
                let mut ok = true;
                for _ in 0..count {
                    match SteerCommand::decode_bytes(&mut body) {
                        Some(cmd) => commands.push(cmd),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok || !body.is_empty() {
                    break Err(LinkError::Io("bad batch".into()));
                }
                if count == 0 {
                    // match the bus's EmptyBatch semantics
                    reply.put_u8(OP_ERR);
                    put_str(&mut reply, "empty batch");
                } else if seq <= last_batch_seq {
                    reply.put_u8(OP_ERR);
                    put_str(&mut reply, &format!("stale batch seq {seq}"));
                } else {
                    last_batch_seq = seq;
                    let who = my_name.clone().unwrap_or_default();
                    let mut s = session.lock();
                    let r = match s.index_of(&who) {
                        Some(idx) => s.steer_batch(idx, &commands),
                        None => Err("not joined".into()),
                    };
                    match r {
                        Ok(n) => {
                            reply.put_u8(OP_OK);
                            reply.put_u16_le(n as u16);
                        }
                        Err(e) => {
                            reply.put_u8(OP_ERR);
                            put_str(&mut reply, &e);
                        }
                    }
                }
            }
            Some(OP_GET) => {
                let Some(name) = get_str(&mut body) else {
                    break Err(LinkError::Io("bad get".into()));
                };
                let s = session.lock();
                match s.params.get_value(&name) {
                    Some(v) => {
                        reply.put_u8(OP_VALUE);
                        v.encode_bytes(&mut reply);
                    }
                    None => {
                        reply.put_u8(OP_ERR);
                        put_str(&mut reply, &format!("unknown parameter: {name}"));
                    }
                }
            }
            Some(OP_PASS) => {
                let Some(target) = get_str(&mut body) else {
                    break Err(LinkError::Io("bad pass".into()));
                };
                let who = my_name.clone().unwrap_or_default();
                let mut s = session.lock();
                let ok = match (s.index_of(&who), s.index_of(&target)) {
                    (Some(from), Some(to)) => s.pass_master(from, to),
                    _ => false,
                };
                if ok {
                    reply.put_u8(OP_OK);
                } else {
                    reply.put_u8(OP_ERR);
                    put_str(&mut reply, "pass refused");
                }
            }
            _ => break Err(LinkError::Io("unknown op".into())),
        }
        if link.send(&reply).is_err() {
            break Ok(());
        }
    };
    // departure: remove from the session (auto-promotes a new master)
    if let Some(name) = my_name {
        let mut s = session.lock();
        if let Some(idx) = s.index_of(&name) {
            s.leave(idx);
        }
    }
    result
}

/// Client-side handle speaking the protocol.
pub struct ClientHandle {
    link: TcpLink,
    /// Server-assigned unique name.
    pub name: String,
    /// True if this client held the master token at join time.
    pub joined_as_master: bool,
    /// Monotone sequence number stamped on outgoing batches.
    next_batch_seq: u64,
}

impl ClientHandle {
    /// Connect and join with the requested name.
    pub fn connect(addr: &str, name: &str) -> Result<ClientHandle, LinkError> {
        let mut link = TcpLink::connect(addr, Duration::from_secs(2))?;
        let mut req = BytesMut::new();
        req.put_u8(OP_HELLO);
        put_str(&mut req, name);
        link.send(&req)?;
        let reply = link.recv_timeout(Duration::from_secs(2))?;
        let mut body: &[u8] = &reply;
        if body.is_empty() || body.get_u8() != OP_WELCOME {
            return Err(LinkError::Io("bad welcome".into()));
        }
        let is_master = body.get_u8() != 0;
        let assigned = get_str(&mut body).ok_or(LinkError::Io("bad welcome name".into()))?;
        Ok(ClientHandle {
            link,
            name: assigned,
            joined_as_master: is_master,
            next_batch_seq: 0,
        })
    }

    fn roundtrip(&mut self, req: BytesMut) -> Result<Vec<u8>, LinkError> {
        self.link.send(&req)?;
        self.link.recv_timeout(Duration::from_secs(2))
    }

    /// Steer a parameter with a typed value. `Err` carries the server's
    /// refusal reason.
    pub fn set_value(&mut self, param: &str, value: &ParamValue) -> Result<(), String> {
        let mut req = BytesMut::new();
        req.put_u8(OP_SET);
        put_str(&mut req, param);
        value.encode_bytes(&mut req);
        let reply = self.roundtrip(req).map_err(|e| format!("{e:?}"))?;
        let mut body: &[u8] = &reply;
        match body.get_u8() {
            OP_OK => Ok(()),
            OP_ERR => Err(get_str(&mut body).unwrap_or_default()),
            _ => Err("protocol error".into()),
        }
    }

    /// Steer an f64 parameter (shim over [`ClientHandle::set_value`]).
    pub fn set(&mut self, param: &str, value: f64) -> Result<(), String> {
        self.set_value(param, &ParamValue::F64(value))
    }

    /// Send a sequence-numbered command batch, applied atomically by the
    /// server (all-or-nothing). Returns the number of commands applied.
    pub fn set_batch(&mut self, commands: &[SteerCommand]) -> Result<usize, String> {
        if commands.is_empty() {
            return Err("empty batch".into());
        }
        if commands.len() > u16::MAX as usize {
            return Err(format!(
                "batch of {} exceeds wire limit 65535",
                commands.len()
            ));
        }
        self.next_batch_seq += 1;
        let mut req = BytesMut::new();
        req.put_u8(OP_BATCH);
        req.put_u64_le(self.next_batch_seq);
        req.put_u16_le(commands.len() as u16);
        for cmd in commands {
            cmd.encode_bytes(&mut req);
        }
        let reply = self.roundtrip(req).map_err(|e| format!("{e:?}"))?;
        let mut body: &[u8] = &reply;
        match body.get_u8() {
            OP_OK if body.len() == 2 => Ok(body.get_u16_le() as usize),
            OP_ERR => Err(get_str(&mut body).unwrap_or_default()),
            _ => Err("protocol error".into()),
        }
    }

    /// Read a parameter's typed value.
    pub fn get_value(&mut self, param: &str) -> Result<ParamValue, String> {
        let mut req = BytesMut::new();
        req.put_u8(OP_GET);
        put_str(&mut req, param);
        let reply = self.roundtrip(req).map_err(|e| format!("{e:?}"))?;
        let mut body: &[u8] = &reply;
        match body.get_u8() {
            OP_VALUE => ParamValue::decode_bytes(&mut body).ok_or("bad value".into()),
            OP_ERR => Err(get_str(&mut body).unwrap_or_default()),
            _ => Err("protocol error".into()),
        }
    }

    /// Read a parameter as f64 (shim; errors on non-numeric values).
    pub fn get(&mut self, param: &str) -> Result<f64, String> {
        self.get_value(param)?
            .as_f64()
            .ok_or_else(|| format!("{param}: non-numeric value"))
    }

    /// Pass the master token to another named client.
    pub fn pass_master(&mut self, to: &str) -> Result<(), String> {
        let mut req = BytesMut::new();
        req.put_u8(OP_PASS);
        put_str(&mut req, to);
        let reply = self.roundtrip(req).map_err(|e| format!("{e:?}"))?;
        let mut body: &[u8] = &reply;
        match body.get_u8() {
            OP_OK => Ok(()),
            OP_ERR => Err(get_str(&mut body).unwrap_or_default()),
            _ => Err("protocol error".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ParamRegistry, ParamSpec};

    fn server() -> CollabServer {
        let mut reg = ParamRegistry::new();
        reg.declare(ParamSpec::f64("miscibility", 0.0, 1.0, 1.0));
        reg.declare(ParamSpec::text("tracer", "none"));
        CollabServer::start(Arc::new(Mutex::new(SteeringSession::new(reg)))).unwrap()
    }

    #[test]
    fn typed_values_and_batches_over_tcp() {
        let srv = server();
        let addr = srv.addr().to_string();
        let mut a = ClientHandle::connect(&addr, "alice").unwrap();
        // typed single set: a string parameter over the wire
        a.set_value("tracer", &ParamValue::Str("dye".into()))
            .unwrap();
        assert_eq!(
            a.get_value("tracer").unwrap(),
            ParamValue::Str("dye".into())
        );
        assert!(a.get("tracer").is_err(), "no f64 view of a string");
        // an atomic batch: second command out of bounds poisons the first
        let bad = a.set_batch(&[
            SteerCommand::f64("miscibility", 0.25),
            SteerCommand::f64("miscibility", 9.0),
        ]);
        assert!(bad.unwrap_err().contains("outside"));
        assert_eq!(a.get("miscibility").unwrap(), 1.0, "nothing applied");
        // a clean batch applies whole
        let n = a
            .set_batch(&[
                SteerCommand::f64("miscibility", 0.25),
                SteerCommand::new("tracer", ParamValue::Str("smoke".into())),
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(a.get("miscibility").unwrap(), 0.25);
        // a batch beyond the u16 wire count is refused client-side, and
        // the connection survives
        let huge: Vec<SteerCommand> = (0..=u16::MAX as usize + 1)
            .map(|_| SteerCommand::f64("miscibility", 0.5))
            .collect();
        assert!(a.set_batch(&huge).unwrap_err().contains("wire limit"));
        assert_eq!(a.get("miscibility").unwrap(), 0.25);
        // empty batches are refused like the bus's EmptyBatch
        assert_eq!(a.set_batch(&[]).unwrap_err(), "empty batch");
    }

    #[test]
    fn two_clients_master_rules_enforced_over_tcp() {
        let srv = server();
        let addr = srv.addr().to_string();
        let mut a = ClientHandle::connect(&addr, "brooke").unwrap();
        let mut b = ClientHandle::connect(&addr, "woessner").unwrap();
        assert!(a.joined_as_master);
        assert!(!b.joined_as_master);
        // master steers, viewer refused
        a.set("miscibility", 0.3).unwrap();
        assert_eq!(b.set("miscibility", 0.9).unwrap_err(), "not the master");
        assert_eq!(b.get("miscibility").unwrap(), 0.3);
        // hand over and steer from the new master
        a.pass_master(&b.name).unwrap();
        b.set("miscibility", 0.7).unwrap();
        assert_eq!(a.get("miscibility").unwrap(), 0.7);
        assert!(a.set("miscibility", 0.1).is_err());
    }

    #[test]
    fn duplicate_names_get_disambiguated() {
        let srv = server();
        let addr = srv.addr().to_string();
        let a = ClientHandle::connect(&addr, "node").unwrap();
        let b = ClientHandle::connect(&addr, "node").unwrap();
        assert_eq!(a.name, "node");
        assert_eq!(b.name, "node-1");
    }

    #[test]
    fn unknown_parameter_and_bounds_errors_propagate() {
        let srv = server();
        let addr = srv.addr().to_string();
        let mut a = ClientHandle::connect(&addr, "x").unwrap();
        assert!(a.get("ghost").is_err());
        assert!(a.set("miscibility", 4.0).unwrap_err().contains("outside"));
    }

    #[test]
    fn master_disconnect_promotes_survivor() {
        let srv = server();
        let addr = srv.addr().to_string();
        let a = ClientHandle::connect(&addr, "first").unwrap();
        let mut b = ClientHandle::connect(&addr, "second").unwrap();
        assert!(b.set("miscibility", 0.5).is_err());
        drop(a); // master walks away
                 // wait for the server to notice the disconnect
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            if b.set("miscibility", 0.5).is_ok() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "survivor never promoted"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn many_concurrent_clients() {
        let srv = server();
        let addr = srv.addr().to_string();
        let _master = ClientHandle::connect(&addr, "master").unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = ClientHandle::connect(&addr, &format!("viewer{i}")).unwrap();
                // all viewers read; none may steer
                assert!(c.get("miscibility").is_ok());
                assert!(c.set("miscibility", 0.1).is_err());
                c // keep the connection alive past the assertions
            }));
        }
        let clients: Vec<ClientHandle> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(srv.session().lock().len(), 9);
        drop(clients);
    }
}
