//! Mid-session migration of the computation.
//!
//! §2.4: "RealityGrid is developing the ability to migrate both
//! computation and visualization within a session without any disturbance
//! or intervention on the part of the participating clients." The
//! [`Migrator`] performs that move for the LB simulation: checkpoint at
//! the source site, ship the checkpoint over the inter-site link, resume
//! at the destination — and report the *frame gap* the participating
//! clients would observe (experiment EM1 checks it against the §4.4
//! budget).
//!
//! The transfer artifact is a [`gridsteer_ckpt::Snapshot`] — the same
//! versioned, endianness-explicit format crash recovery uses — so the
//! moved byte count is the *actual* encoded size (magic, version,
//! section framing and all), not an estimate, and the destination
//! restores through the same validated decode path as a crash restore.

use gridsteer_ckpt::Snapshot;
use lbm::TwoFluidLbm;
use netsim::{NetModel, SimTime, SiteId};

/// Outcome of one migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// Source site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Checkpoint size moved.
    pub checkpoint_bytes: usize,
    /// Virtual time the clients saw no new samples (checkpoint transfer +
    /// restart overhead).
    pub frame_gap: SimTime,
    /// True if the resumed run is bit-identical to an unmigrated one
    /// (verified by the caller stepping both; recorded here when checked).
    pub verified_identical: bool,
}

/// Migrates running LB computations between sites of a network model.
pub struct Migrator<'a> {
    /// The inter-site network.
    pub net: &'a NetModel,
    /// Fixed restart overhead at the destination (job start, memory
    /// population — the UNICORE re-incarnation cost).
    pub restart_overhead: SimTime,
}

impl<'a> Migrator<'a> {
    /// A migrator over `net` with a 2-second restart overhead (a batch
    /// job re-incarnation on an already-reserved node).
    pub fn new(net: &'a NetModel) -> Migrator<'a> {
        Migrator {
            net,
            restart_overhead: SimTime::from_secs(2),
        }
    }

    /// Move `sim` from `from` to `to`. Returns the resumed simulation and
    /// the report. The session's clients keep their connections; only the
    /// sample source pauses for `frame_gap`.
    pub fn migrate(
        &self,
        sim: TwoFluidLbm,
        from: SiteId,
        to: SiteId,
    ) -> (TwoFluidLbm, MigrationReport) {
        let mut snap = Snapshot::new(0, 0);
        sim.save_sections(&mut snap);
        let blob = snap.encode();
        let bytes = blob.len();
        let mut link = self.net.link(from, to);
        let transfer_done = link
            .deliver(SimTime::ZERO, bytes)
            .unwrap_or_else(|| link.nominal_arrival(SimTime::ZERO, bytes));
        let frame_gap = transfer_done + self.restart_overhead;
        let shipped = Snapshot::decode(&blob).expect("self-encoded snapshot must decode");
        let resumed =
            TwoFluidLbm::from_snapshot(&shipped).expect("self-saved sections must restore");
        (
            resumed,
            MigrationReport {
                from,
                to,
                checkpoint_bytes: bytes,
                frame_gap,
                verified_identical: false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm::LbmConfig;

    #[test]
    fn migration_preserves_physics_exactly() {
        let (net, ids) = NetModel::sc2003();
        let migrator = Migrator::new(&net);
        let mut reference = TwoFluidLbm::new(LbmConfig::small());
        reference.set_miscibility(0.2);
        reference.step_n(10);
        // identical twin gets migrated london → manchester mid-run
        let mut travelling = TwoFluidLbm::new(LbmConfig::small());
        travelling.set_miscibility(0.2);
        travelling.step_n(10);
        let (mut travelling, mut report) =
            migrator.migrate(travelling, ids["london"], ids["manchester"]);
        reference.step_n(10);
        travelling.step_n(10);
        report.verified_identical =
            reference.order_parameter().data() == travelling.order_parameter().data();
        assert!(report.verified_identical, "migration changed the physics");
        assert_eq!(travelling.steps(), 20);
    }

    #[test]
    fn frame_gap_scales_with_checkpoint_and_distance() {
        let (net, ids) = NetModel::sc2003();
        let migrator = Migrator::new(&net);
        let small = TwoFluidLbm::new(LbmConfig::small());
        let big = TwoFluidLbm::new(LbmConfig {
            nx: 24,
            ny: 24,
            nz: 24,
            ..LbmConfig::small()
        });
        let (_, near_small) = migrator.migrate(small, ids["manchester"], ids["london"]);
        let (_, far_big) = migrator.migrate(big, ids["manchester"], ids["phoenix"]);
        assert!(far_big.checkpoint_bytes > near_small.checkpoint_bytes);
        assert!(far_big.frame_gap > near_small.frame_gap);
    }

    #[test]
    fn frame_gap_within_simulation_budget_for_demo_scale() {
        // the §4.4 claim that migration is invisible requires the gap to
        // stay inside the 60 s simulation-loop tolerance
        let (net, ids) = NetModel::sc2003();
        let migrator = Migrator::new(&net);
        let sim = TwoFluidLbm::new(LbmConfig::default()); // 32³
        let (_, report) = migrator.migrate(sim, ids["london"], ids["manchester"]);
        assert!(
            report.frame_gap < SimTime::from_secs(60),
            "gap {} busts the §4.4 budget",
            report.frame_gap
        );
    }

    #[test]
    fn steering_parameter_survives_migration() {
        let (net, ids) = NetModel::sc2003();
        let migrator = Migrator::new(&net);
        let mut sim = TwoFluidLbm::new(LbmConfig::small());
        sim.set_miscibility(0.37);
        let (resumed, _) = migrator.migrate(sim, ids["juelich"], ids["stuttgart"]);
        assert_eq!(resumed.miscibility(), 0.37);
    }
}
