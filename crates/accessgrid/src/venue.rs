//! Venue server, venues and participants.
//!
//! §3.4 sorts Access Grid sites into "Constellation, Satellite and
//! Observer Sites" with different capabilities; §2.4 distinguishes
//! *passive* collaboration (watching the multicast visualization) from
//! *active* participation (sharing control). [`Role`] captures that
//! spectrum; [`Venue`] tracks membership, media groups and the shared
//! applications of the HLRS venue server (§4.6).

use netsim::{Bridge, Link, MulticastGroup, NetModel, SiteId};
use std::collections::BTreeMap;

/// Identifies a participant within a venue server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParticipantId(pub u64);

/// What a site may do in the session (§2.4's passive/active modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Watches streams only.
    Observer,
    /// Watches and speaks (a normal AG node).
    Participant,
    /// May steer shared applications (the "full access" granted to the
    /// Phoenix node in §3.4).
    Steerer,
}

/// A participant record.
#[derive(Debug, Clone)]
pub struct Participant {
    /// Display name.
    pub name: String,
    /// Home site in the network model.
    pub site: SiteId,
    /// Capability level.
    pub role: Role,
    /// True if reached through a unicast bridge.
    pub bridged: bool,
}

/// A shared application registered in a room (§4.6: the venue server
/// "stores additional information on a per room basis which allows the
/// start-up of shared applications").
#[derive(Debug, Clone, PartialEq)]
pub struct SharedApp {
    /// Application name (e.g. `"covise"`).
    pub name: String,
    /// Launch descriptor (opaque to the venue).
    pub descriptor: String,
    /// Participants that have joined the application session.
    pub members: Vec<ParticipantId>,
}

/// One virtual venue (room).
pub struct Venue {
    /// Room name.
    pub name: String,
    participants: BTreeMap<ParticipantId, Participant>,
    /// Media distribution group for this room.
    pub group: MulticastGroup,
    apps: BTreeMap<String, SharedApp>,
}

impl Venue {
    fn new(name: &str) -> Venue {
        Venue {
            name: name.to_string(),
            participants: BTreeMap::new(),
            group: MulticastGroup::new(),
            apps: BTreeMap::new(),
        }
    }

    /// Number of participants present.
    pub fn occupancy(&self) -> usize {
        self.participants.len()
    }

    /// Participant lookup.
    pub fn participant(&self, id: ParticipantId) -> Option<&Participant> {
        self.participants.get(&id)
    }

    /// Register a shared application for this room.
    pub fn register_app(&mut self, name: &str, descriptor: &str) {
        self.apps.insert(
            name.to_string(),
            SharedApp {
                name: name.to_string(),
                descriptor: descriptor.to_string(),
                members: Vec::new(),
            },
        );
    }

    /// Join a participant to a shared application session. Only
    /// `Steerer`s and `Participant`s may join; observers watch streams.
    pub fn join_app(&mut self, app: &str, id: ParticipantId) -> bool {
        let Some(p) = self.participants.get(&id) else {
            return false;
        };
        if p.role == Role::Observer {
            return false;
        }
        match self.apps.get_mut(app) {
            Some(a) => {
                if !a.members.contains(&id) {
                    a.members.push(id);
                }
                true
            }
            None => false,
        }
    }

    /// Shared application lookup.
    pub fn app(&self, name: &str) -> Option<&SharedApp> {
        self.apps.get(name)
    }
}

/// The venue server: rooms + participant registry over a network model.
pub struct VenueServer {
    /// Server's own site (bridge host for NAT'd members).
    pub site: SiteId,
    venues: BTreeMap<String, Venue>,
    next_id: u64,
}

impl VenueServer {
    /// A venue server homed at `site`.
    pub fn new(site: SiteId) -> VenueServer {
        VenueServer {
            site,
            venues: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Create (or get) a room.
    pub fn create_venue(&mut self, name: &str) -> &mut Venue {
        self.venues
            .entry(name.to_string())
            .or_insert_with(|| Venue::new(name))
    }

    /// Room accessor.
    pub fn venue(&self, name: &str) -> Option<&Venue> {
        self.venues.get(name)
    }

    /// Mutable room accessor.
    pub fn venue_mut(&mut self, name: &str) -> Option<&mut Venue> {
        self.venues.get_mut(name)
    }

    /// Enter a room with native multicast connectivity.
    pub fn enter(
        &mut self,
        venue: &str,
        name: &str,
        site: SiteId,
        role: Role,
        model: &NetModel,
    ) -> ParticipantId {
        let id = ParticipantId(self.next_id);
        self.next_id += 1;
        let server_site = self.site;
        let v = self.create_venue(venue);
        v.participants.insert(
            id,
            Participant {
                name: name.to_string(),
                site,
                role,
                bridged: false,
            },
        );
        v.group.join_native(site, model.link(server_site, site));
        id
    }

    /// Enter a room through a unicast bridge (NAT'd site, §4.6).
    pub fn enter_bridged(
        &mut self,
        venue: &str,
        name: &str,
        site: SiteId,
        role: Role,
        model: &NetModel,
    ) -> ParticipantId {
        let id = ParticipantId(self.next_id);
        self.next_id += 1;
        let server_site = self.site;
        let uplink: Link = model.link(server_site, server_site);
        let downlink: Link = model.link(server_site, site);
        let v = self.create_venue(venue);
        v.participants.insert(
            id,
            Participant {
                name: name.to_string(),
                site,
                role,
                bridged: true,
            },
        );
        v.group.join_bridged(site, Bridge::new(uplink, downlink));
        id
    }

    /// Leave a room.
    pub fn leave(&mut self, venue: &str, id: ParticipantId) -> bool {
        let Some(v) = self.venues.get_mut(venue) else {
            return false;
        };
        match v.participants.remove(&id) {
            Some(p) => {
                v.group.leave(p.site);
                for app in v.apps.values_mut() {
                    app.members.retain(|&m| m != id);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (NetModel, Vec<SiteId>) {
        let (m, ids) = NetModel::sc2003();
        let sites = ["manchester", "juelich", "stuttgart", "phoenix"]
            .iter()
            .map(|n| ids[*n])
            .collect();
        (m, sites)
    }

    #[test]
    fn enter_and_occupancy() {
        let (m, s) = model();
        let mut vs = VenueServer::new(s[0]);
        let a = vs.enter("sc03-showcase", "manchester-node", s[0], Role::Steerer, &m);
        let _b = vs.enter("sc03-showcase", "juelich-node", s[1], Role::Participant, &m);
        let v = vs.venue("sc03-showcase").unwrap();
        assert_eq!(v.occupancy(), 2);
        assert_eq!(v.participant(a).unwrap().role, Role::Steerer);
    }

    #[test]
    fn bridged_participant_flagged_and_in_group() {
        let (m, s) = model();
        let mut vs = VenueServer::new(s[0]);
        let id = vs.enter_bridged("room", "hlrs-cave", s[2], Role::Participant, &m);
        let v = vs.venue("room").unwrap();
        assert!(v.participant(id).unwrap().bridged);
        assert_eq!(v.group.len(), 1);
    }

    #[test]
    fn shared_app_lifecycle() {
        let (m, s) = model();
        let mut vs = VenueServer::new(s[0]);
        let steerer = vs.enter("room", "a", s[0], Role::Steerer, &m);
        let observer = vs.enter("room", "b", s[3], Role::Observer, &m);
        let v = vs.venue_mut("room").unwrap();
        v.register_app("covise", "pipeline=building_airflow");
        assert!(v.join_app("covise", steerer));
        assert!(
            !v.join_app("covise", observer),
            "observers cannot join apps"
        );
        assert!(!v.join_app("nonexistent", steerer));
        assert_eq!(v.app("covise").unwrap().members.len(), 1);
    }

    #[test]
    fn join_app_idempotent() {
        let (m, s) = model();
        let mut vs = VenueServer::new(s[0]);
        let p = vs.enter("room", "a", s[0], Role::Participant, &m);
        let v = vs.venue_mut("room").unwrap();
        v.register_app("covise", "");
        v.join_app("covise", p);
        v.join_app("covise", p);
        assert_eq!(v.app("covise").unwrap().members.len(), 1);
    }

    #[test]
    fn leave_cleans_up_everything() {
        let (m, s) = model();
        let mut vs = VenueServer::new(s[0]);
        let p = vs.enter("room", "a", s[1], Role::Steerer, &m);
        vs.venue_mut("room").unwrap().register_app("covise", "");
        vs.venue_mut("room").unwrap().join_app("covise", p);
        assert!(vs.leave("room", p));
        let v = vs.venue("room").unwrap();
        assert_eq!(v.occupancy(), 0);
        assert!(v.group.is_empty());
        assert!(v.app("covise").unwrap().members.is_empty());
        assert!(!vs.leave("room", p), "double leave");
        assert!(!vs.leave("no-room", p));
    }

    #[test]
    fn venues_are_isolated() {
        let (m, s) = model();
        let mut vs = VenueServer::new(s[0]);
        vs.enter("room1", "a", s[0], Role::Participant, &m);
        vs.enter("room2", "b", s[1], Role::Participant, &m);
        assert_eq!(vs.venue("room1").unwrap().occupancy(), 1);
        assert_eq!(vs.venue("room2").unwrap().occupancy(), 1);
    }
}
