//! # accessgrid — an Access Grid analog
//!
//! The Access Grid (§1 of the paper) coordinates "multiple channels of
//! communication within a virtual space (the Virtual Venue of the
//! meeting)": rooms hosting participants, vic video streams, rat audio
//! streams, and — in HLRS's extended venue server (§4.6) — *shared
//! applications* started consistently at every site ("a special venue
//! server compatible to Access Grid 1.2 … allows to start application
//! sessions such as COVISE consistently within the Access Grid group
//! collaboration sessions").
//!
//! * [`venue`] — venue server, venues (rooms), participants with roles,
//!   per-room shared-application registry, unicast-bridge support for
//!   NAT'd sites (§4.6: VR systems "are often behind firewalls which do
//!   not support multicast and sometimes even do NAT").
//! * [`media`] — the media channels: [`media::VicStream`] (tiled video of
//!   a framebuffer source, delta+RLE coded — the vtkNetwork path of §2.4),
//!   [`media::RatStream`] (constant-bit-rate audio model), and
//!   [`media::VncShare`] (full-desktop sharing used to distribute the
//!   steering GUI, §1/§3.4).

pub mod media;
pub mod venue;

pub use media::{MediaStats, RatStream, VicStream, VncShare};
pub use venue::{ParticipantId, Role, Venue, VenueServer};
