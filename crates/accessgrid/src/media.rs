//! Media streams: vic video, rat audio, vnc desktop sharing.
//!
//! §2.4: the vtkNetwork render class "streams updates to its framebuffer
//! to a multicast address. Remote users can then view the broadcast
//! visualization through a standard vic session." [`VicStream`] is that
//! path: a framebuffer source, delta+RLE coded, one datagram per frame
//! into a [`MulticastGroup`]. [`RatStream`] models the fixed-rate audio
//! channel; [`VncShare`] the desktop sharing used for the UNICORE client
//! and AVS/Express control panels (§3.4: "the UNICORE client and the
//! AVS/Express control panel will be made available via vnc").

use netsim::{MulticastGroup, SimTime, SiteId};
use viz::codec::DeltaRleCodec;
use viz::Framebuffer;

/// Per-stream traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MediaStats {
    /// Frames/packets offered to the group.
    pub units_sent: u64,
    /// Bytes offered by the source (multicast: paid once).
    pub bytes_sent: u64,
    /// Raw (uncompressed) bytes those units represent.
    pub bytes_raw: u64,
    /// Deliveries that were lost (UDP semantics).
    pub losses: u64,
}

/// A vic-style video stream of an application framebuffer.
pub struct VicStream {
    /// Source site.
    pub source: SiteId,
    codec: DeltaRleCodec,
    stats: MediaStats,
}

impl VicStream {
    /// New stream from `source`. Keyframes every 30 frames so late joiners
    /// and loss victims resynchronize (vic's intra-frame refresh).
    pub fn new(source: SiteId) -> VicStream {
        let mut codec = DeltaRleCodec::new();
        codec.keyframe_interval = 30;
        VicStream {
            source,
            codec,
            stats: MediaStats::default(),
        }
    }

    /// Encode and multicast one frame at `now`. Returns the per-member
    /// arrival times (`None` entries were lost).
    pub fn send_frame(
        &mut self,
        group: &mut MulticastGroup,
        now: SimTime,
        frame: &Framebuffer,
    ) -> Vec<(SiteId, Option<SimTime>)> {
        let encoded = self.codec.encode(frame);
        self.stats.units_sent += 1;
        self.stats.bytes_sent += encoded.wire_size() as u64;
        self.stats.bytes_raw += encoded.raw_size as u64;
        let deliveries = group.send(self.source, now, encoded.wire_size());
        let mut out = Vec::with_capacity(deliveries.len());
        for d in deliveries {
            if d.arrival.is_none() {
                self.stats.losses += 1;
            }
            out.push((d.to, d.arrival));
        }
        out
    }

    /// Statistics so far.
    pub fn stats(&self) -> MediaStats {
        self.stats
    }

    /// Achieved compression ratio so far (raw/wire).
    pub fn compression_ratio(&self) -> f64 {
        if self.stats.bytes_sent == 0 {
            return 1.0;
        }
        self.stats.bytes_raw as f64 / self.stats.bytes_sent as f64
    }
}

/// A rat-style constant-bit-rate audio stream.
pub struct RatStream {
    /// Source site.
    pub source: SiteId,
    /// Bytes per packet (8 kHz × 20 ms × 1 byte = 160 for µ-law).
    pub packet_bytes: usize,
    /// Packet interval.
    pub interval: SimTime,
    stats: MediaStats,
}

impl RatStream {
    /// Standard 20 ms µ-law packets.
    pub fn new(source: SiteId) -> RatStream {
        RatStream {
            source,
            packet_bytes: 160,
            interval: SimTime::from_millis(20),
            stats: MediaStats::default(),
        }
    }

    /// Send the audio packets covering `duration` starting at `start`.
    /// Returns the number of packets offered.
    pub fn send_span(
        &mut self,
        group: &mut MulticastGroup,
        start: SimTime,
        duration: SimTime,
    ) -> u64 {
        let n = duration.as_nanos() / self.interval.as_nanos().max(1);
        for k in 0..n {
            let t = start + SimTime::from_nanos(k * self.interval.as_nanos());
            let deliveries = group.send(self.source, t, self.packet_bytes);
            self.stats.units_sent += 1;
            self.stats.bytes_sent += self.packet_bytes as u64;
            self.stats.bytes_raw += self.packet_bytes as u64;
            self.stats.losses += deliveries.iter().filter(|d| d.arrival.is_none()).count() as u64;
        }
        n
    }

    /// Statistics so far.
    pub fn stats(&self) -> MediaStats {
        self.stats
    }
}

/// A vnc-style desktop share: like vic but *reliable* (TCP semantics —
/// the whole desktop must arrive), so it reports delivery completion
/// times rather than losses.
pub struct VncShare {
    /// Sharing site.
    pub source: SiteId,
    codec: DeltaRleCodec,
    stats: MediaStats,
}

impl VncShare {
    /// New desktop share.
    pub fn new(source: SiteId) -> VncShare {
        VncShare {
            source,
            codec: DeltaRleCodec::new(),
            stats: MediaStats::default(),
        }
    }

    /// Share one desktop update with every member over per-member unicast
    /// (vnc is point-to-point): bytes are paid per member.
    pub fn send_update(
        &mut self,
        group: &mut MulticastGroup,
        now: SimTime,
        desktop: &Framebuffer,
    ) -> Vec<(SiteId, SimTime)> {
        let encoded = self.codec.encode(desktop);
        self.stats.units_sent += 1;
        self.stats.bytes_raw += encoded.raw_size as u64;
        let deliveries = group.send(self.source, now, encoded.wire_size());
        // unicast accounting: one copy per member
        self.stats.bytes_sent += (encoded.wire_size() * deliveries.len()) as u64;
        deliveries
            .into_iter()
            .map(|d| {
                // reliable: a loss costs one nominal retransmit interval
                let t = d.arrival.unwrap_or(now + SimTime::from_millis(100));
                (d.to, t)
            })
            .collect()
    }

    /// Statistics so far.
    pub fn stats(&self) -> MediaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Link;

    fn group(n: usize) -> MulticastGroup {
        let mut g = MulticastGroup::new();
        for i in 1..=n {
            g.join_native(
                SiteId(i),
                Link::builder().latency_ms(10).bandwidth_mbit(100).build(),
            );
        }
        g
    }

    #[test]
    fn vic_static_scene_compresses_hard() {
        let mut g = group(3);
        let mut vic = VicStream::new(SiteId(0));
        let fb = Framebuffer::new(128, 128);
        for k in 0..10 {
            let t = SimTime::from_millis(100 * k);
            let deliveries = vic.send_frame(&mut g, t, &fb);
            assert_eq!(deliveries.len(), 3);
        }
        // frame 0 is a keyframe (RGBA alternation defeats byte-RLE, ≈1:1);
        // the 9 all-zero deltas compress ~500:1, so overall ratio ≈ 10
        assert!(
            vic.compression_ratio() > 5.0,
            "ratio {}",
            vic.compression_ratio()
        );
        assert_eq!(vic.stats().units_sent, 10);
    }

    #[test]
    fn vic_multicast_pays_once() {
        let mut g = group(8);
        let mut vic = VicStream::new(SiteId(0));
        let fb = Framebuffer::new(64, 64);
        vic.send_frame(&mut g, SimTime::ZERO, &fb);
        // group sender-side bytes equal the stream's bytes_sent (not ×8)
        assert_eq!(g.bytes_sent, vic.stats().bytes_sent);
    }

    #[test]
    fn vic_counts_losses() {
        let mut g = MulticastGroup::new();
        g.join_native(SiteId(1), Link::builder().loss_ppm(1_000_000).build());
        let mut vic = VicStream::new(SiteId(0));
        let fb = Framebuffer::new(16, 16);
        vic.send_frame(&mut g, SimTime::ZERO, &fb);
        assert_eq!(vic.stats().losses, 1);
    }

    #[test]
    fn rat_packet_cadence() {
        let mut g = group(2);
        let mut rat = RatStream::new(SiteId(0));
        let n = rat.send_span(&mut g, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(n, 50); // 1 s / 20 ms
        assert_eq!(rat.stats().bytes_sent, 50 * 160);
    }

    #[test]
    fn vnc_pays_per_member() {
        let mut g = group(4);
        let mut vnc = VncShare::new(SiteId(0));
        let fb = Framebuffer::new(64, 64);
        let deliveries = vnc.send_update(&mut g, SimTime::ZERO, &fb);
        assert_eq!(deliveries.len(), 4);
        // 4 members → ~4× one encoded frame
        let per = vnc.stats().bytes_sent / 4;
        assert!(per > 0);
        assert_eq!(vnc.stats().bytes_sent % 4, 0);
    }

    #[test]
    fn vnc_reliable_even_over_loss() {
        let mut g = MulticastGroup::new();
        g.join_native(SiteId(1), Link::builder().loss_ppm(1_000_000).build());
        let mut vnc = VncShare::new(SiteId(0));
        let fb = Framebuffer::new(16, 16);
        let deliveries = vnc.send_update(&mut g, SimTime::ZERO, &fb);
        // arrival present despite the lossy link (retransmit cost applied)
        assert_eq!(deliveries.len(), 1);
        assert!(deliveries[0].1 >= SimTime::from_millis(100));
    }

    #[test]
    fn vic_keyframe_interval_resyncs() {
        let mut g = group(1);
        let mut vic = VicStream::new(SiteId(0));
        let fb = Framebuffer::new(32, 32);
        // frames 0 and 30 are keyframes → larger than deltas
        let mut sizes = Vec::new();
        for k in 0..31 {
            let before = vic.stats().bytes_sent;
            vic.send_frame(&mut g, SimTime::from_millis(k), &fb);
            sizes.push(vic.stats().bytes_sent - before);
        }
        assert!(sizes[0] > sizes[1]);
        assert!(sizes[30] > sizes[29], "frame 30 must be a keyframe");
    }
}
