//! Typed rejection of malformed scenario scripts.
//!
//! The scenario builder is deliberately permissive while a script is being
//! assembled — chaining order should not matter — so every structural rule
//! is checked in one place, [`crate::Scenario::validate`], before a run
//! starts. The generative fuzzer leans on this boundary: a script either
//! validates (and must then run to completion) or is rejected here with a
//! typed [`ScenarioError`], never by a panic deep inside the engine.

use netsim::SimTime;
use std::fmt;

/// A structural defect in a built [`crate::Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The sample interval is zero — the engine would never tick.
    ZeroSampleInterval,
    /// Two t=0 participants share a name (a mid-run rejoin is the
    /// [`crate::Action::Join`] action, not a second declaration).
    DuplicateParticipant(String),
    /// Two declared viewers share a name (a mid-run re-attach is the
    /// [`crate::Action::ViewerJoin`] action, not a second declaration).
    DuplicateViewer(String),
    /// Two relay tiers share a name.
    DuplicateRelay(String),
    /// One name is used across the participant/viewer/relay namespaces —
    /// fault actions resolve targets by name, so a collision silently
    /// shadows one of them.
    NameCollision(String),
    /// A relay names a parent that is not declared before it.
    UnknownRelayParent {
        /// The child relay.
        relay: String,
        /// The missing (or later-declared) parent.
        parent: String,
    },
    /// A viewer (declared or joining mid-run) names an undeclared relay.
    UnknownRelay {
        /// The viewer.
        viewer: String,
        /// The missing relay tier.
        relay: String,
    },
    /// An action is scheduled after the scenario's duration — it would
    /// never observably run.
    ActionAfterEnd {
        /// When the action was scheduled.
        at: SimTime,
        /// The action kind (its [`crate::Action::label`]).
        action: &'static str,
        /// The scenario duration it overshoots.
        duration: SimTime,
    },
    /// A [`crate::Action::Restore`] with no `checkpoint_every` interval:
    /// there is no chain to restore from.
    RestoreWithoutCheckpoint,
    /// A [`crate::Action::Restore`] not preceded by a
    /// [`crate::Action::Crash`] still in effect at that time.
    RestoreWithoutCrash {
        /// When the restore was scheduled.
        at: SimTime,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::ZeroSampleInterval => write!(f, "sample interval must be positive"),
            ScenarioError::DuplicateParticipant(n) => {
                write!(f, "duplicate participant declaration {n:?}")
            }
            ScenarioError::DuplicateViewer(n) => write!(f, "duplicate viewer declaration {n:?}"),
            ScenarioError::DuplicateRelay(n) => write!(f, "duplicate relay declaration {n:?}"),
            ScenarioError::NameCollision(n) => write!(
                f,
                "name {n:?} is used across the participant/viewer/relay namespaces"
            ),
            ScenarioError::UnknownRelayParent { relay, parent } => write!(
                f,
                "relay {relay:?} names parent {parent:?}, which is not declared before it"
            ),
            ScenarioError::UnknownRelay { viewer, relay } => {
                write!(f, "viewer {viewer:?} names undeclared relay {relay:?}")
            }
            ScenarioError::ActionAfterEnd {
                at,
                action,
                duration,
            } => write!(
                f,
                "{action} action at {at} is scheduled past the {duration} duration"
            ),
            ScenarioError::RestoreWithoutCheckpoint => write!(
                f,
                "restore_at without checkpoint_every — no chain to restore from"
            ),
            ScenarioError::RestoreWithoutCrash { at } => {
                write!(f, "restore at {at} without a crash in effect")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}
