//! Structured scenario outcomes with a byte-stable digest.
//!
//! The seed/digest contract: a [`ScenarioReport`] renders to a canonical
//! text form ([`ScenarioReport::render`]) whose bytes are identical for
//! identical `(scenario, seed)` pairs — no wall-clock, no hash-map
//! iteration order, no float formatting drift. [`ScenarioReport::digest`]
//! is an FNV-1a 64 over that rendering; regression tests pin a scenario's
//! behaviour by pinning the digest.

use netsim::{LinkStats, SimTime};
use std::fmt;

/// One mid-run migration of the computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Source site name.
    pub from: String,
    /// Destination site name.
    pub to: String,
    /// Checkpoint bytes moved.
    pub bytes: usize,
    /// Virtual time the sample stream was paused.
    pub gap: SimTime,
}

/// One relay tier's outcome: what crossed its uplink and what its own
/// decimation/backpressure did to the stream before it fanned further
/// down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayRecord {
    /// Relay name.
    pub name: String,
    /// Parent relay (`None` = fed directly by the origin hub).
    pub parent: Option<String>,
    /// Frames that survived the uplink and were ingested by this tier.
    pub ingested: u64,
    /// Frames re-published to this tier's children.
    pub forwarded: u64,
    /// Frames thinned by this tier's decimation rate.
    pub decimated: u64,
    /// Frames shed by per-child send budgets at this tier.
    pub shed: u64,
    /// Cached keyframes served to late joiners at this tier.
    pub keyframes_served: u64,
    /// Frames lost on the uplink (drop / partition).
    pub uplink_dropped: u64,
}

/// One monitor-bus viewer's outcome: what it received over its transport
/// and how the deliveries scored against its reaction-time budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewerRecord {
    /// Viewer name.
    pub name: String,
    /// Monitor transport label ("loopback", "visit", …).
    pub transport: &'static str,
    /// The `LoopBudget` the viewer's deliveries are scored against
    /// (its stable name).
    pub budget: &'static str,
    /// Frames that arrived over the viewer's link.
    pub delivered: u64,
    /// Frames lost on the link (drop / partition).
    pub dropped: u64,
    /// Admissible frames the hub skipped per the negotiated decimation.
    pub decimated: u64,
    /// Frames whose kind is outside the negotiated capability set.
    pub filtered: u64,
    /// Deliveries that busted the budget.
    pub budget_violations: u64,
    /// Worst delivery latency.
    pub max_latency: SimTime,
    /// FNV-1a 64 over the received frames' canonical bytes, in arrival
    /// order — the byte-stable fold of everything this viewer saw.
    pub frames_digest: String,
}

/// Everything one deterministic scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// The seed the run was driven by.
    pub seed: u64,
    /// Backend kind ("lbm" / "pepc").
    pub backend: &'static str,
    /// Sample broadcasts executed.
    pub broadcasts: u64,
    /// Sample ticks skipped during migration blackouts.
    pub broadcasts_skipped: u64,
    /// Median per-participant sample delivery latency.
    pub p50: SimTime,
    /// 90th-percentile latency.
    pub p90: SimTime,
    /// 99th-percentile latency.
    pub p99: SimTime,
    /// Worst latency.
    pub max: SimTime,
    /// Worst cross-participant arrival skew within one broadcast.
    pub max_skew: SimTime,
    /// True if every delivery met the §4.3 post-processing budget.
    pub within_budget: bool,
    /// True if every skew met the divergence bound.
    pub within_skew: bool,
    /// Deliveries that busted the §4.3 post-processing budget.
    pub post_budget_violations: u64,
    /// Steers that reached the session and were applied to the backend.
    pub steers_applied: u64,
    /// Steers lost in transit (drop/partition) or to a vanished sender.
    pub steers_lost: u64,
    /// Monitor frames published on the bus over the whole run.
    pub monitor_frames: u64,
    /// Per-viewer monitor outcomes, in declaration order.
    pub viewers: Vec<ViewerRecord>,
    /// Per-relay-tier outcomes, in declaration order (parents first).
    pub relays: Vec<RelayRecord>,
    /// Mid-run migrations, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Per-participant link statistics, in join order.
    pub links: Vec<(String, LinkStats)>,
    /// The session's ordered audit log, rendered.
    pub session_events: Vec<String>,
    /// Engine-level events (faults, losses, migrations), timestamped.
    pub engine_events: Vec<String>,
    /// Backend progress (simulation steps) at the end of the run.
    pub final_progress: u64,
    /// Invariant-oracle probe violations observed during the run
    /// (master-token uniqueness, monitor seq monotonicity, stale-seq
    /// commits). Deliberately NOT part of [`ScenarioReport::render`]:
    /// probes must never move a digest. Empty on every healthy run.
    pub probe_violations: Vec<String>,
}

impl ScenarioReport {
    /// Total messages dropped across all participant links.
    pub fn total_drops(&self) -> u64 {
        self.links.iter().map(|(_, s)| s.dropped).sum()
    }

    /// Total messages delivered across all participant links.
    pub fn total_deliveries(&self) -> u64 {
        self.links.iter().map(|(_, s)| s.delivered).sum()
    }

    /// True if every migration gap stayed inside the §4.4 simulation-loop
    /// tolerance (vacuously true with no migrations).
    pub fn migrations_within_budget(&self) -> bool {
        self.migrations
            .iter()
            .all(|m| m.gap < SimTime::from_secs(60))
    }

    /// True if every viewer met its reaction-time budget on every
    /// delivery (vacuously true with no viewers).
    pub fn viewers_within_budget(&self) -> bool {
        self.viewers.iter().all(|v| v.budget_violations == 0)
    }

    /// One viewer's record by name.
    pub fn viewer(&self, name: &str) -> Option<&ViewerRecord> {
        self.viewers.iter().find(|v| v.name == name)
    }

    /// One relay tier's record by name.
    pub fn relay(&self, name: &str) -> Option<&RelayRecord> {
        self.relays.iter().find(|r| r.name == name)
    }

    /// Canonical text rendering — the digest's input. Byte-stable for a
    /// given `(scenario, seed)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        let _ = writeln!(
            out,
            "scenario={} seed={} backend={}",
            self.name, self.seed, self.backend
        );
        let _ = writeln!(
            out,
            "broadcasts={} skipped={} deliveries={} drops={}",
            self.broadcasts,
            self.broadcasts_skipped,
            self.total_deliveries(),
            self.total_drops()
        );
        let _ = writeln!(
            out,
            "latency p50={} p90={} p99={} max={} skew={} budget={} skew_ok={} violations={}",
            self.p50,
            self.p90,
            self.p99,
            self.max,
            self.max_skew,
            self.within_budget,
            self.within_skew,
            self.post_budget_violations
        );
        let _ = writeln!(
            out,
            "steers applied={} lost={}",
            self.steers_applied, self.steers_lost
        );
        let _ = writeln!(out, "monitor frames={}", self.monitor_frames);
        for v in &self.viewers {
            let _ = writeln!(
                out,
                "viewer {} transport={} budget={} delivered={} dropped={} decimated={} \
                 filtered={} violations={} max={} digest={}",
                v.name,
                v.transport,
                v.budget,
                v.delivered,
                v.dropped,
                v.decimated,
                v.filtered,
                v.budget_violations,
                v.max_latency,
                v.frames_digest
            );
        }
        for r in &self.relays {
            let _ = writeln!(
                out,
                "relay {} parent={} ingested={} forwarded={} decimated={} shed={} \
                 keyframes={} uplink_dropped={}",
                r.name,
                r.parent.as_deref().unwrap_or("origin"),
                r.ingested,
                r.forwarded,
                r.decimated,
                r.shed,
                r.keyframes_served,
                r.uplink_dropped
            );
        }
        for m in &self.migrations {
            let _ = writeln!(
                out,
                "migration from={} to={} bytes={} gap={}",
                m.from, m.to, m.bytes, m.gap
            );
        }
        for (name, s) in &self.links {
            let _ = writeln!(
                out,
                "link {} delivered={} dropped={}",
                name, s.delivered, s.dropped
            );
        }
        for e in &self.session_events {
            let _ = writeln!(out, "session {e}");
        }
        for e in &self.engine_events {
            let _ = writeln!(out, "engine {e}");
        }
        let _ = writeln!(out, "progress={}", self.final_progress);
        out
    }

    /// FNV-1a 64 digest of [`ScenarioReport::render`], as 16 hex digits.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            name: "t".into(),
            seed: 1,
            backend: "lbm",
            broadcasts: 10,
            broadcasts_skipped: 1,
            p50: SimTime::from_millis(5),
            p90: SimTime::from_millis(7),
            p99: SimTime::from_millis(9),
            max: SimTime::from_millis(9),
            max_skew: SimTime::from_millis(2),
            within_budget: true,
            within_skew: true,
            post_budget_violations: 0,
            steers_applied: 2,
            steers_lost: 1,
            monitor_frames: 12,
            viewers: vec![ViewerRecord {
                name: "desk".into(),
                transport: "visit",
                budget: "desktop-render",
                delivered: 11,
                dropped: 1,
                decimated: 0,
                filtered: 2,
                budget_violations: 0,
                max_latency: SimTime::from_millis(80),
                frames_digest: "00000000deadbeef".into(),
            }],
            relays: vec![RelayRecord {
                name: "region-0".into(),
                parent: None,
                ingested: 12,
                forwarded: 10,
                decimated: 2,
                shed: 1,
                keyframes_served: 1,
                uplink_dropped: 0,
            }],
            migrations: vec![MigrationRecord {
                from: "london".into(),
                to: "manchester".into(),
                bytes: 1000,
                gap: SimTime::from_secs(3),
            }],
            links: vec![(
                "alice".into(),
                LinkStats {
                    delivered: 9,
                    dropped: 1,
                },
            )],
            session_events: vec!["Joined(alice)".into()],
            engine_events: vec!["1.000s partition alice".into()],
            final_progress: 10,
            probe_violations: Vec::new(),
        }
    }

    #[test]
    fn digest_is_stable_across_calls() {
        let r = sample_report();
        assert_eq!(r.digest(), r.digest());
        assert_eq!(r.digest().len(), 16);
    }

    #[test]
    fn digest_changes_with_any_field() {
        let r = sample_report();
        let mut r2 = r.clone();
        r2.steers_lost += 1;
        assert_ne!(r.digest(), r2.digest());
        let mut r3 = r.clone();
        r3.seed = 2;
        assert_ne!(r.digest(), r3.digest());
    }

    #[test]
    fn probe_violations_never_move_the_digest() {
        let r = sample_report();
        let mut v = r.clone();
        v.probe_violations
            .push("1.000s shard 0: 2 masters among 3 participants".into());
        assert_eq!(r.digest(), v.digest(), "probes must stay out of render()");
        assert!(!v.render().contains("masters"));
    }

    #[test]
    fn render_contains_every_section() {
        let text = sample_report().render();
        for needle in [
            "scenario=t seed=1 backend=lbm",
            "broadcasts=10 skipped=1 deliveries=9 drops=1",
            "skew_ok=true violations=0",
            "steers applied=2 lost=1",
            "monitor frames=12",
            "viewer desk transport=visit budget=desktop-render delivered=11 dropped=1 \
             decimated=0 filtered=2 violations=0 max=80.000ms digest=00000000deadbeef",
            "relay region-0 parent=origin ingested=12 forwarded=10 decimated=2 shed=1 \
             keyframes=1 uplink_dropped=0",
            "migration from=london to=manchester bytes=1000 gap=3.000s",
            "link alice delivered=9 dropped=1",
            "session Joined(alice)",
            "engine 1.000s partition alice",
            "progress=10",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn totals_and_migration_budget() {
        let r = sample_report();
        assert_eq!(r.total_deliveries(), 9);
        assert_eq!(r.total_drops(), 1);
        assert!(r.migrations_within_budget());
        let mut slow = r.clone();
        slow.migrations[0].gap = SimTime::from_secs(90);
        assert!(!slow.migrations_within_budget());
    }

    #[test]
    fn viewer_budget_helpers() {
        let r = sample_report();
        assert!(r.viewers_within_budget());
        assert_eq!(r.viewer("desk").unwrap().delivered, 11);
        assert!(r.viewer("ghost").is_none());
        assert_eq!(r.relay("region-0").unwrap().forwarded, 10);
        assert!(r.relay("edge-9").is_none());
        let mut busted = r.clone();
        busted.viewers[0].budget_violations = 2;
        assert!(!busted.viewers_within_budget());
        assert_ne!(busted.digest(), r.digest(), "violations are in the digest");
    }

    #[test]
    fn display_matches_render() {
        let r = sample_report();
        assert_eq!(format!("{r}"), r.render());
    }
}
